"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """A violation of simulation-kernel invariants (e.g. negative delay)."""


class ConfigurationError(ReproError):
    """An invalid platform, hypervisor, or workload configuration."""


class HardwareFault(ReproError):
    """An architecturally invalid operation on a modeled hardware component.

    Examples: accessing an EL2 register from EL1 without VHE, completing a
    virtual interrupt that was never injected, or a Stage-2 translation
    fault on an unmapped intermediate physical address.
    """


class ProtocolError(ReproError):
    """A hypervisor/guest protocol violation (virtio, grant table, event
    channel) detected by the models."""
