"""Hypervisor models: Type 2 (KVM-like) and Type 1 (Xen-like).

Both expose the same operation interface (:class:`repro.hv.base.Hypervisor`)
so the measurement framework in :mod:`repro.core` can run identical
microbenchmarks and I/O paths over either design on either architecture —
exactly the paper's four platform columns (KVM/Xen x ARM/x86), plus the
ARMv8.1 VHE variant of KVM.
"""

from repro.hv.base import Hypervisor, Vcpu, Vm, VcpuState
from repro.hv.kvm import KvmHypervisor
from repro.hv.xen import XenHypervisor

__all__ = ["Hypervisor", "KvmHypervisor", "Vcpu", "VcpuState", "Vm", "XenHypervisor"]


def build_hypervisor(kind, machine, vhe=False):
    """Factory: ``kind`` in {'kvm', 'xen'} on an existing machine."""
    from repro.errors import ConfigurationError

    if kind == "kvm":
        return KvmHypervisor(machine, vhe=vhe)
    if kind == "xen":
        if vhe:
            raise ConfigurationError("VHE is a Type 2 (E2H-set) configuration")
        return XenHypervisor(machine)
    raise ConfigurationError("unknown hypervisor kind %r" % (kind,))
