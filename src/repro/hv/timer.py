"""Virtual timer support (paper Section II).

ARM gives each VCPU an architected virtual timer it can program *without
trapping*.  But when the timer fires it raises a *physical* interrupt,
which (like all physical interrupts while a VM runs) is taken to EL2 and
must be handled by the hypervisor and translated into a virtual
interrupt — so every guest timer tick pays an injection path even though
arming the timer was free.

x86 guests of this era used an emulated LAPIC timer: *programming* it
also traps (an APIC access), and expiry is injected by the hypervisor.
"""

from repro.errors import ConfigurationError
from repro.hv.base import VIRQ_TIMER
from repro.hw.cpu.counters import ArchTimer

#: physical IRQ the virtual-timer expiry raises (PPI 27 rerouted to EL2)
VTIMER_PHYS_IRQ = 27


class VcpuTimer:
    """The per-VCPU virtual timer wiring."""

    def __init__(self, hypervisor, vcpu):
        self.hypervisor = hypervisor
        self.vcpu = vcpu
        self.arch_timer = ArchTimer(hypervisor.engine, name="%s.vtimer" % vcpu.name)
        self.arch_timer.on_expiry = self._expired
        self.expirations = 0
        #: event fired (and re-armed) on each delivery to the guest
        self.delivered = hypervisor.engine.event("%s.vtimer.delivered" % vcpu.name)

    def guest_program(self, cycles_from_now):
        """Guest arms the timer.

        On ARM this is free of traps (CNTV_* are directly accessible).
        On x86 the LAPIC-timer write traps and is emulated; the caller
        gets a generator to run for the trap cost.
        """
        if cycles_from_now <= 0:
            raise ConfigurationError("timer delta must be positive")
        machine = self.hypervisor.machine
        if machine.is_arm:
            self.arch_timer.program(cycles_from_now)
            return None
        return self._x86_program(cycles_from_now)

    def _x86_program(self, cycles_from_now):
        hv = self.hypervisor
        yield from hv._exit(self.vcpu, reason="lapic-timer-write")
        pcpu, costs = self.vcpu.pcpu, hv.costs
        yield pcpu.op("mmio_decode", costs.mmio_decode, "emul")
        yield pcpu.op("apic_access", costs.apic_access_kvm, "emul")
        self.arch_timer.program(cycles_from_now)
        yield from hv._enter(self.vcpu)

    def _expired(self):
        """Hardware expiry: physical IRQ to the VCPU's PCPU; the
        hypervisor injects VIRQ_TIMER through its normal delivery path."""
        self.expirations += 1
        if self.delivered.fired:
            self.delivered.reset()
        self.vcpu.queue_virq(VIRQ_TIMER)
        self.hypervisor.deliver_timer_virq(self.vcpu, self.delivered)


def attach_timers(hypervisor):
    """Give every VCPU of every VM a virtual timer; returns the map."""
    timers = {}
    for vm in hypervisor.vms:
        for vcpu in vm.vcpus:
            timers[vcpu.name] = VcpuTimer(hypervisor, vcpu)
    return timers
