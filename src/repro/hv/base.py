"""Common hypervisor abstractions: VMs, VCPUs, and the operation interface.

The operations mirror the paper's Table I microbenchmarks plus the I/O
building blocks the application benchmarks compose.  Each operation is a
simulation generator; cross-CPU operations return a :class:`SimEvent`
that fires at the measured endpoint.
"""

import enum

from repro.errors import ConfigurationError, HardwareFault
from repro.hw.cpu.registers import RegClass, fresh_context_image
from repro.hw.mem.stage2 import Stage2Fault, Stage2Tables, identity_map

#: Guest-physical base of the emulated GIC distributor (virt-machine
#: style).  Deliberately NEVER mapped at Stage 2 — accesses fault, which
#: is the trap mechanism behind the Interrupt Controller Trap benchmark.
GICD_BASE_GPA = 0x0800_0000
#: Guest RAM base and the (token) number of pages premapped at boot.
GUEST_RAM_BASE_PAGE = 0x4_0000  # 1 GB
GUEST_RAM_PREMAP_PAGES = 64

#: Architectural translation granule (bytes) — the unit of grant mapping
#: and paravirtual block transfers.
PAGE_SIZE = 0x1000
#: Guest-physical page regions backing the paravirtual I/O rings.  The
#: exact values are tokens (any unused GPA range works); naming them keeps
#: the frontend/backend/grant-table memory-map contract in one place.
GRANT_TX_BASE_GPA = 0x1000
GRANT_RX_BASE_GPA = 0x2000
GRANT_BLK_BASE_GPA = 0x4000
#: netback cycles grant pages over this many ring slots
GRANT_RING_SLOTS = 64

#: Every register class a split-mode ARM hypervisor must context switch
#: (the rows of paper Table III).
ALL_ARM_CLASSES = [
    RegClass.GP,
    RegClass.FP,
    RegClass.EL1_SYS,
    RegClass.VGIC,
    RegClass.TIMER,
    RegClass.EL2_CONFIG,
    RegClass.EL2_VIRTUAL_MEMORY,
]

#: Virtual IRQ numbers used by the models (ARM SPI-style numbering).
VIRQ_IPI = 1  # SGI used for guest rescheduling IPIs
VIRQ_VIRTIO_NET = 48  # KVM virtio-net queue interrupt
VIRQ_EVTCHN = 31  # Xen event-channel upcall PPI
VIRQ_TIMER = 27  # virtual timer PPI


class VcpuState(enum.Enum):
    GUEST = "guest"  # executing VM code
    HOST = "host"  # exited; hypervisor/host context on the PCPU
    BLOCKED = "blocked"  # idle in the VM; backing thread/domain descheduled


class Vcpu:
    """One virtual CPU, pinned to a physical CPU (paper Section III)."""

    def __init__(self, vm, index, pcpu):
        self.vm = vm
        self.index = index
        self.pcpu = pcpu
        self.state = VcpuState.GUEST
        #: saved register image while the VCPU is not on the hardware
        self.saved_context = fresh_context_image()
        #: GIC virtual CPU interface (ARM machines only)
        self.vif = None
        #: VMCS (x86 machines only)
        self.vmcs = None
        #: software-pending virtual IRQs not yet in LRs / VMCS injection
        self.pending_virqs = []

    @property
    def name(self):
        return "%s.vcpu%d" % (self.vm.name, self.index)

    def queue_virq(self, virq):
        self.pending_virqs.append(virq)

    def take_pending_virqs(self):
        pending, self.pending_virqs = self.pending_virqs, []
        return pending

    def __repr__(self):
        return "Vcpu(%s on pcpu%d, %s)" % (self.name, self.pcpu.index, self.state.value)


class Vm:
    """A virtual machine: VCPUs + Stage-2 address space + virtual devices."""

    def __init__(self, hypervisor, name, num_vcpus, pcpu_indices, memory_mb=12288):
        if len(pcpu_indices) != num_vcpus:
            raise ConfigurationError(
                "VM %s: need one pinned PCPU per VCPU (%d != %d)"
                % (name, len(pcpu_indices), num_vcpus)
            )
        self.hypervisor = hypervisor
        self.name = name
        self.memory_mb = memory_mb
        # vmids are scoped to the owning hypervisor (as on real hardware,
        # where VTTBR VMIDs are per-host): a module-level counter would be
        # process-global mutable state leaking across cells whenever the
        # runner degrades to in-process serial execution.
        self.vmid = hypervisor._allocate_vmid()
        self.stage2 = Stage2Tables(self.vmid)
        # Premap a token chunk of guest RAM; real faults fill the rest
        # on demand.  The GIC distributor region is intentionally left
        # unmapped so guest accesses there take a Stage-2 abort.
        identity_map(self.stage2, GUEST_RAM_BASE_PAGE, GUEST_RAM_PREMAP_PAGES)
        machine = hypervisor.machine
        self.vcpus = [
            Vcpu(self, i, machine.pcpu(pcpu_indices[i])) for i in range(num_vcpus)
        ]
        for vcpu in self.vcpus:
            if machine.is_arm:
                vcpu.vif = machine.gic.virtual_interface(vcpu.name)
            else:
                from repro.hw.cpu.x86 import Vmcs

                vcpu.vmcs = Vmcs(vcpu.name)
        #: index of the VCPU that receives device interrupts; the paper
        #: found both KVM and Xen funnel all virtual interrupts to VCPU0,
        #: and measured the win from distributing them (Section V).
        self.irq_affinity = [0]
        self._irq_rr = 0

    def next_irq_vcpu(self):
        """Pick the VCPU for the next device interrupt (round robin over
        the configured affinity set)."""
        index = self.irq_affinity[self._irq_rr % len(self.irq_affinity)]
        self._irq_rr += 1
        return self.vcpus[index]

    def vcpu(self, index):
        return self.vcpus[index]

    def __repr__(self):
        return "Vm(%s, %d vcpus)" % (self.name, len(self.vcpus))


class Hypervisor:
    """Abstract hypervisor: the operation interface the benchmarks drive.

    Concrete designs (KVM split-mode / KVM VHE / Xen) implement the
    generators; all take care to execute their costed steps through
    ``pcpu.op`` so traces reconstruct breakdowns like Table III.
    """

    #: 'type1' or 'type2' — for reporting
    design = None
    name = "hypervisor"

    def __init__(self, machine):
        self.machine = machine
        self.engine = machine.engine
        self.costs = machine.costs
        self.vms = []
        self._next_vmid = 1
        #: statistics for workload accounting — a dict-like facade over
        #: the machine's metrics registry (``hv.traps`` etc.), so the
        #: observability exporters see the same numbers.
        self.stats = machine.obs.metrics.bank(
            "hv", ("traps", "vm_switches", "virqs_injected")
        )

    # --- VM lifecycle ---------------------------------------------------

    def _allocate_vmid(self):
        """Hand out the next Stage-2 VMID, scoped to this hypervisor."""
        vmid = self._next_vmid
        self._next_vmid += 1
        return vmid

    def create_vm(self, name, num_vcpus, pcpu_indices, memory_mb=12288):
        vm = Vm(self, name, num_vcpus, pcpu_indices, memory_mb)
        self.vms.append(vm)
        self._on_vm_created(vm)
        return vm

    def _on_vm_created(self, vm):
        """Hook for subclasses (e.g. Xen registers the domain)."""

    # --- Table I operations (generators) -----------------------------------

    def run_hypercall(self, vcpu):
        """VM -> hypervisor -> VM with a no-op handler (Table I row 1)."""
        raise NotImplementedError

    def run_intc_trap(self, vcpu):
        """Trap to the emulated interrupt controller and back (row 2)."""
        raise NotImplementedError

    def send_virtual_ipi(self, src_vcpu, dst_vcpu):
        """Virtual IPI between VCPUs on different PCPUs (row 3).

        Returns a SimEvent that fires when the destination guest's
        interrupt handler runs.
        """
        raise NotImplementedError

    def complete_virq(self, vcpu, virq):
        """Guest acknowledges + completes a virtual interrupt (row 4)."""
        raise NotImplementedError

    def switch_vm(self, vcpu_out, vcpu_in):
        """Switch between two VMs on the same physical core (row 5)."""
        raise NotImplementedError

    def kick_backend(self, vcpu):
        """I/O Latency Out (row 6): driver in the VM signals the virtual
        I/O device.  Returns a SimEvent fired when the backend observes
        the signal."""
        raise NotImplementedError

    def notify_guest(self, vm, virq=None):
        """I/O Latency In (row 7): virtual I/O device signals the VM.
        Returns a SimEvent fired when the guest receives the virtual
        interrupt."""
        raise NotImplementedError

    # --- helpers shared by implementations ------------------------------------

    def _distributor_stage2_fault(self, vcpu):
        """The trap behind the Interrupt Controller Trap benchmark: the
        guest's distributor access takes a Stage-2 abort (the region is
        never mapped), whose syndrome the hypervisor decodes into an
        emulation call.  Returns the fault for syndrome inspection."""
        try:
            vcpu.vm.stage2.walk(GICD_BASE_GPA, write=True)
        except Stage2Fault as fault:
            return fault
        raise HardwareFault(
            "the GIC distributor region must never be Stage-2 mapped"
        )

    def _guest_handles_virq(self, vcpu, virq):
        """Guest takes the injected virq to its handler (ack included)."""
        costs = self.costs
        pcpu = vcpu.pcpu
        yield pcpu.op("guest_irq_entry", costs.guest_irq_entry, "guest")
        if vcpu.vif is not None:
            acked = vcpu.vif.guest_acknowledge()
            if acked != virq:
                raise HardwareFault(
                    "guest acked virq %r, expected %r" % (acked, virq)
                )
        return virq
