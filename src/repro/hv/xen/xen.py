"""The Xen hypervisor model (Type 1), for ARM and x86.

Structural story encoded here (paper Sections II, IV, V):

* The hypervisor itself lives in EL2 / root mode; traps are handled
  *there*, so hypercalls and interrupt-controller emulation are cheap —
  on ARM, dramatically cheaper than split-mode KVM.
* But Xen implements no device backends: I/O engages Dom0 — an event
  channel, a physical IPI, and (because Dom0 idles between requests) a
  full domain switch away from the idle domain, before netback even sees
  the request.  Data crosses domains by grant copy, never zero copy.
"""

from repro.errors import ConfigurationError, HardwareFault
from repro.hv.base import (
    ALL_ARM_CLASSES,
    VIRQ_EVTCHN,
    VIRQ_IPI,
    Hypervisor,
    VcpuState,
)
from repro.hv.xen.event_channels import EventChannelTable
from repro.hv.xen.netback import NetbackWorker
from repro.hv.xen.sched_credit import CreditScheduler
from repro.hw.cpu.arm import ExceptionLevel
from repro.hw.cpu.registers import fresh_context_image
from repro.hw.mem.grant import GrantTable
from repro.hw.mem.tlb import TlbShootdownModel

#: Physical IRQ Xen uses to kick a remote PCPU for event delivery.
EVTCHN_IPI_IRQ = 3

IDLE = "idle"


class XenHypervisor(Hypervisor):
    """Xen with a privileged Dom0 for all device I/O."""

    design = "type1"
    name = "xen"

    def __init__(self, machine):
        super().__init__(machine)
        self.event_channels = EventChannelTable(metrics=machine.obs.metrics)
        self.scheduler = CreditScheduler()
        self.grant_tables = {}
        self.netback_workers = {}
        self.shootdown = TlbShootdownModel(
            machine.platform.arch, machine.costs, machine.platform.num_cores
        )
        self.dom0 = None
        self.host_nic = None
        self.netstack = None
        #: (domu_name -> (tx_port, rx_port)) event channel ports
        self._io_ports = {}
        for pcpu in machine.pcpus:
            pcpu.irq_handler = self._irq_handler
            pcpu.current_context = IDLE
            pcpu.xen_idle_context = fresh_context_image()
        # Fast-lane sites (see repro.sim.fastpath): the hypercall round
        # trip is nothing but the light entry/return pair.
        entry_id = "hv/xen/xen.py::XenHypervisor._xen_entry"
        return_id = "hv/xen/xen.py::XenHypervisor._xen_return"
        fastlane = machine.fastlane
        self._fast_hypercall = fastlane.site(
            "xen.hypercall", (entry_id, return_id)
        )
        self._fast_intc = fastlane.site(
            "xen.intc_trap",
            (entry_id, "hv/xen/xen.py::XenHypervisor._intc_path", return_id),
        )

    # --- domain lifecycle ------------------------------------------------

    def boot_dom0(self, num_vcpus=4, pcpu_indices=(0, 1, 2, 3), memory_mb=4096):
        """Create the privileged domain (paper config: 4 VCPUs, 4 GB)."""
        if self.dom0 is not None:
            raise ConfigurationError("Dom0 already booted")
        self.dom0 = self.create_vm("dom0", num_vcpus, list(pcpu_indices), memory_mb)
        return self.dom0

    def _on_vm_created(self, vm):
        self.grant_tables[vm.name] = GrantTable(vm.name)
        for vcpu in vm.vcpus:
            self.scheduler.register(vcpu)
        if self.dom0 is not None and vm is not self.dom0:
            # A DomU: wire its PV network interface to a netback instance
            # in Dom0 and bind the event channels.
            worker = NetbackWorker(self, vm, self.dom0.vcpu(0).pcpu, self.shootdown)
            self.netback_workers[vm.name] = worker
            tx_port, rx_port = self.event_channels.bind_interdomain(
                vm.vcpu(0), self.dom0.vcpu(0)
            )
            self._io_ports[vm.name] = (tx_port, rx_port)

    def attach_network(self, nic, netstack):
        """Physical NIC is driven by Dom0's device drivers."""
        self.host_nic = nic
        self.netstack = netstack
        nic.on_receive = self._on_physical_receive

    # --- benchmark setup helpers (zero-cost state installation) -------------

    # repro-lint: ignore[SYM001] -- zero-cost benchmark setup: installs a
    # guest image that was never live on this PCPU, so there is nothing
    # to save (measured windows start after installation).
    def install_guest(self, vcpu):
        pcpu = vcpu.pcpu
        arch = pcpu.arch
        if self.machine.is_arm:
            if arch.current_el == ExceptionLevel.EL2:
                arch.eret(ExceptionLevel.EL1)
            arch.load_context(vcpu.saved_context)
            arch.enable_virt_features(vcpu.vm.vmid)
        else:
            if not arch.root_mode:
                if arch.loaded_vmcs is vcpu.vmcs:
                    vcpu.state = VcpuState.GUEST
                    pcpu.current_context = vcpu
                    self.scheduler.wake(vcpu)
                    return
                arch.vmexit("reinstall")
            arch.load_vmcs(vcpu.vmcs)
            arch.vmentry()
        vcpu.state = VcpuState.GUEST
        pcpu.current_context = vcpu
        self.scheduler.wake(vcpu)

    def park_vcpu(self, vcpu):
        """The domain blocks; its PCPU runs the idle domain."""
        pcpu = vcpu.pcpu
        arch = pcpu.arch
        if self.machine.is_arm:
            if pcpu.current_context is vcpu:
                vcpu.saved_context = arch.save_context(ALL_ARM_CLASSES)
                arch.load_context(pcpu.xen_idle_context)
        else:
            if pcpu.current_context is vcpu and not arch.root_mode:
                arch.vmexit("blocked")
        vcpu.state = VcpuState.BLOCKED
        if pcpu.current_context is vcpu:
            pcpu.current_context = IDLE
        self.scheduler.block(vcpu)

    # --- light trap entry/return (the Type 1 advantage on ARM) ---------------

    # repro-lint: ignore[SYM001] -- trap-entry half: Xen handles traps in
    # EL2/root with only a GP bank push; _xen_return pops it (Section IV,
    # the Type 1 hypercall advantage).
    def _xen_entry(self, vcpu, reason="trap"):
        """Guest -> Xen.  On ARM this is just a GP bank push in EL2."""
        self.stats["traps"] += 1
        pcpu, costs = vcpu.pcpu, self.costs
        if pcpu.current_context is not vcpu:
            raise HardwareFault(
                "%s trapped on pcpu%d it does not occupy" % (vcpu.name, pcpu.index)
            )
        if self.machine.is_arm:
            pcpu.arch.trap_to_el2(reason)
            yield pcpu.op("trap_to_el2", costs.trap_to_el2, "trap")
            yield pcpu.op("save_gp_light", costs.gp_save_light, "save")
            yield pcpu.op("xen_dispatch", costs.xen_dispatch, "hv")
        else:
            pcpu.arch.vmexit(reason)
            yield pcpu.op("vmexit_hw", costs.vmexit_hw, "hw-switch")
            yield pcpu.op("xen_dispatch", costs.xen_dispatch, "hv")

    # repro-lint: ignore[SYM001] -- trap-return half of _xen_entry.
    def _xen_return(self, vcpu):
        pcpu, costs = vcpu.pcpu, self.costs
        if self.machine.is_arm:
            yield pcpu.op("restore_gp_light", costs.gp_restore_light, "restore")
            pcpu.arch.eret(ExceptionLevel.EL1)
            yield pcpu.op("eret_to_guest", costs.eret_to_el1, "trap")
        else:
            yield pcpu.op("vmentry_hw", costs.vmentry_hw, "hw-switch")
            pcpu.arch.vmentry()

    # --- the generic domain switch (idle domain included) --------------------

    def _domain_switch(self, pcpu, in_vcpu, inject_virq=None, from_guest_trap=False):
        """Full context switch to ``in_vcpu`` on ``pcpu``.

        Xen's context switch code is generic: it saves the full outgoing
        context (even the idle domain's) and restores the full incoming
        one — which is why signaling an idling Dom0 costs a whole VM
        switch (paper Section IV, I/O Latency discussion).
        """
        self.stats["vm_switches"] += 1
        costs = self.costs
        arch = pcpu.arch
        out = pcpu.current_context
        span = self.machine.obs.spans.begin("domain_switch", "world-switch", pcpu.index)
        if self.machine.is_arm:
            if arch.current_el != ExceptionLevel.EL2:
                arch.trap_to_el2("domain-switch")
                yield pcpu.op("trap_to_el2", costs.trap_to_el2, "trap")
            for reg_class in ALL_ARM_CLASSES:
                yield pcpu.op(
                    "save_%s" % reg_class.name.lower(), costs.save[reg_class], "save"
                )
            outgoing = arch.save_context(ALL_ARM_CLASSES)
            if out is IDLE:
                pcpu.xen_idle_context = outgoing
            else:
                out.saved_context = outgoing
                out.state = VcpuState.BLOCKED
            yield pcpu.op("xen_sched_pick", costs.xen_sched_pick, "sched")
            yield pcpu.op("xen_ctx_extra", costs.xen_ctx_extra, "sched")
            if inject_virq is not None:
                in_vcpu.vif.inject(inject_virq)
                self.stats["virqs_injected"] += 1
                yield pcpu.op("virq_inject_lr", costs.virq_inject_lr, "vgic")
            for reg_class in ALL_ARM_CLASSES:
                yield pcpu.op(
                    "restore_%s" % reg_class.name.lower(),
                    costs.restore[reg_class],
                    "restore",
                )
            arch.load_context(in_vcpu.saved_context)
            arch.enable_virt_features(in_vcpu.vm.vmid)
            arch.eret(ExceptionLevel.EL1)
            yield pcpu.op("eret_to_guest", costs.eret_to_el1, "trap")
        else:
            if out is not IDLE and not arch.root_mode:
                arch.vmexit("domain-switch")
                yield pcpu.op("vmexit_hw", costs.vmexit_hw, "hw-switch")
                yield pcpu.op("xen_dispatch", costs.xen_dispatch, "hv")
                out.state = VcpuState.BLOCKED
            yield pcpu.op("xen_sched_pick", costs.xen_sched_pick, "sched")
            yield pcpu.op("xen_ctx_extra", costs.xen_ctx_extra, "sched")
            arch.load_vmcs(in_vcpu.vmcs)
            yield pcpu.op("vmcs_switch", costs.vmcs_switch, "hw-switch")
            if inject_virq is not None:
                arch.inject_on_next_entry(inject_virq)
                self.stats["virqs_injected"] += 1
                yield pcpu.op("virq_inject", costs.virq_inject, "inject")
            yield pcpu.op("vmentry_hw", costs.vmentry_hw, "hw-switch")
            arch.vmentry()
        in_vcpu.state = VcpuState.GUEST
        pcpu.current_context = in_vcpu
        self.scheduler.wake(in_vcpu)
        self.machine.obs.spans.end(span)

    # --- Table I operations -----------------------------------------------------

    def run_hypercall(self, vcpu):
        """Row 1: on ARM, little more than a GP push/pop in EL2."""
        return self._fast_hypercall.run(vcpu, self._hypercall_path)

    def _hypercall_path(self, vcpu):
        span = self.machine.obs.spans.begin("hypercall", "operation", vcpu.pcpu.index)
        yield from self._xen_entry(vcpu, "hypercall")
        yield from self._xen_return(vcpu)
        self.machine.obs.spans.end(span)

    def run_intc_trap(self, vcpu):
        """Row 2: the distributor is emulated *in EL2* — no host round trip."""
        return self._fast_intc.run(vcpu, self._intc_path)

    def _intc_path(self, vcpu):
        if self.machine.is_arm:
            self._distributor_stage2_fault(vcpu)  # the trap's real cause
        yield from self._xen_entry(vcpu, "intc-mmio")
        pcpu, costs = vcpu.pcpu, self.costs
        yield pcpu.op("mmio_decode", costs.mmio_decode, "emul")
        if self.machine.is_arm:
            self.machine.gic.distributor.is_enabled(VIRQ_EVTCHN)
            yield pcpu.op("gic_dist_access", costs.gic_dist_access, "emul")
            yield pcpu.op(
                "gic_dist_access_xen_extra", costs.gic_dist_access_xen_extra, "emul"
            )
        else:
            yield pcpu.op("apic_access", costs.apic_access_xen, "emul")
        yield from self._xen_return(vcpu)

    def send_virtual_ipi(self, src_vcpu, dst_vcpu):
        if src_vcpu.pcpu is dst_vcpu.pcpu:
            raise ConfigurationError("virtual IPI benchmark needs distinct PCPUs")
        done = self.engine.event("virtual-ipi-handled")
        self.engine.spawn(self._send_virtual_ipi(src_vcpu, dst_vcpu, done), "vipi-send")
        return done

    def _send_virtual_ipi(self, src_vcpu, dst_vcpu, done):
        pcpu, costs = src_vcpu.pcpu, self.costs
        if self.machine.is_arm:
            self._distributor_stage2_fault(src_vcpu)  # SGIR is MMIO too
        yield from self._xen_entry(src_vcpu, "sgi-write")
        yield pcpu.op("mmio_decode", costs.mmio_decode, "emul")
        if self.machine.is_arm:
            yield pcpu.op("gic_sgi_emulate", costs.gic_sgi_emulate, "emul")
            yield pcpu.op("xen_sgi_slowpath", costs.xen_sgi_slowpath, "emul")
            yield pcpu.op("virq_set_pending", costs.virq_set_pending, "emul")
        else:
            yield pcpu.op("apic_ipi_emulate", costs.apic_ipi_emulate, "emul")
            yield pcpu.op("virq_set_pending", costs.virq_set_pending, "emul")
        dst_vcpu.queue_virq(VIRQ_IPI)
        self.stats["virqs_injected"] += 1
        self.machine.ipi.send(
            dst_vcpu.pcpu,
            EVTCHN_IPI_IRQ,
            {"kind": "inject_running", "vcpu": dst_vcpu, "done": done},
        )
        yield from self._xen_return(src_vcpu)

    def complete_virq(self, vcpu, virq):
        pcpu, costs = vcpu.pcpu, self.costs
        if self.machine.is_arm:
            vcpu.vif.guest_complete(virq)
            yield pcpu.op("virq_complete_hw", costs.virq_complete_hw, "guest")
            if vcpu.vif.overflow:
                # Maintenance interrupt: handled entirely in EL2.
                pcpu.arch.trap_to_el2("maintenance")
                yield pcpu.op("trap_to_el2", costs.trap_to_el2, "trap")
                yield pcpu.op("save_gp_light", costs.gp_save_light, "save")
                moved = vcpu.vif.refill_from_overflow()
                yield pcpu.op(
                    "virq_inject_lr", costs.virq_inject_lr * max(1, moved), "vgic"
                )
                yield pcpu.op("restore_gp_light", costs.gp_restore_light, "restore")
                pcpu.arch.eret(ExceptionLevel.EL1)
                yield pcpu.op("eret_to_guest", costs.eret_to_el1, "trap")
        elif self.machine.platform.vapic_enabled:
            self.machine.apic.lapic(pcpu.index).eoi(virq)
            yield pcpu.op("virq_complete_vapic", costs.virq_complete_vapic, "guest")
        else:
            pcpu.arch.vmexit("eoi")
            yield pcpu.op("vmexit_hw", costs.vmexit_hw, "hw-switch")
            self.machine.apic.lapic(pcpu.index).eoi(virq)
            yield pcpu.op("eoi_emulate", costs.eoi_emulate_xen, "emul")
            yield pcpu.op("vmentry_hw", costs.vmentry_hw, "hw-switch")
            pcpu.arch.vmentry()

    def switch_vm(self, vcpu_out, vcpu_in):
        if vcpu_out.pcpu is not vcpu_in.pcpu:
            raise ConfigurationError("VM switch benchmark uses one physical core")
        yield from self._domain_switch(vcpu_out.pcpu, vcpu_in)

    def kick_backend(self, vcpu, packet=None):
        """Row 6: DomU -> (Xen, IPI, idle->Dom0 switch, upcall) -> netback."""
        observed = self.engine.event("netback-signaled")
        self.engine.spawn(self._kick(vcpu, packet, observed), "pv-kick")
        return observed

    def _kick(self, vcpu, packet, observed):
        pcpu, costs = vcpu.pcpu, self.costs
        span = self.machine.obs.spans.begin("evtchn_kick", "io", pcpu.index)
        worker = self.netback_workers[vcpu.vm.name]
        yield from self._xen_entry(vcpu, "evtchn-send")
        yield pcpu.op("evtchn_send", costs.evtchn_send, "hv")
        if self.machine.is_arm:
            yield pcpu.op(
                "xen_vcpu_wake_slowpath", costs.xen_vcpu_wake_slowpath, "sched"
            )
        tx_port, _rx_port = self._io_ports[vcpu.vm.name]
        target = self.event_channels.send(tx_port)
        self._deliver_event(
            target,
            on_upcall=lambda: worker.signal_observed_tx(observed, packet),
        )
        yield from self._xen_return(vcpu)
        self.machine.obs.spans.end(span)

    def notify_guest(self, vm, virq=VIRQ_EVTCHN, packet=None):
        """Row 7: Dom0 -> (Xen, IPI, idle->DomU switch) -> guest virq."""
        done = self.engine.event("guest-notified")
        self.engine.spawn(self._notify(vm, virq, done), "pv-notify")
        return done

    def _notify(self, vm, virq, done):
        dom0_vcpu = self.dom0.vcpu(0)
        pcpu, costs = dom0_vcpu.pcpu, self.costs
        span = self.machine.obs.spans.begin("evtchn_notify", "io", pcpu.index)
        yield from self._xen_entry(dom0_vcpu, "evtchn-send")
        yield pcpu.op("evtchn_send", costs.evtchn_send, "hv")
        if self.machine.is_arm:
            yield pcpu.op(
                "xen_vcpu_wake_slowpath", costs.xen_vcpu_wake_slowpath, "sched"
            )
        dst = vm.next_irq_vcpu()
        dst.queue_virq(virq)
        self._deliver_event(dst, done=done)
        yield from self._xen_return(dom0_vcpu)
        self.machine.obs.spans.end(span)

    def deliver_timer_virq(self, vcpu, done=None):
        """Virtual-timer expiry: handled entirely in EL2 (Xen emulates
        timers in the hypervisor proper) and injected locally."""
        vcpu.pcpu.raise_physical_irq(
            27, {"kind": "evtchn_deliver", "vcpu": vcpu, "done": done}
        )

    # --- event delivery / physical IRQ handling ----------------------------------

    def _deliver_event(self, dst_vcpu, done=None, on_upcall=None):
        """Kick ``dst_vcpu``'s PCPU with a physical IPI; the handler does
        an inject (running) or an idle->domain switch (parked)."""
        self.machine.ipi.send(
            dst_vcpu.pcpu,
            EVTCHN_IPI_IRQ,
            {
                "kind": "evtchn_deliver",
                "vcpu": dst_vcpu,
                "done": done,
                "on_upcall": on_upcall,
            },
        )

    def _irq_handler(self, pcpu, irq, payload):
        if not isinstance(payload, dict) or "kind" not in payload:
            raise HardwareFault("Xen got an unroutable physical irq %r" % (irq,))
        kind = payload["kind"]
        vcpu = payload["vcpu"]
        done = payload.get("done")
        costs = self.costs
        if kind == "inject_running":
            virqs = vcpu.take_pending_virqs()
            virq = virqs[0] if virqs else VIRQ_IPI
            yield from self._inject_into_running(vcpu, virq)
            handled = yield from self._guest_handles_virq(vcpu, virq)
            if done is not None:
                done.fire(self.engine.now)
            return handled
        if kind == "evtchn_deliver":
            virqs = vcpu.take_pending_virqs()
            virq = virqs[0] if virqs else VIRQ_EVTCHN
            if pcpu.current_context is IDLE:
                yield from self._domain_switch(pcpu, vcpu, inject_virq=virq)
                yield vcpu.pcpu.op("guest_irq_entry", costs.guest_irq_entry, "guest")
                if self.machine.is_arm:
                    vcpu.vif.guest_acknowledge()
                else:
                    lapic = self.machine.apic.lapic(pcpu.index)
                    lapic.request(virq)
                    lapic.deliver_highest()
            elif pcpu.current_context is vcpu:
                yield from self._inject_into_running(vcpu, virq)
                yield from self._guest_handles_virq(vcpu, virq)
            else:
                raise HardwareFault(
                    "evtchn delivery to %s but pcpu%d runs %r"
                    % (vcpu.name, pcpu.index, pcpu.current_context)
                )
            if payload.get("on_upcall") is not None:
                yield pcpu.op("evtchn_upcall", costs.evtchn_upcall, "guest")
                payload["on_upcall"]()
            if done is not None:
                done.fire(self.engine.now)
            # The guest's upcall handler completes the interrupt (outside
            # the measured window, which ends at delivery).
            yield from self.complete_virq(vcpu, virq)
            return virq
        raise HardwareFault("unknown Xen irq payload kind %r" % (kind,))

    def _inject_into_running(self, vcpu, virq):
        """Physical IPI landed while the target domain runs: trap to Xen,
        ack, inject, return."""
        pcpu, costs = vcpu.pcpu, self.costs
        span = self.machine.obs.spans.begin("virq_inject_running", "interrupt", pcpu.index)
        if self.machine.is_arm:
            pcpu.arch.trap_to_el2("phys-irq")
            yield pcpu.op("trap_to_el2", costs.trap_to_el2, "trap")
            yield pcpu.op("save_gp_light", costs.gp_save_light, "save")
            yield pcpu.op("gic_phys_ack", costs.gic_phys_ack, "irq")
            yield pcpu.op("xen_inject_slowpath", costs.xen_inject_slowpath, "emul")
            vcpu.vif.inject(virq)
            self.stats["virqs_injected"] += 1
            yield pcpu.op("virq_inject_lr", costs.virq_inject_lr, "vgic")
            yield pcpu.op("restore_gp_light", costs.gp_restore_light, "restore")
            pcpu.arch.eret(ExceptionLevel.EL1)
            yield pcpu.op("eret_to_guest", costs.eret_to_el1, "trap")
        else:
            pcpu.arch.vmexit("phys-irq")
            yield pcpu.op("vmexit_hw", costs.vmexit_hw, "hw-switch")
            yield pcpu.op("apic_phys_ack", costs.apic_phys_ack, "irq")
            pcpu.arch.inject_on_next_entry(virq)
            self.stats["virqs_injected"] += 1
            yield pcpu.op("virq_inject", costs.virq_inject, "inject")
            yield pcpu.op("vmentry_hw", costs.vmentry_hw, "hw-switch")
            pcpu.arch.vmentry()
        self.machine.obs.spans.end(span)

    def _guest_handles_virq(self, vcpu, virq):
        result = yield from super()._guest_handles_virq(vcpu, virq)
        if not self.machine.is_arm:
            lapic = self.machine.apic.lapic(vcpu.pcpu.index)
            lapic.request(virq)
            lapic.deliver_highest()
        return result

    # --- Dom0 data path -------------------------------------------------------------

    def dom0_transmit(self, packet):
        """netback hands a (grant-copied) packet to Dom0's stack + NIC."""
        self.engine.spawn(self._dom0_tx(packet), name="dom0-tx")

    def _dom0_tx(self, packet):
        pcpu = self.dom0.vcpu(0).pcpu
        if self.netstack is not None:
            yield pcpu.op("dom0_bridge_tx", self.netstack.bridge_tx_cycles(), "net")
            yield pcpu.op("dom0_tx_stack", self.netstack.host_tx_cycles(), "net")
        packet.stamp("host.tx", self.engine.now)
        if self.host_nic is not None:
            self.host_nic.transmit(packet)

    def _on_physical_receive(self, packet):
        self.engine.spawn(self._dom0_rx(packet), name="dom0-rx")

    def _dom0_rx(self, packet):
        """Physical IRQ -> Xen -> (idle->Dom0 switch) -> Dom0 driver/stack
        -> netback grant copy -> DomU notify."""
        domu = next(vm for vm in self.vms if vm is not self.dom0)
        dom0_vcpu = self.dom0.vcpu(0)
        pcpu = dom0_vcpu.pcpu
        costs = self.costs
        # The IRQ is taken by Xen (EL2/root) regardless of what runs.
        if self.machine.is_arm:
            if pcpu.arch.current_el != ExceptionLevel.EL2:
                pcpu.arch.trap_to_el2("nic-irq")
                yield pcpu.op("trap_to_el2", costs.trap_to_el2, "trap")
            yield pcpu.op("gic_phys_ack", costs.gic_phys_ack, "irq")
        else:
            if pcpu.current_context is not IDLE and not pcpu.arch.root_mode:
                pcpu.arch.vmexit("nic-irq")
                yield pcpu.op("vmexit_hw", costs.vmexit_hw, "hw-switch")
            yield pcpu.op("apic_phys_ack", costs.apic_phys_ack, "irq")
        if pcpu.current_context is IDLE:
            yield from self._domain_switch(pcpu, dom0_vcpu, inject_virq=VIRQ_EVTCHN)
            yield pcpu.op("guest_irq_entry", costs.guest_irq_entry, "guest")
            if self.machine.is_arm:
                dom0_vcpu.vif.guest_acknowledge()
            else:
                lapic = self.machine.apic.lapic(pcpu.index)
                lapic.request(VIRQ_EVTCHN)
                lapic.deliver_highest()
            yield from self.complete_virq(dom0_vcpu, VIRQ_EVTCHN)
        elif pcpu.current_context is dom0_vcpu:
            yield from self._inject_into_running(dom0_vcpu, VIRQ_EVTCHN)
            yield from self._guest_handles_virq(dom0_vcpu, VIRQ_EVTCHN)
            yield from self.complete_virq(dom0_vcpu, VIRQ_EVTCHN)
        packet.stamp("host.rx_driver", self.engine.now)
        if self.netstack is not None:
            yield pcpu.op("dom0_irq_rx_stack", self.netstack.host_rx_cycles(), "net")
            yield pcpu.op("dom0_bridge_rx", self.netstack.bridge_cycles(), "net")
        packet.stamp("host.rx_done", self.engine.now)
        worker = self.netback_workers[domu.name]
        yield from worker.deliver_rx(packet)
