"""Xen: the Type 1 (bare-metal) hypervisor model.

The hypervisor itself runs in EL2 (ARM) / root mode (x86) and implements
only scheduling, memory management, the interrupt controller, and timers.
All device I/O is offloaded to Dom0, a privileged Linux VM — so every I/O
interaction pays domain signaling (event channels, physical IPIs, and
VM switches away from the idle domain) plus grant-copy data movement.
"""

from repro.hv.xen.xen import XenHypervisor

__all__ = ["XenHypervisor"]
