"""Xen's credit scheduler (the default in Xen 4.5), simplified.

With the paper's recommended pinning (each VCPU on its own PCPU) the
scheduler's pick is trivial, but the accounting still matters for the
oversubscription scenarios the VM Switch microbenchmark represents and
for the ablation benches that unpin VCPUs.
"""

from repro.errors import ConfigurationError

WEIGHT_DEFAULT = 256
CREDITS_PER_TICK = 300


class CreditAccount:
    """Per-VCPU credit state."""

    __slots__ = ("vcpu", "weight", "credits", "runnable")

    def __init__(self, vcpu, weight=WEIGHT_DEFAULT):
        self.vcpu = vcpu
        self.weight = weight
        self.credits = 0
        self.runnable = False


class CreditScheduler:
    """Credit accounting + per-PCPU run queues with idle fallback."""

    def __init__(self):
        self._accounts = {}
        #: pcpu index -> ordered runnable accounts
        self._runqueues = {}

    def register(self, vcpu, weight=WEIGHT_DEFAULT):
        if vcpu.name in self._accounts:
            raise ConfigurationError("vcpu %s already registered" % vcpu.name)
        account = CreditAccount(vcpu, weight)
        self._accounts[vcpu.name] = account
        self._runqueues.setdefault(vcpu.pcpu.index, [])
        return account

    def wake(self, vcpu):
        """Mark runnable and queue on its pinned PCPU."""
        account = self._account(vcpu)
        if not account.runnable:
            account.runnable = True
            self._runqueues[vcpu.pcpu.index].append(account)

    def block(self, vcpu):
        account = self._account(vcpu)
        account.runnable = False
        queue = self._runqueues[vcpu.pcpu.index]
        if account in queue:
            queue.remove(account)

    def tick(self):
        """Periodic credit refill proportional to weight."""
        total_weight = sum(a.weight for a in self._accounts.values()) or 1
        for account in self._accounts.values():
            account.credits += CREDITS_PER_TICK * account.weight // total_weight

    def charge(self, vcpu, amount):
        self._account(vcpu).credits -= amount

    def pick_next(self, pcpu_index):
        """Highest-credit runnable VCPU on this PCPU, or None (idle)."""
        queue = self._runqueues.get(pcpu_index, [])
        if not queue:
            return None
        best = max(queue, key=lambda account: account.credits)
        return best.vcpu

    def credits_of(self, vcpu):
        return self._account(vcpu).credits

    def _account(self, vcpu):
        if vcpu.name not in self._accounts:
            raise ConfigurationError("vcpu %s not registered" % vcpu.name)
        return self._accounts[vcpu.name]
