"""Xen netback: the Dom0 network backend with grant-copy data movement.

The structural disadvantage the paper measures: Dom0 cannot address DomU
memory, so every payload crosses the domain boundary through the grant
mechanism — map hypercall + copy + unmap hypercall + global TLB
invalidation — where KVM's vhost simply reads/writes guest buffers.
"""

from repro.hv.base import GRANT_RING_SLOTS, GRANT_RX_BASE_GPA, GRANT_TX_BASE_GPA
from repro.hw.mem.grant import grant_copy_cycles
from repro.sim import Channel


class NetbackWorker:
    """The netback driver instance in Dom0 serving one DomU's vif.

    The worker's loop runs once Dom0's evtchn upcall has signaled it (the
    Xen model performs the idle->Dom0 switch and upcall before calling
    :meth:`signal_observed_tx`), so by the time the loop body executes,
    Dom0 is on core and the costs charged here are Dom0 kernel work.
    """

    def __init__(self, hypervisor, domu, pcpu, shootdown):
        self.hypervisor = hypervisor
        self.domu = domu
        #: Dom0 VCPU0's physical CPU — where netback softirqs run
        self.pcpu = pcpu
        self.shootdown = shootdown
        engine = hypervisor.engine
        self.tx_channel = Channel(engine, "%s.netback.tx" % domu.name)
        self.processed_tx = 0
        self.processed_rx = 0
        self._grant_ops = hypervisor.machine.obs.metrics.counter("xen.grant_ops")
        self._proc = engine.spawn(self._run(), name="%s.netback" % domu.name)

    def signal_observed_tx(self, observed_event=None, packet=None):
        """Dom0's evtchn upcall schedules the netback softirq."""
        self.tx_channel.put((observed_event, packet))

    def _run(self):
        hv = self.hypervisor
        costs = hv.costs
        while True:
            observed_event, packet = yield from self.tx_channel.get()
            # Softirq dispatch + tx ring scan until the request is seen.
            yield self.pcpu.op("netback_kick", costs.netback_kick, "io")
            self.processed_tx += 1
            if observed_event is not None and not observed_event.fired:
                observed_event.fire(hv.engine.now)
            if packet is not None:
                yield from self._grant_copy(packet, "grant_copy_tx", GRANT_TX_BASE_GPA)
                hv.dom0_transmit(packet)

    def deliver_rx(self, packet, delivered_event=None):
        """Dom0 stack hands a received packet to netback for the DomU.

        No zero copy: the payload sits in a Dom0 kernel buffer and must
        be grant-copied into the ring buffer the DomU offered.
        """
        yield from self._grant_copy(packet, "grant_copy_rx", GRANT_RX_BASE_GPA)
        self.processed_rx += 1
        done = self.hypervisor.notify_guest(self.domu, packet=packet)
        if delivered_event is not None:
            done.on_fire(lambda value: delivered_event.fire(value))

    def _grant_copy(self, packet, label, page_base):
        """One grant-mediated payload copy across the domain boundary."""
        hv = self.hypervisor
        grants = hv.grant_tables[self.domu.name]
        ref = grants.grant(gpa_page=page_base + packet.id % GRANT_RING_SLOTS)
        grants.map_grant(ref, "dom0")
        grants.unmap_grant(ref, "dom0")
        grants.revoke(ref)
        self._grant_ops.inc()
        yield self.pcpu.op(
            label, grant_copy_cycles(hv.costs, self.shootdown, packet.size), "copy"
        )
