"""Xen event channels: the interdomain signaling primitive.

An event channel binds a local port in one domain to a remote port in
another; EVTCHNOP_send marks the remote port pending and kicks the bound
VCPU.  This is the notification half of Xen PV I/O (the data half is the
grant table, :mod:`repro.hw.mem.grant`).
"""

from repro.errors import ProtocolError


class EventChannel:
    """One interdomain channel endpoint pair."""

    __slots__ = ("port", "local_vcpu", "remote_vcpu", "pending")

    def __init__(self, port, local_vcpu, remote_vcpu):
        self.port = port
        self.local_vcpu = local_vcpu
        self.remote_vcpu = remote_vcpu
        self.pending = False


class EventChannelTable:
    """All bound channels, port-indexed (a single global table for the
    machine, which is equivalent to Xen's per-domain tables for our two-
    domain setups)."""

    def __init__(self, metrics=None):
        self._next_port = 1
        self._channels = {}
        self.sends = 0
        #: shared observability counter (see repro.obs), if registered
        self._send_counter = metrics.counter("xen.evtchn_sends") if metrics else None

    def bind_interdomain(self, local_vcpu, remote_vcpu):
        """Create a channel pair; returns (local_port, remote_port)."""
        local = EventChannel(self._next_port, local_vcpu, remote_vcpu)
        remote = EventChannel(self._next_port + 1, remote_vcpu, local_vcpu)
        self._channels[local.port] = local
        self._channels[remote.port] = remote
        self._next_port += 2
        return local.port, remote.port

    def send(self, port):
        """EVTCHNOP_send on ``port``: returns the VCPU to kick."""
        channel = self._lookup(port)
        self.sends += 1
        if self._send_counter is not None:
            self._send_counter.inc()
        self._partner(channel).pending = True
        return channel.remote_vcpu

    def consume_pending(self, port):
        """The guest's upcall handler clears and handles the pending bit."""
        channel = self._lookup(port)
        if not channel.pending:
            raise ProtocolError("port %d has no pending event" % port)
        channel.pending = False

    def is_pending(self, port):
        return self._lookup(port).pending

    def _partner(self, channel):
        partner_port = channel.port + 1 if channel.port % 2 else channel.port - 1
        return self._channels[partner_port]

    def _lookup(self, port):
        if port not in self._channels:
            raise ProtocolError("unknown event channel port %d" % port)
        return self._channels[port]
