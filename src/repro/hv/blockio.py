"""Paravirtual block I/O paths (paper Section III configuration).

The paper configures KVM with ``cache=none`` virtio block devices and
Xen with its in-kernel block backend.  The control path mirrors the
network one — doorbell out, virtual interrupt back — but the data path
differs:

* KVM/virtio-blk: the host submits the guest's buffer directly to the
  device (zero copy; ``cache=none`` bypasses the host page cache).
* Xen/blkback: Dom0 *grant-maps* the guest's pages so the device can DMA
  into them, and unmaps afterwards — no payload copy, but the map/unmap
  hypercalls and the TLB invalidation are paid per request.
"""

from repro.errors import ConfigurationError
from repro.hv.base import GRANT_BLK_BASE_GPA, PAGE_SIZE

#: virtual IRQ for block completions
VIRQ_BLOCK = 49


class BlockIoPath:
    """Drives block requests through one testbed's hypervisor + device."""

    def __init__(self, hypervisor, device):
        if device is None:
            raise ConfigurationError("block path needs a device model")
        self.hypervisor = hypervisor
        self.device = device
        self.completed = 0

    def submit(self, vcpu, nbytes, write=False):
        """Guest submits one request; returns the completion SimEvent
        (fires when the guest receives the completion interrupt)."""
        hv = self.hypervisor
        done = hv.engine.event("block-complete")
        hv.engine.spawn(self._request(vcpu, nbytes, write, done), "block-io")
        return done

    def _request(self, vcpu, nbytes, write, done):
        hv = self.hypervisor
        observed = hv.kick_backend(vcpu)
        yield observed
        if hv.design == "type1":
            yield from self._xen_backend(vcpu, nbytes, write, done)
        else:
            yield from self._kvm_backend(vcpu, nbytes, write, done)

    def _kvm_backend(self, vcpu, nbytes, write, done):
        """Host kernel submits the guest buffer directly (zero copy)."""
        hv = self.hypervisor
        worker = hv.vhost_workers[vcpu.vm.name]
        yield worker.pcpu.op("blk_submit", hv.costs.vhost_dequeue, "io")
        yield worker.pcpu.op(
            "device_service", self.device.service_cycles(nbytes), "device"
        )
        self.completed += 1
        completion = hv.notify_guest(vcpu.vm, virq=VIRQ_BLOCK)
        completion.on_fire(lambda value: done.fire(value))

    def _xen_backend(self, vcpu, nbytes, write, done):
        """blkback in Dom0: grant map for DMA, service, unmap, notify."""
        hv = self.hypervisor
        costs = hv.costs
        pcpu = hv.dom0.vcpu(0).pcpu
        grants = hv.grant_tables[vcpu.vm.name]
        pages = max(1, nbytes // PAGE_SIZE)
        for page in range(pages):
            ref = grants.grant(gpa_page=GRANT_BLK_BASE_GPA + page)
            grants.map_grant(ref, "dom0")
            yield pcpu.op("grant_map", costs.grant_map, "grant")
        yield pcpu.op("device_service", self.device.service_cycles(nbytes), "device")
        yield from self._unmap_all(grants, pcpu, pages)
        self.completed += 1
        completion = hv.notify_guest(vcpu.vm, virq=VIRQ_BLOCK)
        completion.on_fire(lambda value: done.fire(value))

    def _unmap_all(self, grants, pcpu, pages):
        costs = self.hypervisor.costs
        shootdown = self.hypervisor.shootdown
        for _ in range(pages):
            yield pcpu.op("grant_unmap", costs.grant_unmap, "grant")
        # one batched TLB invalidation for the whole request
        yield pcpu.op("tlb_invalidate", shootdown.invalidate_cycles(), "grant")
        for ref in grants.mapped_refs("dom0"):
            grants.unmap_grant(ref, "dom0")
            grants.revoke(ref)


def native_block_cycles(device, nbytes, kernel):
    """The native round trip: submit + device + completion IRQ."""
    return (
        kernel.syscall_cycles()
        + device.service_cycles(nbytes)
        + kernel.resched_ipi_cycles()
    )
