"""The KVM hypervisor model (Type 2), for ARM (split-mode or VHE) and x86.

Implements the seven Table I operations as explicit step-by-step paths.
The structural story of the paper is encoded here:

* ARM split-mode transitions pay the double trap + full state switch.
* The GIC distributor is emulated in the EL1 *host* (after a full exit);
  Xen emulates it in EL2 (see :mod:`repro.hv.xen.xen`).
* I/O backends are host threads with privileged access to VM memory —
  zero copy, no extra VM-switch hops.
* With VHE the host lives in EL2 and transitions stop switching EL1
  state, collapsing the hypercall path to Xen-like cost.
"""

from repro.errors import ConfigurationError, HardwareFault
from repro.hv.base import (
    VIRQ_IPI,
    VIRQ_VIRTIO_NET,
    Hypervisor,
    VcpuState,
)
from repro.hv.kvm import world_switch as ws
from repro.hv.kvm.vhost import VhostWorker
from repro.hv.kvm.virtio import VirtioNetDevice
from repro.hw.cpu.arm import ExceptionLevel

#: Physical IRQ numbers KVM uses for its host-side signaling.
HOST_IPI_IRQ = 1
HOST_WAKE_IRQ = 2


class KvmHypervisor(Hypervisor):
    """KVM integrated with a Linux host OS."""

    design = "type2"

    def __init__(self, machine, vhe=False):
        super().__init__(machine)
        if vhe and not machine.is_arm:
            raise ConfigurationError("VHE is an ARM (ARMv8.1) feature")
        if vhe and not machine.platform.vhe_capable:
            raise ConfigurationError("machine is not VHE capable")
        self.vhe = vhe
        self.name = "kvm-vhe" if vhe else "kvm"
        #: host-side resources per VM
        self.virtio_devices = {}
        self.vhost_workers = {}
        self.host_nic = None
        self.netstack = None
        for pcpu in machine.pcpus:
            pcpu.irq_handler = self._irq_handler
            pcpu.current_context = "host"
            if machine.is_arm:
                ws.ensure_host_context(pcpu)
                if vhe:
                    pcpu.arch.set_e2h(True)
                    pcpu.arch.trap_to_el2("boot-into-el2-host")
        # Fast-lane sites: the spec-id chain each compiled recording must
        # match depends on which world switch this instance performs.
        if not machine.is_arm:
            exit_id = "hv/kvm/world_switch.py::x86_exit"
            enter_id = "hv/kvm/world_switch.py::x86_enter"
        elif vhe:
            exit_id = "hv/kvm/world_switch.py::vhe_exit"
            enter_id = "hv/kvm/world_switch.py::vhe_enter"
        else:
            exit_id = "hv/kvm/world_switch.py::split_mode_exit"
            enter_id = "hv/kvm/world_switch.py::split_mode_enter"
        fastlane = machine.fastlane
        self._fast_hypercall = fastlane.site(
            "%s.hypercall" % self.name,
            (exit_id, "hv/kvm/kvm.py::KvmHypervisor._hypercall_path", enter_id),
        )
        self._fast_intc = fastlane.site(
            "%s.intc_trap" % self.name,
            (exit_id, "hv/kvm/kvm.py::KvmHypervisor._intc_path", enter_id),
        )

    # --- configuration ----------------------------------------------------

    def _on_vm_created(self, vm):
        device = VirtioNetDevice(vm)
        self.virtio_devices[vm.name] = device
        # vhost worker runs on a host-side PCPU: by the paper's pinning
        # recipe, host work is kept off the VCPUs' PCPUs.
        host_side = self._host_side_pcpu(vm)
        self.vhost_workers[vm.name] = VhostWorker(self, vm, device, host_side)

    def _host_side_pcpu(self, vm):
        vcpu_pcpus = {vcpu.pcpu.index for vcpu in vm.vcpus}
        for pcpu in self.machine.pcpus:
            if pcpu.index not in vcpu_pcpus:
                return pcpu
        return self.machine.pcpus[-1]

    def attach_network(self, nic, netstack):
        """Connect the physical NIC + host netstack cost model."""
        self.host_nic = nic
        self.netstack = netstack
        nic.on_receive = self._on_physical_receive

    # --- benchmark setup helpers (zero-cost state installation) -------------

    # repro-lint: ignore[SYM001] -- zero-cost benchmark setup: installs a
    # guest image that was never live on this PCPU, so there is nothing
    # to save (measured windows start after installation).
    def install_guest(self, vcpu):
        """Put ``vcpu`` in GUEST state on its pinned PCPU (no cost)."""
        pcpu = vcpu.pcpu
        arch = pcpu.arch
        if self.machine.is_arm:
            if arch.current_el == ExceptionLevel.EL2:
                arch.eret(ExceptionLevel.EL1)
            arch.load_context(vcpu.saved_context)
            arch.enable_virt_features(vcpu.vm.vmid)
        else:
            if not arch.root_mode:
                if arch.loaded_vmcs is vcpu.vmcs:
                    vcpu.state = VcpuState.GUEST
                    pcpu.current_context = vcpu
                    return
                arch.vmexit("reinstall")
            arch.load_vmcs(vcpu.vmcs)
            arch.vmentry()
        vcpu.state = VcpuState.GUEST
        pcpu.current_context = vcpu

    # repro-lint: ignore[SYM001] -- save half of the idle transition: the
    # matching restore runs on the wake_enter path (_enter world switch)
    # when the blocked VCPU thread is next scheduled.
    def park_vcpu(self, vcpu):
        """Model the VM idling: WFI -> the VCPU thread blocks in the host."""
        pcpu = vcpu.pcpu
        arch = pcpu.arch
        if self.machine.is_arm:
            if pcpu.current_context is vcpu:
                vcpu.saved_context = arch.save_context(ws.ARM_SWITCH_ORDER)
                arch.disable_virt_features()
                if self.vhe and arch.current_el != ExceptionLevel.EL2:
                    arch.trap_to_el2("park")  # VHE host idles in EL2
        else:
            if pcpu.current_context is vcpu and not arch.root_mode:
                arch.vmexit("hlt")
        vcpu.state = VcpuState.BLOCKED
        if pcpu.current_context is vcpu:
            pcpu.current_context = "host"

    # --- internal switch selection ------------------------------------------

    def _exit(self, vcpu, dispatch=True, reason="trap"):
        self.stats["traps"] += 1
        if not self.machine.is_arm:
            return ws.x86_exit(self.machine, vcpu, dispatch, reason)
        if self.vhe:
            return ws.vhe_exit(self.machine, vcpu, dispatch, reason)
        return ws.split_mode_exit(self.machine, vcpu, dispatch, reason)

    def _enter(self, vcpu, inject_virq=None):
        if not self.machine.is_arm:
            return ws.x86_enter(self.machine, vcpu, inject_virq)
        if self.vhe:
            return ws.vhe_enter(self.machine, vcpu, inject_virq)
        return ws.split_mode_enter(self.machine, vcpu, inject_virq)

    # --- Table I operations ----------------------------------------------------

    def run_hypercall(self, vcpu):
        """Row 1: null hypercall round trip (fast lane when warm)."""
        return self._fast_hypercall.run(vcpu, self._hypercall_path)

    def _hypercall_path(self, vcpu):
        span = self.machine.obs.spans.begin("hypercall", "operation", vcpu.pcpu.index)
        yield from self._exit(vcpu, reason="hypercall")
        yield vcpu.pcpu.op("hypercall_body", self.costs.hypercall_body, "host")
        yield from self._enter(vcpu)
        self.machine.obs.spans.end(span)

    def run_intc_trap(self, vcpu):
        """Row 2: emulated interrupt-controller register access.

        KVM's distinguishing cost: the emulation runs in the *host*, so
        the access pays the full exit before any emulation happens.
        """
        return self._fast_intc.run(vcpu, self._intc_path)

    def _intc_path(self, vcpu):
        span = self.machine.obs.spans.begin("intc_trap", "operation", vcpu.pcpu.index)
        if self.machine.is_arm:
            self._distributor_stage2_fault(vcpu)  # the trap's real cause
        yield from self._exit(vcpu, reason="intc-mmio")
        pcpu, costs = vcpu.pcpu, self.costs
        yield pcpu.op("mmio_decode", costs.mmio_decode, "emul")
        if self.machine.is_arm:
            self.machine.gic.distributor.is_enabled(VIRQ_VIRTIO_NET)
            yield pcpu.op("gic_dist_access", costs.gic_dist_access, "emul")
        else:
            yield pcpu.op("apic_access", costs.apic_access_kvm, "emul")
        yield from self._enter(vcpu)
        self.machine.obs.spans.end(span)

    def send_virtual_ipi(self, src_vcpu, dst_vcpu):
        """Row 3: virtual IPI between VCPUs on different PCPUs."""
        if src_vcpu.pcpu is dst_vcpu.pcpu:
            raise ConfigurationError("virtual IPI benchmark needs distinct PCPUs")
        done = self.engine.event("virtual-ipi-handled")
        self.engine.spawn(
            self._send_virtual_ipi(src_vcpu, dst_vcpu, done), name="vipi-send"
        )
        return done

    def _send_virtual_ipi(self, src_vcpu, dst_vcpu, done):
        pcpu, costs = src_vcpu.pcpu, self.costs
        span = self.machine.obs.spans.begin("virtual_ipi_send", "operation", pcpu.index)
        if self.machine.is_arm:
            self._distributor_stage2_fault(src_vcpu)  # SGIR is MMIO too
        yield from self._exit(src_vcpu, reason="sgi-write")
        yield pcpu.op("mmio_decode", costs.mmio_decode, "emul")
        if self.machine.is_arm:
            yield pcpu.op("gic_sgi_emulate", costs.gic_sgi_emulate, "emul")
        else:
            yield pcpu.op("apic_ipi_emulate", costs.apic_ipi_emulate, "emul")
        yield pcpu.op("virq_set_pending", costs.virq_set_pending, "emul")
        dst_vcpu.queue_virq(VIRQ_IPI)
        self.stats["virqs_injected"] += 1
        self.machine.ipi.send(
            dst_vcpu.pcpu,
            HOST_IPI_IRQ,
            {"kind": "inject_running", "vcpu": dst_vcpu, "done": done},
        )
        yield from self._enter(src_vcpu)
        self.machine.obs.spans.end(span)

    def complete_virq(self, vcpu, virq):
        """Row 4: guest acknowledges-and-completes a virtual interrupt."""
        pcpu, costs = vcpu.pcpu, self.costs
        if self.machine.is_arm:
            # Hardware-assisted: the GICV deactivates the LR, no trap.
            vcpu.vif.guest_complete(virq)
            yield pcpu.op("virq_complete_hw", costs.virq_complete_hw, "guest")
            if vcpu.vif.overflow:
                # Maintenance interrupt: an LR freed while software-
                # pending interrupts wait — the hypervisor refills.
                # For split-mode KVM this is a *full* exit.
                yield from self._exit(vcpu, dispatch=False, reason="maintenance")
                moved = vcpu.vif.refill_from_overflow()
                yield pcpu.op(
                    "virq_inject_lr", costs.virq_inject_lr * max(1, moved), "vgic"
                )
                yield from self._enter(vcpu)
        elif self.machine.platform.vapic_enabled:
            self.machine.apic.lapic(pcpu.index).eoi(virq)
            yield pcpu.op("virq_complete_vapic", costs.virq_complete_vapic, "guest")
        else:
            # The EOI write traps.
            yield from self._exit(vcpu, dispatch=False, reason="eoi")
            self.machine.apic.lapic(pcpu.index).eoi(virq)
            yield pcpu.op("eoi_emulate", costs.eoi_emulate_kvm, "emul")
            yield from self._enter(vcpu)

    def switch_vm(self, vcpu_out, vcpu_in):
        """Row 5: switch VMs on one core — for KVM, a host thread switch
        between two VCPU threads, with the VM state moved on each side."""
        if vcpu_out.pcpu is not vcpu_in.pcpu:
            raise ConfigurationError("VM switch benchmark uses one physical core")
        self.stats["vm_switches"] += 1
        pcpu, costs = vcpu_out.pcpu, self.costs
        span = self.machine.obs.spans.begin("vm_switch", "operation", pcpu.index)
        yield from self._exit(vcpu_out, reason="preempt")
        if self.vhe:
            yield from ws.vhe_deferred_save(self.machine, vcpu_out)
        yield pcpu.op("host_thread_switch", costs.host_thread_switch, "sched")
        if self.vhe:
            yield from ws.vhe_deferred_restore(self.machine, vcpu_in)
        yield from self._enter(vcpu_in)
        self.machine.obs.spans.end(span)

    def kick_backend(self, vcpu, packet=None):
        """Row 6 (I/O Latency Out): virtio doorbell -> vhost signaled.

        Returns the SimEvent fired when the backend receives the signal
        (synchronously in the exiting context — see vhost.py).
        """
        observed = self.engine.event("vhost-signaled")
        self.engine.spawn(self._kick(vcpu, packet, observed), name="virtio-kick")
        return observed

    def _kick(self, vcpu, packet, observed):
        pcpu, costs = vcpu.pcpu, self.costs
        span = self.machine.obs.spans.begin("virtio_kick", "io", pcpu.index)
        device = self.virtio_devices[vcpu.vm.name]
        if packet is not None:
            device.tx.guest_post({"packet": packet})
        device.tx.guest_kick()
        if self.machine.is_arm:
            # The doorbell is an MMIO Stage-2 fault: full exit, decode,
            # then the host resolves it into an ioeventfd.
            yield from self._exit(vcpu, reason="virtio-kick")
            yield pcpu.op("mmio_decode", costs.mmio_decode, "emul")
            yield pcpu.op("eventfd_signal", costs.eventfd_signal, "io")
        else:
            # x86 ioeventfd fast path: resolved right after the hardware
            # exit, no full dispatch.
            yield from self._exit(vcpu, dispatch=False, reason="virtio-kick")
            yield pcpu.op("eventfd_signal", costs.eventfd_signal, "io")
        observed.fire(self.engine.now)
        self.vhost_workers[vcpu.vm.name].signal_kick(packet)
        yield from self._enter(vcpu)
        self.machine.obs.spans.end(span)

    def notify_guest(self, vm, virq=VIRQ_VIRTIO_NET, packet=None):
        """Row 7 (I/O Latency In): backend signals the VM; the event fires
        when the guest's interrupt handler runs."""
        done = self.engine.event("guest-notified")
        self.engine.spawn(self._notify(vm, virq, packet, done), name="virtio-notify")
        return done

    def _notify(self, vm, virq, packet, done):
        worker = self.vhost_workers[vm.name]
        pcpu, costs = worker.pcpu, self.costs
        span = self.machine.obs.spans.begin("virtio_notify", "io", pcpu.index)
        dst = vm.next_irq_vcpu()
        dst.queue_virq(virq)
        self.stats["virqs_injected"] += 1
        yield pcpu.op("virq_set_pending", costs.virq_set_pending, "emul")
        # repro-lint: ignore[FLW001] -- intentional asymmetry: waking a
        # blocked VCPU thread charges the host scheduler (sched_wakeup,
        # Table V), while kicking a running one costs the sender nothing
        # -- the destination PCPU's IPI handler pays for the injection.
        if dst.state == VcpuState.GUEST:
            self.machine.ipi.send(
                dst.pcpu, HOST_IPI_IRQ, {"kind": "inject_running", "vcpu": dst, "done": done}
            )
        else:
            # The VCPU thread is blocked (VM idle in WFI/HLT): wake it.
            yield pcpu.op("sched_wakeup", costs.sched_wakeup, "sched")
            self.machine.ipi.send(
                dst.pcpu, HOST_WAKE_IRQ, {"kind": "wake_enter", "vcpu": dst, "done": done}
            )
        self.machine.obs.spans.end(span)

    def deliver_timer_virq(self, vcpu, done=None):
        """Virtual-timer expiry: the physical PPI fires on the VCPU's own
        PCPU (no IPI wire) and is translated into VIRQ_TIMER."""
        kind = "inject_running" if vcpu.state == VcpuState.GUEST else "wake_enter"
        vcpu.pcpu.raise_physical_irq(
            27, {"kind": kind, "vcpu": vcpu, "done": done}
        )

    # --- physical interrupt handling on a PCPU -------------------------------

    def _irq_handler(self, pcpu, irq, payload):
        if not isinstance(payload, dict) or "kind" not in payload:
            raise HardwareFault("KVM got an unroutable physical irq %r" % (irq,))
        kind = payload["kind"]
        vcpu = payload["vcpu"]
        done = payload.get("done")
        costs = self.costs
        if kind == "inject_running":
            # Physical IPI while the target runs VM code: exit, ack the
            # physical interrupt, re-enter with the virq injected.
            if pcpu.current_context is not vcpu:
                raise HardwareFault(
                    "inject_running: %s is not current on pcpu%d" % (vcpu.name, pcpu.index)
                )
            yield from self._exit(vcpu, dispatch=False, reason="phys-irq")
            yield pcpu.op(*self._phys_ack_step())
            virqs = vcpu.take_pending_virqs()
            virq = virqs[0] if virqs else VIRQ_IPI
            yield from self._enter(vcpu, inject_virq=self._inject_arg(virq))
            handled = yield from self._guest_handles_virq(vcpu, virq)
            if done is not None:
                done.fire(self.engine.now)
            # The guest handler completes the interrupt after the measured
            # delivery point.
            yield from self.complete_virq(vcpu, virq)
            return handled
        if kind == "wake_enter":
            # Scheduler IPI: the idle PCPU switches to the VCPU thread.
            yield pcpu.op("host_thread_switch", costs.host_thread_switch, "sched")
            if self.vhe:
                yield from ws.vhe_deferred_restore(self.machine, vcpu)
            virqs = vcpu.take_pending_virqs()
            virq = virqs[0] if virqs else VIRQ_VIRTIO_NET
            yield from self._enter(vcpu, inject_virq=self._inject_arg(virq))
            handled = yield from self._guest_handles_virq(vcpu, virq)
            if done is not None:
                done.fire(self.engine.now)
            yield from self.complete_virq(vcpu, virq)
            return handled
        raise HardwareFault("unknown KVM irq payload kind %r" % (kind,))

    def _phys_ack_step(self):
        if self.machine.is_arm:
            return ("gic_phys_ack", self.costs.gic_phys_ack, "irq")
        return ("apic_phys_ack", self.costs.apic_phys_ack, "irq")

    def _inject_arg(self, virq):
        return virq

    def _guest_handles_virq(self, vcpu, virq):
        result = yield from super()._guest_handles_virq(vcpu, virq)
        if not self.machine.is_arm:
            # Model delivery through the LAPIC so EOI bookkeeping works.
            lapic = self.machine.apic.lapic(vcpu.pcpu.index)
            lapic.request(virq)
            lapic.deliver_highest()
        return result

    # --- host-side data path (used by netperf / application models) ------------

    def host_transmit(self, vm, packet):
        """vhost hands a guest packet to the host stack + physical NIC.

        Zero copy: the host addresses the guest buffer directly.
        """
        worker = self.vhost_workers[vm.name]
        self.engine.spawn(self._host_tx(worker, packet), name="host-tx")

    def _host_tx(self, worker, packet):
        if self.netstack is not None:
            yield worker.pcpu.op("host_bridge_tx", self.netstack.bridge_tx_cycles(), "net")
            yield worker.pcpu.op("host_tx_stack", self.netstack.host_tx_cycles(), "net")
        packet.stamp("host.tx", self.engine.now)
        if self.host_nic is not None:
            self.host_nic.transmit(packet)

    def _on_physical_receive(self, packet):
        """Physical NIC rx: host IRQ + stack, then vhost injects into VM."""
        self.engine.spawn(self._host_rx(packet), name="host-rx")

    def _host_rx(self, packet):
        if not self.vms:
            raise ConfigurationError("received a packet with no VM attached")
        vm = self.vms[0]
        worker = self.vhost_workers[vm.name]
        packet.stamp("host.rx_driver", self.engine.now)
        if self.netstack is not None:
            yield worker.pcpu.op("host_irq_rx_stack", self.netstack.host_rx_cycles(), "net")
            yield worker.pcpu.op("host_bridge_rx", self.netstack.bridge_cycles(), "net")
        packet.stamp("host.rx_done", self.engine.now)
        yield from worker.deliver_rx(packet)
