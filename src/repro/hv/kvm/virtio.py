"""Virtio ring model (the KVM paravirtual I/O transport).

The property the paper leans on: the rings live in *guest memory* that the
host kernel can address directly, so the backend moves payloads with zero
copies — for receive, the device can land data straight into guest-visible
buffers.  Contrast with Xen's grant-mediated copies in
:mod:`repro.hv.xen.netback`.
"""

from collections import deque

from repro.errors import ProtocolError

DEFAULT_QUEUE_SIZE = 256


class VirtioQueue:
    """One virtqueue: guest posts buffers, backend consumes/fills them."""

    def __init__(self, name, size=DEFAULT_QUEUE_SIZE):
        self.name = name
        self.size = size
        self._avail = deque()
        self._used = deque()
        self.kicks = 0
        self.notifies = 0

    def guest_post(self, buffer):
        """Guest driver: add a buffer (descriptor chain) to the avail ring."""
        if len(self._avail) >= self.size:
            raise ProtocolError("virtqueue %s avail ring full" % self.name)
        self._avail.append(buffer)

    def guest_kick(self):
        """Guest driver: doorbell write (MMIO -> ioeventfd in the host)."""
        self.kicks += 1

    def backend_pop(self):
        """Backend (vhost): take the next posted buffer."""
        if not self._avail:
            raise ProtocolError("virtqueue %s has no available buffers" % self.name)
        return self._avail.popleft()

    def backend_push_used(self, buffer):
        """Backend: return a completed buffer to the used ring."""
        if len(self._used) >= self.size:
            raise ProtocolError("virtqueue %s used ring full" % self.name)
        self._used.append(buffer)
        self.notifies += 1

    def guest_collect_used(self):
        """Guest driver: reap completed buffers."""
        used, self._used = list(self._used), deque()
        return used

    @property
    def avail_count(self):
        return len(self._avail)

    @property
    def used_count(self):
        return len(self._used)


class VirtioNetDevice:
    """A virtio-net device: rx + tx queues bound to one VM."""

    def __init__(self, vm, queue_size=DEFAULT_QUEUE_SIZE):
        self.vm = vm
        self.rx = VirtioQueue("%s.virtio-net.rx" % vm.name, queue_size)
        self.tx = VirtioQueue("%s.virtio-net.tx" % vm.name, queue_size)
        self.refill_rx()

    def refill_rx(self):
        """Guest driver keeps the rx ring stocked with empty buffers."""
        while self.rx.avail_count < self.rx.size:
            self.rx.guest_post({"empty": True})
