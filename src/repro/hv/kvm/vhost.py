"""VHOST: the in-kernel virtio-net backend worker.

The paper's KVM configuration uses VHOST so data handling happens in the
host kernel (no userspace round trip).  The worker is a simulation process
pinned to a host-side PCPU; it consumes kick signals and packets through
channels.

Measurement note (I/O Latency Out): an eventfd signal runs the backend's
poll callback *synchronously in the signaling context*, which is why the
paper's KVM x86 I/O Latency Out (560 cycles) is barely more than a bare
vmexit — the "virtual device received the signal" point is reached on the
exiting CPU itself.  The worker's own wakeup and ring processing happen
afterwards and are charged to the data path, not the signal latency.
"""

from repro.sim import Channel


class VhostWorker:
    """One vhost-net worker thread bound to a VM's virtio-net device."""

    def __init__(self, hypervisor, vm, device, pcpu):
        self.hypervisor = hypervisor
        self.vm = vm
        self.device = device
        self.pcpu = pcpu
        engine = hypervisor.engine
        #: tx kicks from the guest: payload is an optional packet to send
        self.kick_channel = Channel(engine, "%s.vhost.kicks" % vm.name)
        self.processed_tx = 0
        self.processed_rx = 0
        self._kick_counter = hypervisor.machine.obs.metrics.counter("kvm.vhost_kicks")
        self._proc = engine.spawn(self._run(), name="%s.vhost" % vm.name)

    def signal_kick(self, packet=None):
        """Called from the VM-exit fast path (ioeventfd write)."""
        self._kick_counter.inc()
        self.kick_channel.put(packet)

    def _run(self):
        costs = self.hypervisor.costs
        while True:
            packet = yield from self.kick_channel.get()
            # Worker wakes on its own CPU (scheduler IPI) and dequeues.
            yield self.pcpu.op("vhost_wakeup", self.hypervisor.machine.costs.ipi_wire, "io")
            yield self.pcpu.op("vhost_dequeue", costs.vhost_dequeue, "io")
            if self.device.tx.avail_count:
                self.device.tx.backend_pop()
            self.processed_tx += 1
            if packet is not None:
                self.hypervisor.host_transmit(self.vm, packet)

    def deliver_rx(self, packet, delivered_event=None):
        """Host stack hands a received packet to vhost for injection.

        Zero copy: the buffer the payload lands in is guest-visible
        (virtio ring over guest memory), so there is no payload copy here.
        Returns a generator to run on the worker's PCPU.
        """
        costs = self.hypervisor.costs
        yield self.pcpu.op("vhost_dequeue", costs.vhost_dequeue, "io")
        buffer = self.device.rx.backend_pop()
        buffer["packet"] = packet
        self.device.rx.backend_push_used(buffer)
        self.device.refill_rx()
        self.processed_rx += 1
        done = self.hypervisor.notify_guest(self.vm, packet=packet)
        if delivered_event is not None:
            done.on_fire(lambda value: delivered_event.fire(value))
