"""KVM world-switch paths: the state movements of paper Tables II/III.

Three variants:

* ARM split-mode (ARMv8): double trap + full register-class switch.
* ARM VHE (ARMv8.1): host lives in EL2; only GP registers move.
* x86: hardware vmexit/vmentry against the VMCS.

Each generator executes costed steps through ``pcpu.op`` (so an enabled
tracer reconstructs the Table III breakdown) *and* really moves the
architectural state, so tests can verify isolation and round-tripping.
"""

from repro.hv.base import ALL_ARM_CLASSES, VcpuState
from repro.hw.cpu.arm import ExceptionLevel
from repro.hw.cpu.registers import RegClass, fresh_context_image

#: Save/restore order mirrors KVM's __kvm_vcpu_run: GP first (on trap),
#: then FP, EL1 system registers, VGIC, timer, and the EL2 shadow state.
ARM_SWITCH_ORDER = ALL_ARM_CLASSES


def _label(prefix, reg_class):
    return "%s_%s" % (prefix, reg_class.name.lower())


def ensure_host_context(pcpu):
    """The host's saved EL1 image for split-mode switching."""
    if not hasattr(pcpu, "host_context"):
        pcpu.host_context = fresh_context_image()
    return pcpu.host_context


# repro-lint: ignore[SYM001] -- exit half of the split-mode switch: the
# matching restores live in split_mode_enter (Table III pairs the save
# and restore columns across the two transitions).
def split_mode_exit(machine, vcpu, dispatch=True, reason="trap"):
    """VM (EL1) -> EL2 lowvisor -> host (EL1).  The expensive direction:
    saving the VM's state includes reading back the whole VGIC interface,
    which Table III shows dominates (3,250 of 4,202 save cycles)."""
    pcpu, costs = vcpu.pcpu, machine.costs
    arch = pcpu.arch
    span = machine.obs.spans.begin("split_mode_exit", "world-switch", pcpu.index)
    arch.trap_to_el2(reason)
    yield pcpu.op("trap_to_el2", costs.trap_to_el2, "trap")
    for reg_class in ARM_SWITCH_ORDER:
        yield pcpu.op(_label("save", reg_class), costs.save[reg_class], "save")
    vcpu.saved_context = arch.save_context(ARM_SWITCH_ORDER)
    arch.disable_virt_features()
    yield pcpu.op("disable_virt_features", costs.virt_feature_toggle, "config")
    arch.load_context(ensure_host_context(pcpu))
    arch.eret(ExceptionLevel.EL1)
    yield pcpu.op("eret_to_host", costs.eret_to_el1, "trap")
    if dispatch:
        yield pcpu.op("kvm_exit_dispatch", costs.kvm_exit_dispatch, "host")
    vcpu.state = VcpuState.HOST
    pcpu.current_context = "host"
    machine.obs.spans.end(span)


# repro-lint: ignore[SYM001] -- enter half: restores the classes
# split_mode_exit saved (Table III restore column).
def split_mode_enter(machine, vcpu, inject_virq=None):
    """Host (EL1) -> EL2 lowvisor -> VM (EL1)."""
    pcpu, costs = vcpu.pcpu, machine.costs
    arch = pcpu.arch
    span = machine.obs.spans.begin("split_mode_enter", "world-switch", pcpu.index)
    arch.trap_to_el2("hvc-from-host")
    yield pcpu.op("hvc_to_el2", costs.trap_to_el2, "trap")
    arch.enable_virt_features(vcpu.vm.vmid)
    yield pcpu.op("enable_virt_features", costs.virt_feature_toggle, "config")
    if inject_virq is not None:
        vcpu.vif.inject(inject_virq)
        yield pcpu.op("virq_inject_lr", costs.virq_inject_lr, "vgic")
    pcpu.host_context = arch.save_context(ARM_SWITCH_ORDER)
    for reg_class in ARM_SWITCH_ORDER:
        yield pcpu.op(_label("restore", reg_class), costs.restore[reg_class], "restore")
    arch.load_context(vcpu.saved_context)
    arch.eret(ExceptionLevel.EL1)
    yield pcpu.op("eret_to_guest", costs.eret_to_el1, "trap")
    vcpu.state = VcpuState.GUEST
    pcpu.current_context = vcpu
    machine.obs.spans.end(span)


# repro-lint: ignore[SYM001] -- VHE trap half: under VHE the host runs in
# EL2, so EL1 state is the guest's alone and only the GP bank is pushed;
# vhe_enter pops it (paper Section VI).  The EL1 sysreg/VGIC/timer
# restore is deliberately absent, not forgotten.
def vhe_exit(machine, vcpu, dispatch=True, reason="trap"):
    """ARMv8.1 VHE: the trap lands in the host *in EL2*.  EL1 state is the
    guest's alone — nothing to switch beyond the GP bank, and no
    virtualization-feature toggling (Stage-2 only applies to EL1/EL0)."""
    pcpu, costs = vcpu.pcpu, machine.costs
    arch = pcpu.arch
    span = machine.obs.spans.begin("vhe_exit", "world-switch", pcpu.index)
    arch.trap_to_el2(reason)
    yield pcpu.op("trap_to_el2", costs.trap_to_el2, "trap")
    yield pcpu.op("save_gp_light", costs.gp_save_light, "save")
    vcpu.saved_context.update(arch.save_context([RegClass.GP]))
    if dispatch:
        yield pcpu.op("kvm_vhe_dispatch", costs.kvm_vhe_dispatch, "host")
    vcpu.state = VcpuState.HOST
    pcpu.current_context = "host"
    machine.obs.spans.end(span)


# repro-lint: ignore[SYM001] -- VHE return half: pops the GP bank
# vhe_exit pushed (Section VI).
def vhe_enter(machine, vcpu, inject_virq=None):
    """VHE host (EL2) -> VM (EL1): restore GP bank and eret."""
    pcpu, costs = vcpu.pcpu, machine.costs
    arch = pcpu.arch
    span = machine.obs.spans.begin("vhe_enter", "world-switch", pcpu.index)
    if inject_virq is not None:
        vcpu.vif.inject(inject_virq)
        yield pcpu.op("virq_inject_lr", costs.virq_inject_lr, "vgic")
    yield pcpu.op("restore_gp_light", costs.gp_restore_light, "restore")
    arch.load_context({RegClass.GP: vcpu.saved_context[RegClass.GP]})
    arch.eret(ExceptionLevel.EL1)
    yield pcpu.op("eret_to_guest", costs.eret_to_el1, "trap")
    vcpu.state = VcpuState.GUEST
    pcpu.current_context = vcpu
    machine.obs.spans.end(span)


#: The classes a VHE host must still move when it *deschedules* a VCPU
#: (lazy switch): everything except the GP bank the trap already saved.
VHE_DEFERRED_CLASSES = [c for c in ARM_SWITCH_ORDER if c is not RegClass.GP]


# repro-lint: ignore[SYM001] -- lazy-switch save half: the restore is
# vhe_deferred_restore, run when the VCPU is scheduled back in.  Keeping
# the halves separate is the point of VHE's deferred switching.
def vhe_deferred_save(machine, vcpu):
    """VHE lazy state save when switching away from a VCPU entirely.

    Trap-and-return transitions under VHE never touch this state (that is
    the whole point), but a VM switch still must — which is why the paper
    expects VHE to help hypercalls and I/O far more than VM switches.
    """
    pcpu, costs = vcpu.pcpu, machine.costs
    for reg_class in VHE_DEFERRED_CLASSES:
        yield pcpu.op(_label("save", reg_class), costs.save[reg_class], "save")
    vcpu.saved_context = pcpu.arch.save_context(ARM_SWITCH_ORDER)


# repro-lint: ignore[SYM001] -- lazy-switch restore half of
# vhe_deferred_save.
def vhe_deferred_restore(machine, vcpu):
    """VHE lazy state restore when scheduling a VCPU back in."""
    pcpu, costs = vcpu.pcpu, machine.costs
    for reg_class in VHE_DEFERRED_CLASSES:
        yield pcpu.op(_label("restore", reg_class), costs.restore[reg_class], "restore")
    pcpu.arch.load_context(vcpu.saved_context)
    pcpu.arch.enable_virt_features(vcpu.vm.vmid)


def x86_exit(machine, vcpu, dispatch=True, reason="vmexit"):
    """Non-root -> root: the hardware moves the state to the VMCS."""
    pcpu, costs = vcpu.pcpu, machine.costs
    span = machine.obs.spans.begin("x86_exit", "world-switch", pcpu.index)
    pcpu.arch.vmexit(reason)
    yield pcpu.op("vmexit_hw", costs.vmexit_hw, "hw-switch")
    if dispatch:
        yield pcpu.op("kvm_exit_dispatch", costs.kvm_exit_dispatch, "host")
    vcpu.state = VcpuState.HOST
    pcpu.current_context = "host"
    machine.obs.spans.end(span)


def x86_enter(machine, vcpu, inject_vector=None):
    """Root -> non-root, optionally with event injection."""
    pcpu, costs = vcpu.pcpu, machine.costs
    span = machine.obs.spans.begin("x86_enter", "world-switch", pcpu.index)
    if pcpu.arch.loaded_vmcs is not vcpu.vmcs:
        pcpu.arch.load_vmcs(vcpu.vmcs)
        yield pcpu.op("vmcs_switch", costs.vmcs_switch, "hw-switch")
    if inject_vector is not None:
        pcpu.arch.inject_on_next_entry(inject_vector)
        yield pcpu.op("virq_inject", costs.virq_inject, "inject")
    yield pcpu.op("vmentry_hw", costs.vmentry_hw, "hw-switch")
    pcpu.arch.vmentry()
    vcpu.state = VcpuState.GUEST
    pcpu.current_context = vcpu
    machine.obs.spans.end(span)
