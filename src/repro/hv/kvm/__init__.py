"""KVM: the Type 2 (hosted) hypervisor model.

On ARM (pre-VHE) KVM uses *split-mode virtualization*: a minimal lowvisor
in EL2 plus the bulk of the hypervisor integrated with the Linux host in
EL1.  Every VM-to-hypervisor transition therefore pays a double trap and
a full context switch of the EL1/VGIC/timer state (paper Table III).

With ARMv8.1 VHE, the host kernel runs *in* EL2 (E2H set) and transitions
stop context switching EL1 state.  On x86, KVM runs in root mode and
transitions are the hardware VMCS switch.
"""

from repro.hv.kvm.kvm import KvmHypervisor

__all__ = ["KvmHypervisor"]
