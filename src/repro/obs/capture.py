"""Trace capture: run an instrumented operation with observability on.

This is the machinery behind ``python -m repro trace``: build a fresh
testbed, enable ``machine.obs``, execute one Table I operation (or the
Table III breakdown run), and hand back the populated recorder plus —
for ``table3`` — the breakdown object, so exporters can prove the span
totals reconcile with the published table's rows.

Imports run downward only (obs.capture -> core -> hv/hw -> obs), and
this module is *not* pulled in by ``repro.obs`` itself, so the base
observability layer stays import-light.
"""

import dataclasses

from repro.core.breakdown import hypercall_breakdown
from repro.core.microbench import MicrobenchmarkSuite
from repro.core.testbed import build_testbed
from repro.errors import ConfigurationError
from repro.hw.cpu.registers import RegClass

#: CLI trace target -> MicrobenchmarkSuite method name.
MICROBENCH_TARGETS = {
    "hypercall": "hypercall",
    "intc-trap": "interrupt_controller_trap",
    "virtual-ipi": "virtual_ipi",
    "virq-complete": "virtual_irq_completion",
    "vm-switch": "vm_switch",
    "io-out": "io_latency_out",
    "io-in": "io_latency_in",
}

#: Everything ``python -m repro trace`` accepts.
ALL_TARGETS = ["table3"] + sorted(MICROBENCH_TARGETS)


@dataclasses.dataclass
class Capture:
    """One traced run: the machine's populated observability bundle."""

    key: str
    target: str
    cycles: int
    obs: object
    machine: object
    breakdown: object = None

    def reconciliation(self):
        """Span-layer save/restore totals next to the Table III rows.

        Only meaningful for ``table3`` captures; proves the exported
        spans carry exactly the cycles the breakdown attributes.
        """
        if self.breakdown is None:
            return None
        leaf = self.obs.spans.leaf_totals()
        rows = []
        for reg_class in RegClass:
            suffix = reg_class.name.lower()
            row = self.breakdown.row(reg_class.value)
            rows.append(
                {
                    "register_state": reg_class.value,
                    "save_cycles": row.save_cycles,
                    "save_span_cycles": leaf.get("save_%s" % suffix, 0),
                    "restore_cycles": row.restore_cycles,
                    "restore_span_cycles": leaf.get("restore_%s" % suffix, 0),
                }
            )
        return {
            "rows": rows,
            "total_cycles": self.breakdown.total_cycles,
            "root_span_cycles": sum(root.duration for root in self.obs.spans.roots),
            "other_cycles": self.breakdown.other_cycles,
        }


def capture_table3(trace_resume=False):
    """Run the Table III breakdown (KVM ARM hypercall) with spans on."""
    testbed = build_testbed("kvm-arm")
    machine = testbed.machine
    machine.obs.enable(trace_resume=trace_resume)
    breakdown = hypercall_breakdown(testbed)
    machine.obs.disable()
    return Capture(
        key="kvm-arm",
        target="table3",
        cycles=breakdown.total_cycles,
        obs=machine.obs,
        machine=machine,
        breakdown=breakdown,
    )


def capture_microbench(target, key="kvm-arm", trace_resume=False):
    """Run one Table I microbenchmark traced on platform ``key``."""
    if target not in MICROBENCH_TARGETS:
        raise ConfigurationError(
            "unknown trace target %r (choose from %s)" % (target, ", ".join(ALL_TARGETS))
        )
    testbed = build_testbed(key)
    machine = testbed.machine
    machine.obs.enable(trace_resume=trace_resume)
    suite = MicrobenchmarkSuite(testbed, iterations=1)
    result = getattr(suite, MICROBENCH_TARGETS[target])()
    machine.obs.disable()
    return Capture(
        key=key,
        target=target,
        cycles=result.cycles,
        obs=machine.obs,
        machine=machine,
    )


def capture(target, key="kvm-arm", trace_resume=False):
    """Dispatch on ``target`` (``table3`` or a microbenchmark name)."""
    if target == "table3":
        return capture_table3(trace_resume=trace_resume)
    return capture_microbench(target, key=key, trace_resume=trace_resume)
