"""Nested spans: wall-positioned cycle attribution over the DES.

A :class:`Span` covers a half-open cycle interval ``[start, end)`` of
engine time and may contain child spans.  Unlike the flat step list of
:class:`repro.sim.trace.StepTrace`, spans record *where* on the timeline
work happened (start/end are read from the engine's ``now``), so a
Chrome-trace/Perfetto export shows real wall positions, not just
durations.

Nesting is tracked per ``pcpu`` tag: each physical CPU is one "thread"
of the trace (one stack of open spans), which matches how the simulator
interleaves work — a PCPU executes exactly one context at a time, while
different PCPUs overlap freely.  Spans without a pcpu tag (engine-level
instrumentation) live on their own track.

The recorder is disabled by default and every entry point returns
immediately when disabled, so instrumented paths cost one attribute
check when observability is off.
"""

from collections import OrderedDict
from contextlib import contextmanager

from repro.errors import SimulationError


class Span:
    """One named interval of simulated time, possibly with children."""

    __slots__ = ("name", "category", "pcpu", "start", "end", "parent", "children")

    def __init__(self, name, category="", pcpu=None, start=0):
        self.name = name
        self.category = category
        self.pcpu = pcpu
        self.start = start
        self.end = None
        self.parent = None
        self.children = []

    @property
    def closed(self):
        return self.end is not None

    @property
    def duration(self):
        """Total cycles covered (0 while the span is still open)."""
        if self.end is None:
            return 0
        return self.end - self.start

    @property
    def self_cycles(self):
        """Cycles not covered by any child span.

        Only meaningful once the span and all its children are closed: an
        open child has no end yet, so counting it as 0 cycles would
        silently over-attribute its time to this span (and could report
        ``self_cycles`` exceeding ``duration``).  Raises on open spans;
        use :meth:`self_cycles_at` for mid-flight inspection.
        """
        if self.end is None:
            raise SimulationError(
                "self_cycles on open span %r; close it first or use "
                "self_cycles_at(now)" % (self.name,)
            )
        for child in self.children:
            if child.end is None:
                raise SimulationError(
                    "self_cycles on span %r with open child %r; close it "
                    "first or use self_cycles_at(now)" % (self.name, child.name)
                )
        return self.duration - sum(child.duration for child in self.children)

    def duration_at(self, now):
        """Cycles covered so far, clamping an open end at ``now``."""
        end = self.end if self.end is not None else now
        return max(0, end - self.start)

    def self_cycles_at(self, now):
        """Mid-flight ``self_cycles``: open spans are clamped at ``now``."""
        return self.duration_at(now) - sum(
            child.duration_at(now) for child in self.children
        )

    @property
    def is_leaf(self):
        return not self.children

    def walk(self):
        """Yield this span and all descendants, depth-first, in order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self):
        tail = "open" if self.end is None else "%d cycles" % self.duration
        return "Span(%r, %r, pcpu=%r, %s)" % (self.name, self.category, self.pcpu, tail)


class SpanRecorder:
    """Collects nested spans at engine time; one open-span stack per pcpu.

    ``begin``/``end`` bracket composite work (a world switch, a whole
    hypercall); ``step`` records a leaf of known cost starting now (the
    shape of ``pcpu.op``); ``instant`` records a zero-width marker.
    """

    def __init__(self, now_fn, enabled=False):
        self._now = now_fn
        self.enabled = enabled
        self.roots = []
        self._stacks = {}
        #: optional hook called with every closed span (metrics feeding)
        self.on_close = None

    def begin(self, name, category="", pcpu=None):
        """Open a span at the current engine time; returns it (or None
        when disabled — ``end(None)`` is a no-op, so instrumented paths
        never need their own enabled checks)."""
        if not self.enabled:
            return None
        span = Span(name, category, pcpu, start=self._now())
        self._attach(span, pcpu)
        self._stacks.setdefault(pcpu, []).append(span)
        return span

    def end(self, span):
        """Close ``span`` at the current engine time.

        Spans must close innermost-first on their pcpu track; anything
        else means the instrumentation is mis-bracketed.
        """
        if span is None:
            return None
        stack = self._stacks.get(span.pcpu)
        if not stack or stack[-1] is not span:
            raise SimulationError(
                "mis-nested span end: %r is not the innermost open span "
                "on pcpu %r" % (span.name, span.pcpu)
            )
        stack.pop()
        span.end = self._now()
        if self.on_close is not None:
            self.on_close(span)
        return span

    def step(self, label, cycles, category="", pcpu=None):
        """Record a leaf span of ``cycles`` starting at the current time.

        This is the span-layer twin of ``Tracer.record``: ``pcpu.op``
        calls it just before yielding the step's Timeout, so the interval
        ``[now, now + cycles)`` is exactly when the step executes.
        """
        if not self.enabled:
            return None
        now = self._now()
        span = Span(label, category, pcpu, start=now)
        span.end = now + cycles
        self._attach(span, pcpu)
        if self.on_close is not None:
            self.on_close(span)
        return span

    def instant(self, name, category="", pcpu=None):
        """Record a zero-width marker (e.g. a process resume)."""
        return self.step(name, 0, category, pcpu)

    @contextmanager
    def span(self, name, category="", pcpu=None):
        """Context manager sugar over ``begin``/``end`` (for plain,
        non-generator code paths)."""
        span = self.begin(name, category, pcpu)
        try:
            yield span
        finally:
            self.end(span)

    def _attach(self, span, pcpu):
        stack = self._stacks.get(pcpu)
        if stack:
            span.parent = stack[-1]
            stack[-1].children.append(span)
        else:
            self.roots.append(span)

    @property
    def open_spans(self):
        """All currently open spans across every pcpu track."""
        return [span for stack in self._stacks.values() for span in stack]

    def iter_spans(self):
        """All recorded spans, depth-first from each root, in order."""
        for root in self.roots:
            yield from root.walk()

    def leaf_totals(self, category=None):
        """Ordered {label: total cycles} over leaf spans (optionally
        filtered by category) — the span-layer view of Table III."""
        totals = OrderedDict()
        for span in self.iter_spans():
            if not span.is_leaf:
                continue
            if category is not None and span.category != category:
                continue
            totals[span.name] = totals.get(span.name, 0) + span.duration
        return totals

    def clear(self):
        """Drop all recorded spans (open spans included)."""
        self.roots = []
        self._stacks = {}
