"""Exporters: Chrome trace-event (Perfetto-loadable) JSON and text trees.

The JSON document follows the Chrome trace-event format's "JSON object"
flavor: ``{"traceEvents": [...], ...}``.  Spans become complete ("X")
events, metrics become counter ("C") events, and thread-name metadata
("M") maps each pcpu track to a readable lane.  ``ts``/``dur`` are in
simulated *cycles* (the trace's native unit — Perfetto renders them as
microseconds, which only relabels the axis).

Every emitted event carries the keys ``ph``, ``ts``, ``dur``, ``pid``
and ``tid`` — the contract the CI schema smoke (tools/validate_trace.py)
enforces on generated artifacts.
"""

import json

#: pid used for the single simulated machine in a trace document.
MACHINE_PID = 0
#: tid of the engine-level track (spans with no pcpu tag).
ENGINE_TID = 0


def _tid(pcpu):
    """Map a span's pcpu tag to a stable trace thread id."""
    return ENGINE_TID if pcpu is None else pcpu + 1


def _thread_name(pcpu):
    return "engine" if pcpu is None else "pcpu%d" % pcpu


def chrome_trace_events(recorder, metrics=None, machine_name="machine"):
    """Flatten a SpanRecorder (+ optional MetricsRegistry) into a list of
    Chrome trace-event dicts."""
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "dur": 0,
            "pid": MACHINE_PID,
            "tid": ENGINE_TID,
            "args": {"name": machine_name},
        }
    ]
    tracks = set()
    spans = list(recorder.iter_spans())
    for span in spans:
        tracks.add(span.pcpu)
    for pcpu in sorted(tracks, key=_tid):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "dur": 0,
                "pid": MACHINE_PID,
                "tid": _tid(pcpu),
                "args": {"name": _thread_name(pcpu)},
            }
        )
    last_ts = 0
    for span in spans:
        end = span.end if span.end is not None else span.start
        last_ts = max(last_ts, end)
        events.append(
            {
                "name": span.name,
                "cat": span.category or "uncategorized",
                "ph": "X",
                "ts": span.start,
                "dur": end - span.start,
                "pid": MACHINE_PID,
                "tid": _tid(span.pcpu),
                "args": {"self_cycles": span.self_cycles},
            }
        )
    if metrics is not None:
        for name, snap in metrics.snapshot().items():
            if snap["kind"] not in ("counter", "gauge"):
                continue
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": last_ts,
                    "dur": 0,
                    "pid": MACHINE_PID,
                    "tid": ENGINE_TID,
                    "args": {"value": snap["value"]},
                }
            )
    return events


def chrome_trace_document(recorder, metrics=None, machine_name="machine", extra=None):
    """The full JSON-object-format trace document (a plain dict)."""
    document = {
        "traceEvents": chrome_trace_events(recorder, metrics, machine_name),
        "displayTimeUnit": "ns",
        "otherData": {"time_unit": "cycles", "machine": machine_name},
    }
    if metrics is not None:
        document["otherData"]["metrics"] = metrics.snapshot()
    if extra:
        document["otherData"].update(extra)
    return document


def write_chrome_trace(path, recorder, metrics=None, machine_name="machine", extra=None):
    """Serialize the trace document to ``path``; returns the document."""
    document = chrome_trace_document(recorder, metrics, machine_name, extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return document


def render_span_tree(recorder, show_pcpu=True):
    """Render recorded spans as an indented text tree (a poor man's
    flame graph), one root per line group:

    .. code-block:: text

        hypercall                                  2417 cycles  [pcpu4]
        ├─ split_mode_exit                         1583 cycles  [pcpu4]
        │  ├─ trap_to_el2                            27 cycles
        ...
    """
    lines = []
    for root in recorder.roots:
        _render_span(root, "", "", lines, show_pcpu)
    return "\n".join(lines)


def _render_span(span, lead, child_lead, lines, show_pcpu):
    label = lead + span.name
    tail = "%d cycles" % span.duration
    if show_pcpu and span.pcpu is not None:
        tail += "  [pcpu%d]" % span.pcpu
    lines.append("%s %s" % (label.ljust(48), tail))
    for index, child in enumerate(span.children):
        last = index == len(span.children) - 1
        branch = "└─ " if last else "├─ "
        extend = "   " if last else "│  "
        _render_span(child, child_lead + branch, child_lead + extend, lines, show_pcpu)


def render_metrics(metrics):
    """Render a metrics snapshot as aligned text lines."""
    lines = []
    for name, snap in metrics.snapshot().items():
        if snap["kind"] == "histogram":
            value = "n=%d total=%d mean=%.1f" % (snap["count"], snap["total"], snap["mean"])
        else:
            value = str(snap["value"])
        lines.append("%s %s" % (name.ljust(32), value))
    return "\n".join(lines)
