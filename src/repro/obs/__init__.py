"""Structured observability over the simulation: spans, metrics, exports.

One :class:`Observability` instance belongs to each simulated machine
(``machine.obs``) and bundles:

* a :class:`~repro.obs.spans.SpanRecorder` — nested, wall-positioned
  cycle attribution recorded at engine ``now`` (Table III, but with
  parents, children, and real timeline positions);
* a :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  cycle histograms components register into (traps, world switches,
  IPIs, grant ops, vhost kicks...);
* exporters (:mod:`repro.obs.export`) — Chrome trace-event / Perfetto
  JSON and text renderers.

Hard invariant: with observability *disabled* (the default) nothing in
this package runs on simulation paths beyond a single flag check, and
nothing here ever adds simulated cycles or schedules events — table
outputs are byte-identical whether or not anyone is watching (enforced
by tests/test_obs_invariance.py).
"""

from repro.obs.metrics import (
    Counter,
    CounterBank,
    CycleHistogram,
    Gauge,
    MetricsRegistry,
)
from repro.obs.spans import Span, SpanRecorder


class Observability:
    """Per-machine bundle of span recorder + metrics registry."""

    def __init__(self, engine):
        self.engine = engine
        self.spans = SpanRecorder(lambda: engine.now, enabled=False)
        self.metrics = MetricsRegistry()

    @property
    def enabled(self):
        return self.spans.enabled

    def enable(self, trace_resume=False, span_histograms=True):
        """Turn span recording on.

        ``trace_resume`` additionally marks every process resume on the
        engine track (opt-in: it is high-volume).  ``span_histograms``
        feeds each closed span's duration into a per-category cycle
        histogram (``span_cycles.<category>``).
        """
        self.spans.enabled = True
        if span_histograms:
            self.spans.on_close = self._observe_span
        if trace_resume:
            self.engine.observer = self

    def disable(self):
        self.spans.enabled = False
        self.spans.on_close = None
        if self.engine.observer is self:
            self.engine.observer = None

    def process_resumed(self, process):
        """Engine hook (see ``Engine.observer``): mark a process resume."""
        self.spans.instant("resume:%s" % process.name, category="engine")

    def _observe_span(self, span):
        self.metrics.histogram(
            "span_cycles.%s" % (span.category or "uncategorized")
        ).observe(span.duration)


__all__ = [
    "Counter",
    "CounterBank",
    "CycleHistogram",
    "Gauge",
    "MetricsRegistry",
    "Observability",
    "Span",
    "SpanRecorder",
]
