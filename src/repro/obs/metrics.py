"""Metrics registry: counters, gauges, and cycle histograms.

Components register named instruments once and bump them on their hot
paths; a :meth:`MetricsRegistry.snapshot` turns the whole registry into
plain data for exporters.  Instruments are deliberately trivial (no
locking, no label sets) — the simulator is single-threaded and
deterministic, so a metric is just a named number whose final value is
itself reproducible.

Metrics never feed back into the simulation: bumping a counter costs
zero simulated cycles and schedules nothing, which is what keeps table
outputs byte-identical whether or not anyone is watching.
"""

from collections import OrderedDict

from repro.errors import ConfigurationError


class Counter:
    """A monotonically increasing count (traps, IPIs, grant ops...)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def snapshot(self):
        return {"kind": self.kind, "value": self.value}

    def __repr__(self):
        return "Counter(%r, %d)" % (self.name, self.value)


class Gauge:
    """A point-in-time value (queue depth, LRs in use...)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def snapshot(self):
        return {"kind": self.kind, "value": self.value}

    def __repr__(self):
        return "Gauge(%r, %r)" % (self.name, self.value)


class CycleHistogram:
    """A histogram of cycle costs in power-of-two buckets.

    Bucket key ``b`` counts observations ``v`` with
    ``2**(b-1) < v <= 2**b`` (``b == 0`` counts zeros), so the
    distribution of e.g. per-trap cycle costs is readable without
    storing every sample.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    kind = "histogram"

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets = {}

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = max(0, int(value) - 1).bit_length() if value > 0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0

    def snapshot(self):
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                "<=2^%d" % bucket: count
                for bucket, count in sorted(self.buckets.items())
            },
        }

    def __repr__(self):
        return "CycleHistogram(%r, n=%d)" % (self.name, self.count)


class CounterBank:
    """A dict-like facade over a group of prefixed counters.

    Preserves the legacy ``hv.stats["traps"] += 1`` interface while the
    values live in the shared registry (so exporters see them too).
    """

    def __init__(self, registry, prefix, names):
        self._counters = OrderedDict(
            (name, registry.counter("%s.%s" % (prefix, name))) for name in names
        )

    def __getitem__(self, name):
        return self._counters[name].value

    def __setitem__(self, name, value):
        self._counters[name].value = value

    def __contains__(self, name):
        return name in self._counters

    def __iter__(self):
        return iter(self._counters)

    def __len__(self):
        return len(self._counters)

    def keys(self):
        return self._counters.keys()

    def items(self):
        return [(name, counter.value) for name, counter in self._counters.items()]

    def as_dict(self):
        return OrderedDict(self.items())

    def __repr__(self):
        return "CounterBank(%r)" % (self.as_dict(),)


class MetricsRegistry:
    """All instruments of one machine, keyed by name (get-or-create)."""

    def __init__(self):
        self._instruments = OrderedDict()

    def _get_or_create(self, name, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise ConfigurationError(
                "metric %r already registered as %s" % (name, instrument.kind)
            )
        return instrument

    def counter(self, name):
        return self._get_or_create(name, Counter)

    def gauge(self, name):
        return self._get_or_create(name, Gauge)

    def histogram(self, name):
        return self._get_or_create(name, CycleHistogram)

    def bank(self, prefix, names):
        """A :class:`CounterBank` of ``prefix.<name>`` counters."""
        return CounterBank(self, prefix, names)

    def __contains__(self, name):
        return name in self._instruments

    def __iter__(self):
        return iter(self._instruments.values())

    def get(self, name):
        return self._instruments.get(name)

    def snapshot(self):
        """Ordered {name: plain-data snapshot} over all instruments.

        Iterates a shallow copy so a concurrent reader (the service's
        ``/v1/metrics`` handler runs on the asyncio thread while the
        broker worker registers instruments) never sees the dict change
        size mid-iteration.
        """
        return OrderedDict(
            (name, instrument.snapshot())
            for name, instrument in list(self._instruments.items())
        )
