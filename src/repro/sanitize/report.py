"""Render a sanitize report as text or JSON."""

import json


def render_json(report):
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def _race_lines(entry):
    lines = []
    for race in entry["races"]["tie_order"]:
        divergence = race.get("divergence") or {}
        lines.append(
            "      tie-order race: %s (first divergence at fire %s, t=%s)"
            % (race["detail"], divergence.get("fire_index"), divergence.get("time"))
        )
        for side in ("fifo", "inverted"):
            info = divergence.get(side) or {}
            sites = info.get("scheduled_at") or ["<unknown>"]
            lines.append("        %s side scheduled at %s" % (side, " <- ".join(sites)))
    for race in entry["races"]["multi_writer"]:
        lines.append(
            "      multi-writer race: %s.%s at t=%d (%d writers)"
            % (race["owner"], race["attr"], race["time"], len(race["writers"]))
        )
        for writer in race["writers"]:
            sites = writer["site"] or ("<unknown>",)
            lines.append(
                "        seq %s wrote %s from %s"
                % (writer["fire_seq"], writer["value"], " <- ".join(sites))
            )
    return lines


def render_text(report):
    lines = [
        "%s  target=%s  cells=%d"
        % (report["schema"], report["target"], report["summary"]["cells"])
    ]
    for entry in report["cells"]:
        tie = len(entry["races"]["tie_order"])
        writers = len(entry["races"]["multi_writer"])
        status = "clean" if not tie and not writers else (
            "RACE (%d tie-order, %d multi-writer)" % (tie, writers)
        )
        lines.append(
            "  %-40s events=%-7d ties=%-5d %s"
            % (entry["cell"], entry["schedule_events"], entry["tie_groups"], status)
        )
        lines.extend(_race_lines(entry))
    summary = report["summary"]
    lines.append(
        "summary: %d cells, %d tie-order races, %d multi-writer races -- %s"
        % (
            summary["cells"],
            summary["tie_order_races"],
            summary["multi_writer_races"],
            "clean" if summary["clean"] else "RACY",
        )
    )
    return "\n".join(lines) + "\n"
