"""The sanitize runner: dual-schedule execution of report cells.

Every target cell is executed twice under :class:`SimSan` — once with
the production FIFO tie-break and once with the tie-break inverted —
and the two JSON payloads are hashed.  A payload that survives
inversion byte-identical has no observable tie-order dependence; a
mismatch is a race, anchored at the first fire where the two schedules
diverge (with both schedule sites).  Write tracking over shared
hypervisor state runs alongside and flags same-cycle multi-writer
fields independently of whether the payload happened to move.

Cells come from the PR-3 runner's cell graph (:mod:`repro.runner.cells`)
so ``sanitize suite`` covers exactly what ``bench``/``full_report``
simulate, plus a ``selftest`` target whose seeded cells prove the
detector actually fires (one deliberate tie race, one clean control).
"""

import hashlib
import json

from repro.errors import ConfigurationError
from repro.runner import cells
from repro.sanitize import selftest as selftest_mod
from repro.sanitize import writes
from repro.sanitize.simsan import FIFO, INVERTED, SimSan, first_divergence
from repro.sim.engine import Engine

#: report schema identifier (checked by tools/validate_sanitize.py)
SCHEMA = "repro-sanitize/1"

TARGETS = {
    "suite": lambda: cells.full_report_cells(),
    "table2": lambda: cells.table2_cells(),
    "table3": lambda: cells.table3_cells(),
    "table5": lambda: cells.table5_cells(),
    "figure4": lambda: cells.figure4_cells(),
    "ablation": lambda: cells.ablation_cells(),
    "vhe": lambda: cells.vhe_cells(),
    "oversub": lambda: cells.oversubscription_cells(),
    "selftest": selftest_mod.cells,
}


def payload_sha256(payload):
    """Canonical hash of a cell payload (sorted keys, compact separators
    — the same canonical form the PR-3 result cache keys on)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _execute(cell):
    """Run one cell (a CellSpec or a selftest cell) to its payload."""
    if hasattr(cell, "run"):
        return cell.run()
    return cells.run_cell(cell)


def _one_pass(cell, order, track_writes):
    san = SimSan(order)
    Engine.sanitizer = san
    try:
        if track_writes:
            with writes.tracking(san):
                payload = _execute(cell)
        else:
            payload = _execute(cell)
    finally:
        Engine.sanitizer = None
    return san, payload


def sanitize_cell(cell, track_writes=True):
    """Dual-run one cell; returns its report entry (plain data)."""
    fifo_san, fifo_payload = _one_pass(cell, FIFO, track_writes)
    inverted_san, inverted_payload = _one_pass(cell, INVERTED, track_writes)

    fifo_hash = payload_sha256(fifo_payload)
    inverted_hash = payload_sha256(inverted_payload)
    tie_races = []
    if fifo_hash != inverted_hash:
        divergence = first_divergence(fifo_san, inverted_san)
        tie_races.append(
            {
                "kind": "tie-order",
                "detail": "payload depends on equal-time tie-break order",
                "divergence": divergence,
            }
        )
    multi_writer = fifo_san.multi_writer_races() if track_writes else []

    return {
        "cell": cell.id,
        "payload_sha256": fifo_hash,
        "inverted_sha256": inverted_hash,
        "schedule_events": len(fifo_san.trace),
        "tie_groups": fifo_san.tie_groups(),
        "metrics": fifo_san.metrics_snapshot(),
        "races": {"tie_order": tie_races, "multi_writer": multi_writer},
    }


def sanitize_target(target, track_writes=True, max_cells=None):
    """Sanitize every cell of ``target``; returns the full report dict."""
    builder = TARGETS.get(target)
    if builder is None:
        raise ConfigurationError(
            "unknown sanitize target %r (choose from: %s)"
            % (target, ", ".join(sorted(TARGETS)))
        )
    specs = builder()
    if max_cells is not None:
        specs = specs[:max_cells]
    entries = [sanitize_cell(cell, track_writes) for cell in specs]
    tie_total = sum(len(entry["races"]["tie_order"]) for entry in entries)
    writer_total = sum(len(entry["races"]["multi_writer"]) for entry in entries)
    return {
        "schema": SCHEMA,
        "target": target,
        "cells": entries,
        "summary": {
            "cells": len(entries),
            "tie_order_races": tie_total,
            "multi_writer_races": writer_total,
            "clean": tie_total == 0 and writer_total == 0,
        },
    }
