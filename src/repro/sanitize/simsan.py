"""SimSan: the simulation-time sanitizer core.

The determinism contract of the whole suite rests on one line in
:class:`repro.sim.engine.Engine`: events at equal simulated time fire in
scheduling order (FIFO by sequence number).  That makes results
*reproducible*, but it can also *mask* model bugs — two callbacks that
race at the same cycle always resolve the same way, so an
order-dependent payload looks stable right up until an innocent
refactor reorders two ``schedule`` calls and every golden hash moves.

SimSan makes such latent races observable:

* **Schedule provenance** — every scheduled event is tagged with the
  ``(engine, seq)`` it was pushed under and the source site that pushed
  it (a bounded ``sys._getframe`` walk, cheap enough to run over the
  full suite).
* **Tie-break inversion** — installed with ``order="inverted"`` the
  sanitizer supplies ``-seq`` as the heap's equal-time ordering key, so
  ties fire LIFO instead of FIFO while everything else is untouched.
  A cell whose payload hash changes under inversion has a tie-order
  race; the diff pinpoints the first fire where the schedules diverge,
  reported with *both* schedule sites.
* **Multi-writer tracking** — :mod:`repro.sanitize.writes` routes
  writes to shared hypervisor state (``Vcpu.state``,
  ``Pcpu.current_context``, VIRQ queues) through :meth:`record_write`.
  Two writes to the same field of the same object at the same simulated
  time from *different* fire contexts, with different values, mean the
  final value depends on tie order — flagged with both writer sites.

Instrumentation counts are kept in a real
:class:`repro.obs.metrics.MetricsRegistry` so sanitizer output rides
the same snapshot/export shapes as the rest of the observability layer.
"""

import sys

from repro.obs.metrics import MetricsRegistry

#: tie-break orders a SimSan instance can impose
FIFO, INVERTED = "fifo", "inverted"

#: source files whose frames are skipped when attributing a schedule or
#: write site (the mechanism, not the cause)
_MECHANISM_FILES = ("engine.py", "simsan.py", "writes.py", "process.py")


def call_site(depth=3):
    """The nearest model frames below the sanitizer/engine machinery.

    Returns a tuple of ``"file.py:line:function"`` strings, innermost
    first.  A bounded ``sys._getframe`` walk — no traceback objects, no
    line-source loading — keeps this cheap enough for every schedule.
    """
    frames = []
    try:
        frame = sys._getframe(2)
    except ValueError:  # pragma: no cover - shallow interpreter stack
        return ()
    while frame is not None and len(frames) < depth:
        code = frame.f_code
        filename = code.co_filename.rsplit("/", 1)[-1]
        if filename not in _MECHANISM_FILES:
            frames.append("%s:%d:%s" % (filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    return tuple(frames)


class WriteRecord:
    """One tracked write to shared state."""

    __slots__ = ("engine_index", "time", "fire_seq", "owner", "attr", "value", "site")

    def __init__(self, engine_index, time, fire_seq, owner, attr, value, site):
        self.engine_index = engine_index
        self.time = time
        #: seq of the event being fired when the write happened (0 when
        #: written outside the event loop, e.g. during machine build)
        self.fire_seq = fire_seq
        self.owner = owner
        self.attr = attr
        self.value = value
        self.site = site

    def as_dict(self):
        return {
            "fire_seq": self.fire_seq,
            "value": self.value,
            "site": list(self.site),
        }


class SimSan:
    """One sanitizer pass: install on ``Engine.sanitizer``, run, inspect.

    A SimSan instance watches *every* engine created while installed —
    a cell builds several machines (native testbed, VM testbeds), and
    each engine gets a stable index in creation/first-schedule order so
    the fifo and inverted runs of the same cell line up exactly.
    """

    def __init__(self, order=FIFO):
        if order not in (FIFO, INVERTED):
            raise ValueError("order must be %r or %r" % (FIFO, INVERTED))
        self.order = order
        self._engines = []  # keep refs so id() values stay unique
        self._engine_index = {}  # id(engine) -> index
        #: (engine_index, seq) -> schedule site tuple
        self.provenance = {}
        #: fire order: list of (engine_index, time, seq)
        self.trace = []
        self.writes = []
        #: the (engine_index, time, seq) currently firing
        self._current = None
        self.metrics = MetricsRegistry()
        self._scheduled = self.metrics.counter("sanitize.schedule_events")
        self._fired = self.metrics.counter("sanitize.fires")
        self._ties = self.metrics.counter("sanitize.tie_groups")
        self._writes_seen = self.metrics.counter("sanitize.writes")
        self._last_fire = None  # (engine_index, time) of the previous fire
        self._last_was_tie = False

    # -- engine hooks (see Engine.schedule / Engine.run) -----------------

    def engine_index(self, engine):
        index = self._engine_index.get(id(engine))
        if index is None:
            index = len(self._engines)
            self._engines.append(engine)
            self._engine_index[id(engine)] = index
        return index

    def on_schedule(self, engine, time, seq, callback):
        """Record provenance; return the heap's equal-time ordering key."""
        self.provenance[(self.engine_index(engine), seq)] = call_site()
        self._scheduled.inc()
        return seq if self.order == FIFO else -seq

    def on_fire(self, engine, time, key):
        seq = key if self.order == FIFO else -key
        index = self.engine_index(engine)
        self.trace.append((index, time, seq))
        self._fired.inc()
        here = (index, time)
        if here == self._last_fire:
            if not self._last_was_tie:
                self._ties.inc()  # count groups, not members
            self._last_was_tie = True
        else:
            self._last_was_tie = False
        self._last_fire = here
        self._current = (index, time, seq)

    # -- write tracking (see repro.sanitize.writes) ----------------------

    def record_write(self, engine, owner, attr, value):
        index = self.engine_index(engine)
        if self._current is not None and self._current[0] == index:
            fire_seq = self._current[2] if self._current[1] == engine.now else 0
        else:
            fire_seq = 0
        self.writes.append(
            WriteRecord(index, engine.now, fire_seq, owner, attr, value, call_site())
        )
        self._writes_seen.inc()

    # -- analysis --------------------------------------------------------

    def site_of(self, fire):
        """Schedule site for one ``(engine_index, time, seq)`` trace entry."""
        return self.provenance.get((fire[0], fire[2]), ())

    def tie_groups(self):
        return self._ties.value

    def multi_writer_races(self):
        """Same object+field written at one simulated time from two
        different fire contexts whose *final* values differ: the
        surviving value depends on tie order.  Intermediate writes
        within one fire are sequential code and never racy, so only the
        last write per fire context is compared."""
        groups = {}
        for record in self.writes:
            key = (record.engine_index, record.time, record.owner, record.attr)
            groups.setdefault(key, []).append(record)
        races = []
        for key, records in sorted(groups.items()):
            last_by_fire = {}
            for record in records:  # append order = program order
                last_by_fire[record.fire_seq] = record
            values = {record.value for record in last_by_fire.values()}
            if len(last_by_fire) > 1 and len(values) > 1:
                races.append(
                    {
                        "engine": key[0],
                        "time": key[1],
                        "owner": key[2],
                        "attr": key[3],
                        "writers": [record.as_dict() for record in records],
                    }
                )
        return races

    def metrics_snapshot(self):
        return {name: snap["value"] for name, snap in self.metrics.snapshot().items()}


def first_divergence(fifo_san, inverted_san):
    """Where the fifo and inverted fire orders first differ, with the
    schedule provenance of both sides — the anchor of a tie-race report."""
    for index, (a, b) in enumerate(zip(fifo_san.trace, inverted_san.trace)):
        if a != b:
            return {
                "fire_index": index,
                "engine": a[0],
                "time": a[1],
                "fifo": {"seq": a[2], "scheduled_at": list(fifo_san.site_of(a))},
                "inverted": {
                    "seq": b[2],
                    "scheduled_at": list(inverted_san.site_of(b)),
                },
            }
    if len(fifo_san.trace) != len(inverted_san.trace):
        return {
            "fire_index": min(len(fifo_san.trace), len(inverted_san.trace)),
            "engine": None,
            "time": None,
            "fifo": {"seq": None, "scheduled_at": []},
            "inverted": {"seq": None, "scheduled_at": []},
        }
    return None
