"""Write tracking for shared hypervisor state.

The state that both sides of a cross-CPU operation touch — a VCPU's
run state, the PCPU's current scheduling context, the software VIRQ
queue — is exactly the state whose final value could silently depend
on same-cycle tie order.  While a sanitizer pass is active these fields
are shadowed by class-level data descriptors that forward every write
to :meth:`repro.sanitize.simsan.SimSan.record_write` (value + writer
site + firing event), then store the value under a mangled instance
slot so behavior is unchanged.

Installation is process-global but strictly scoped: ``install()``
returns an uninstall callable, and :func:`tracking` wraps the pair in a
context manager.  Instances created while tracking was active keep
their mangled slots after uninstall, so tracking must bracket the whole
life of a cell (the sanitize runner builds fresh testbeds inside the
bracket and discards them before leaving it).
"""

import contextlib
import re

_ADDRESS_RE = re.compile(r" at 0x[0-9a-fA-F]+")


def value_repr(value, limit=120):
    """A deterministic, hashable rendering of a written value (memory
    addresses stripped so reports stay byte-reproducible)."""
    text = _ADDRESS_RE.sub("", repr(value))
    return text if len(text) <= limit else text[: limit - 3] + "..."


class TrackedAttr:
    """Data descriptor shadowing a plain instance attribute."""

    def __init__(self, san, attr, engine_of, owner_of):
        self.san = san
        self.attr = attr
        self.slot = "_simsan_" + attr
        self.engine_of = engine_of
        self.owner_of = owner_of

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        try:
            return getattr(obj, self.slot)
        except AttributeError:
            raise AttributeError(self.attr)

    def __set__(self, obj, value):
        object.__setattr__(obj, self.slot, value)
        engine = self.engine_of(obj)
        if engine is not None:
            self.san.record_write(
                engine, self.owner_of(obj), self.attr, value_repr(value)
            )


def _vcpu_engine(vcpu):
    pcpu = getattr(vcpu, "pcpu", None)
    return pcpu.machine.engine if pcpu is not None else None


def _vcpu_owner(vcpu):
    vm = getattr(vcpu, "vm", None)
    name = vm.name if vm is not None else "?"
    return "%s.vcpu%d" % (name, getattr(vcpu, "index", -1))


def _pcpu_engine(pcpu):
    machine = getattr(pcpu, "machine", None)
    return machine.engine if machine is not None else None


def _pcpu_owner(pcpu):
    return "pcpu%d" % getattr(pcpu, "index", -1)


def install(san):
    """Shadow the shared-state fields; returns the uninstall callable."""
    from repro.hv.base import Vcpu
    from repro.hw.platform import Pcpu

    Vcpu.state = TrackedAttr(san, "state", _vcpu_engine, _vcpu_owner)
    Pcpu.current_context = TrackedAttr(
        san, "current_context", _pcpu_engine, _pcpu_owner
    )

    original_queue_virq = Vcpu.queue_virq

    def queue_virq(self, virq):
        engine = _vcpu_engine(self)
        if engine is not None:
            san.record_write(
                engine, _vcpu_owner(self), "pending_virqs", "queue(%r)" % (virq,)
            )
        return original_queue_virq(self, virq)

    Vcpu.queue_virq = queue_virq

    def uninstall():
        del Vcpu.state
        del Pcpu.current_context
        Vcpu.queue_virq = original_queue_virq

    return uninstall


@contextlib.contextmanager
def tracking(san):
    uninstall = install(san)
    try:
        yield san
    finally:
        uninstall()
