"""Seeded sanitizer fixtures: prove the detectors detect.

A sanitizer whose clean report cannot be distinguished from a sanitizer
that is silently broken is worthless, so the ``selftest`` target ships
two tiny cells:

* ``selftest[tie-race]`` deliberately schedules two callbacks for the
  same cycle whose *order* is the payload.  FIFO and inverted runs must
  produce different hashes — if they do not, the inversion plumbing is
  broken and CI fails.
* ``selftest[clean]`` does the same amount of work at distinct cycles;
  it must stay race-free under inversion, guarding against a detector
  that cries wolf.
"""

from repro.sim.engine import Engine


class SelftestCell:
    """Duck-typed stand-in for a CellSpec: an ``id`` plus ``run()``."""

    def __init__(self, cell_id, fn, expect_race):
        self.id = cell_id
        self._fn = fn
        #: whether the sanitize run is *supposed* to flag this cell
        self.expect_race = expect_race

    def run(self):
        return self._fn()


def _tie_race():
    engine = Engine()
    order = []
    # Two independent appenders racing at cycle 10: the payload is the
    # order they happened to fire in, i.e. pure tie-break.
    engine.schedule(10, lambda: order.append("first-scheduled"))
    engine.schedule(10, lambda: order.append("second-scheduled"))
    engine.run()
    return {"order": order, "cycles": engine.now}


def _clean():
    engine = Engine()
    order = []
    engine.schedule(10, lambda: order.append("early"))
    engine.schedule(20, lambda: order.append("late"))
    engine.run()
    return {"order": order, "cycles": engine.now}


def cells():
    return [
        SelftestCell("selftest[tie-race]", _tie_race, expect_race=True),
        SelftestCell("selftest[clean]", _clean, expect_race=False),
    ]
