"""SimSan: a simulation-time sanitizer for the deterministic DES.

See :mod:`repro.sanitize.simsan` for the detector design, and
``python -m repro sanitize --help`` for the CLI.
"""

from repro.sanitize.runner import SCHEMA, TARGETS, sanitize_cell, sanitize_target
from repro.sanitize.simsan import SimSan

__all__ = ["SCHEMA", "TARGETS", "SimSan", "sanitize_cell", "sanitize_target"]
