"""DET001 — determinism.

The engine's reproducibility claim (same seed, same cycle counts) dies the
moment a model consults wall-clock time, ambient entropy, or Python's
randomized set iteration order.  Banned in the model subsystems:

* ``import random`` / ``from random import ...`` — only the seeded
  stream factory ``repro.sim.rng`` may touch ``random``;
* wall-clock reads: ``time.time``/``perf_counter``/``monotonic`` (and the
  ``_ns`` variants), ``datetime.now``/``utcnow``/``today``;
* ``os.urandom``;
* iterating a bare set display, set comprehension, or ``set(...)`` call —
  the order depends on PYTHONHASHSEED;
* augmented assignment to a module-level class attribute (e.g. a
  ``Foo._next_id += 1`` allocator) — process-global mutable state that
  leaks across cells when the runner executes them in-process.
"""

import ast

from repro.analysis.rules.base import Rule, terminal_name

_WALL_CLOCK_TIME = {
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}
_DATETIME_RECEIVERS = {"datetime", "date"}


def _is_bare_set(node):
    return isinstance(node, (ast.Set, ast.SetComp)) or (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "set"
    )


class Determinism(Rule):
    code = "DET001"
    name = "determinism"
    description = (
        "no ambient entropy or wall clocks in the model layers; "
        "randomness only via repro.sim.rng"
    )

    def check(self, project, config):
        scope = config.paths_for(self.code)
        for module in project.in_paths(scope):
            if module.relpath in config.det001_allow:
                continue
            yield from self._check_module(module)

    def _check_module(self, module):
        class_names = {
            stmt.name
            for stmt in module.tree.body
            if isinstance(stmt, ast.ClassDef)
        }
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Attribute)
                and isinstance(node.target.value, ast.Name)
                and node.target.value.id in class_names
            ):
                yield module.violation(
                    node, self.code,
                    "augmented assignment to class attribute '%s.%s' — a "
                    "module-level counter is process-global state that "
                    "leaks across in-process cells; scope it to an "
                    "instance" % (node.target.value.id, node.target.attr),
                )
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield module.violation(
                            node, self.code,
                            "import of 'random' — use repro.sim.rng streams",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    yield module.violation(
                        node, self.code,
                        "import from 'random' — use repro.sim.rng streams",
                    )
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_TIME:
                            yield module.violation(
                                node, self.code,
                                "wall-clock import 'time.%s' — simulation time "
                                "is engine.now" % alias.name,
                            )
            elif isinstance(node, ast.Attribute):
                receiver = terminal_name(node.value)
                if receiver == "random":
                    yield module.violation(
                        node, self.code,
                        "use of 'random.%s' — use repro.sim.rng streams" % node.attr,
                    )
                elif receiver == "time" and node.attr in _WALL_CLOCK_TIME:
                    yield module.violation(
                        node, self.code,
                        "wall-clock read 'time.%s' — simulation time is "
                        "engine.now" % node.attr,
                    )
                elif receiver in _DATETIME_RECEIVERS and node.attr in _WALL_CLOCK_DATETIME:
                    yield module.violation(
                        node, self.code,
                        "wall-clock read '%s.%s' — simulation time is "
                        "engine.now" % (receiver, node.attr),
                    )
                elif receiver == "os" and node.attr == "urandom":
                    yield module.violation(
                        node, self.code,
                        "'os.urandom' — use repro.sim.rng streams",
                    )
            elif isinstance(node, ast.For) and _is_bare_set(node.iter):
                yield module.violation(
                    node, self.code,
                    "iteration over a bare set — order depends on "
                    "PYTHONHASHSEED; sort it or use a list/tuple",
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for comprehension in node.generators:
                    if _is_bare_set(comprehension.iter):
                        yield module.violation(
                            node, self.code,
                            "comprehension over a bare set — order depends on "
                            "PYTHONHASHSEED; sort it or use a list/tuple",
                        )
