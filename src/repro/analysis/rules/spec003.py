"""SPEC003: Table III skeleton symmetry across hypervisors and modes.

The declared groups live in :mod:`repro.analysis.pathspec.symmetry`:
KVM split-mode vs Xen (full VM switch), KVM-VHE vs Xen (light trap) and
KVM split vs VHE.  Each group re-derives member signatures from the
extracted specs and checks that the members differ *only* by the
declared, paper-cited steps.  Findings anchor at the first function of
the offending member.
"""

from repro.analysis.pathspec.extract import extract_tree
from repro.analysis.pathspec.symmetry import evaluate
from repro.analysis.rules.base import Rule


class SkeletonSymmetry(Rule):
    code = "SPEC003"
    name = "pathspec-skeleton-symmetry"
    description = "hypervisor paths sharing a Table III skeleton differ only by declared, cited steps"
    tier = "spec"

    def check(self, project, config):
        specs_by_id = {
            spec.spec_id: spec for spec in extract_tree(project, config)
        }
        for anchor, message in evaluate(specs_by_id):
            yield anchor.module.violation(anchor.func, self.code, message)
