"""DES001 — dropped generator.

Simulation paths are generators: their costed steps execute only while
being driven by ``yield from`` or an engine process.  Calling one as a
bare expression statement —

.. code-block:: python

    save_reg_class(pcpu, costs, reg_class)      # creates, then discards

— creates a generator object, runs *zero* of its steps, and silently
simulates zero cycles.  This is the classic DES bug: results stay
plausible, they are just wrong.

Detection is project-wide and name-based: a function is a *known
generator* when every definition of that name in the scanned tree
contains a ``yield``; a bare ``Expr(Call(...))`` statement invoking a
known generator is flagged.  Passing the call to something
(``engine.spawn(gen())``), ``yield from``-ing it, or binding the result
are all fine — only the discarded bare call is the bug.
"""

import ast

from repro.analysis.rules.base import Rule, terminal_name


def _is_generator(function_def):
    """Does the function body itself yield (nested defs don't count)?"""
    stack = list(function_def.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


class DroppedGenerator(Rule):
    code = "DES001"
    name = "dropped-generator"
    description = (
        "a simulation generator called as a bare statement simulates "
        "zero cycles; use 'yield from' or engine.spawn"
    )

    def check(self, project, config):
        generators, plain = set(), set()
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    (generators if _is_generator(node) else plain).add(node.name)
        # A name is only "known generator" when it is never also defined as
        # a plain function somewhere (avoids cross-module false positives).
        known = generators - plain
        scope = config.paths_for(self.code)
        for module in project.in_paths(scope):
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                    name = terminal_name(node.value.func)
                    if name in known:
                        yield module.violation(
                            node, self.code,
                            "generator %r called as a bare statement — its "
                            "simulated steps never run; use 'yield from %s(...)' "
                            "or schedule it with engine.spawn(...)" % (name, name),
                        )
