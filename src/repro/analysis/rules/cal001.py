"""CAL001 — calibration leakage.

Two checks, both serving the same discipline (DESIGN.md): the paper's
composed results must be *outputs* of executed hypervisor paths, never
inputs.

1. **Anonymous cycle-scale literals** in the model subsystems (``hv/``,
   ``os/``, ``core/`` by default).  Every number of plausible cycle/byte
   magnitude (>= ``cal001-min-literal``) must be bound to a name — a
   module/class-level constant, a dataclass field default, or a parameter
   default — so calibration is reviewable in one place.  Exact powers of
   ten are exempt (unit conversions and percentages, not costs).

2. **Published-cell matches**: any literal anywhere in the package equal
   to a paper Table II/III/V cell is flagged — a composed result has been
   hardcoded.  Table III save/restore primitives are allowed inside
   ``repro.hw.costs`` only (that *is* the documented calibration source).
"""

from repro.analysis.rules.base import (
    Rule,
    iter_numeric_constants,
    named_definition_constants,
)

#: paperdata is the one sanctioned home of published cells.
PAPERDATA = "paperdata.py"

_POWERS_OF_TEN = {float(10 ** exp) for exp in range(1, 19)}


def _published_cells():
    """{value: description} for Table II/V cells, and Table III separately."""
    from repro import paperdata

    composed, table3 = {}, {}
    for row, columns in paperdata.TABLE2.items():
        for key, value in columns.items():
            composed.setdefault(float(value), "Table II %r %s" % (row, key))
    for row, columns in paperdata.TABLE5.items():
        for key, value in columns.items():
            if value is not None:
                composed.setdefault(float(value), "Table V %r %s" % (row, key))
    for row, columns in paperdata.TABLE3.items():
        for key, value in columns.items():
            table3.setdefault(float(value), "Table III %r %s" % (row, key))
    return composed, table3


class CalibrationLeakage(Rule):
    code = "CAL001"
    name = "calibration-leakage"
    description = (
        "cycle-scale literals belong in repro.hw.costs; published table "
        "cells may appear only in repro.paperdata"
    )

    def check(self, project, config):
        composed, table3 = _published_cells()
        scope = config.paths_for(self.code)
        for module in project.modules:
            if module.relpath == PAPERDATA:
                continue
            in_scope = module.in_any(scope)
            named = named_definition_constants(module.tree) if in_scope else set()
            table3_allowed = module.relpath in config.cal001_table3_allow
            for node in iter_numeric_constants(module.tree):
                value = float(node.value)
                if value in composed:
                    yield module.violation(
                        node,
                        self.code,
                        "literal %r equals published %s — composed results "
                        "must be outputs of executed paths, not inputs"
                        % (node.value, composed[value]),
                    )
                elif value in table3 and not table3_allowed:
                    yield module.violation(
                        node,
                        self.code,
                        "literal %r equals published %s — Table III "
                        "primitives belong in repro.hw.costs"
                        % (node.value, table3[value]),
                    )
                elif (
                    in_scope
                    and value >= config.cal001_min_literal
                    and value not in _POWERS_OF_TEN
                    and id(node) not in named
                ):
                    yield module.violation(
                        node,
                        self.code,
                        "anonymous cycle-scale literal %r — bind it to a "
                        "named constant (or move it into repro.hw.costs if "
                        "it is a calibrated primitive)" % (node.value,),
                    )
