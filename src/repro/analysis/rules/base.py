"""Rule protocol and shared AST helpers."""

import ast


class Rule:
    """One lint rule: a pure function from project + config to violations."""

    code = "XXX000"
    name = "unnamed"
    description = ""
    #: "line" rules always run; "flow" rules (CFG-based, costlier) only
    #: run under ``lint --flow`` or when selected explicitly.
    tier = "line"

    def check(self, project, config):
        """Yield :class:`~repro.analysis.engine.Violation` objects."""
        raise NotImplementedError


def iter_numeric_constants(tree):
    """Every int/float literal in ``tree`` (bools excluded)."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
        ):
            yield node


def terminal_name(node):
    """Final identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _collect_constants(node, into):
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant):
            into.add(id(sub))


def named_definition_constants(tree, module_level_only=False):
    """``id()`` of every literal that already has a *name*.

    Allowed (named) contexts:

    * module-level and class-level assignments — constant definitions and
      dataclass field defaults (skipped when ``module_level_only``, except
      for the module level itself);
    * function parameter defaults (the parameter names the value);
    * function-body assignments whose value *is* the literal
      (``slots = 256`` — a plain rename).

    Everything else — literals buried in expressions, call arguments,
    comparisons — is anonymous and fair game for CAL001/API001.
    """
    allowed = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            _collect_constants(stmt, allowed)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and not module_level_only:
            for stmt in node.body:
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    _collect_constants(stmt, allowed)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            arguments = node.args
            defaults = list(arguments.defaults) + [
                default for default in arguments.kw_defaults if default is not None
            ]
            for default in defaults:
                _collect_constants(default, allowed)
        elif isinstance(node, ast.Assign) and not module_level_only:
            if isinstance(node.value, ast.Constant):
                allowed.add(id(node.value))
    return allowed


def is_hex_literal(module, node):
    """True when the literal is written in hex in the source text."""
    if node.lineno - 1 >= len(module.lines):
        return False
    line = module.lines[node.lineno - 1]
    return line[node.col_offset:node.col_offset + 2].lower() == "0x"
