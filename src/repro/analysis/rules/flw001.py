"""FLW001: a cost charged on only one branch of structurally equal arms.

The model layers are full of paired ``if``/``else`` arms that do the
same architectural work for two platforms or two states — trap on ARM
vs vmexit on x86, running vs parked delivery.  Copy-paste drift shows
up as one arm charging cycles (``pcpu.op``) while its structural twin
charges nothing, which skews exactly one side of a comparison table.

Detection: for each ``if`` with both arms, compare the arms' statement
shapes *after stripping bare cost-op statements*.  Equal, non-empty
shapes mean the arms do the same structural work; if exactly one arm
carries zero cost events, the other almost certainly lost (or never
got) its charge.  Arms with different shapes, or where both/neither
charge, are out of scope — asymmetric work is the common, honest case.
"""

import ast

from repro.analysis.flow import Extractor, iter_functions
from repro.analysis.flow.effects import COST, _iter_shallow
from repro.analysis.rules.base import Rule


def _arm_profile(extractor, stmts):
    """(stripped shape tuple, number of cost-charging statements)."""
    shape, costs = [], 0
    for stmt in stmts:
        charges = any(e.kind == COST for e in extractor.effects(stmt))
        if charges:
            costs += 1
        if charges and isinstance(stmt, ast.Expr):
            continue  # a bare `yield pcpu.op(...)` — cost, not structure
        shape.append(type(stmt).__name__)
    return tuple(shape), costs


class BranchCostDrift(Rule):
    code = "FLW001"
    name = "branch-cost-drift"
    tier = "flow"
    description = (
        "structurally equal if/else arms must both charge cycles (or neither)"
    )

    def check(self, project, config):
        for module in project.in_paths(config.paths_for(self.code)):
            for func in iter_functions(module.tree):
                extractor = Extractor(func)
                for node in _iter_shallow(func):
                    if isinstance(node, ast.If) and node.orelse:
                        yield from self._check_if(module, extractor, node)

    def _check_if(self, module, extractor, node):
        then_shape, then_costs = _arm_profile(extractor, node.body)
        else_shape, else_costs = _arm_profile(extractor, node.orelse)
        if not then_shape or then_shape != else_shape:
            return
        if (then_costs == 0) == (else_costs == 0):
            return  # both charge or neither does
        missing = "if-arm" if then_costs == 0 else "else-arm"
        charged = "else-arm" if then_costs == 0 else "if-arm"
        yield module.violation(
            node,
            self.code,
            "branches do the same structural work but only the %s charges "
            "cycles; the %s looks like cost drift" % (charged, missing),
        )
