"""CON001: blocking call reachable from an event-loop context.

The serving stack's whole latency story (coalescing, admission control,
drain) assumes the loop keeps scheduling; one ``time.sleep`` or
``Future.result`` on it stalls *every* in-flight query at once — the
exact failure mode the paper's Table III/V lesson (cost on the hot
transition path dominates) predicts for us.  A function is indicted
when context propagation marks it ``event-loop`` and it contains a
non-awaited blocking effect.  The PR-5 CFG decides the wording: a
blocking statement present on every acyclic path "runs", one on some
paths "may run".
"""

from repro.analysis.conc import build_model
from repro.analysis.conc.contexts import EVENT_LOOP
from repro.analysis.flow.cfg import build_cfg
from repro.analysis.rules.base import Rule


class LoopBlocking(Rule):
    code = "CON001"
    name = "loop-blocking"
    description = "blocking call reachable from an event-loop context"
    tier = "conc"

    def check(self, project, config):
        model = build_model(project, config)
        prefixes = config.paths_for(self.code)
        for func in model.functions:
            if not func.module.in_any(prefixes):
                continue
            if EVENT_LOOP not in model.contexts[func]:
                continue
            effects = model.blocking_effects(func, self.code)
            if not effects:
                continue
            chain = model.chain(func, EVENT_LOOP)
            paths = _unconditional_stmts(func, config.flow_max_paths)
            for effect in effects:
                verb = "runs" if id(effect.stmt) in paths else "may run"
                yield func.module.violation(
                    effect.node, self.code,
                    "blocking call %s %s on the event loop (reachable via %s); "
                    "offload with loop.run_in_executor/asyncio.to_thread, or "
                    "suppress with a written reason" % (effect.label, verb, chain),
                )


def _unconditional_stmts(func, max_paths):
    """``id`` of every statement present on *all* enumerated acyclic paths
    (empty when the path budget is exhausted — then nothing is claimed
    unconditional)."""
    paths = list(build_cfg(func.node).iter_paths(max_paths))
    if not paths or len(paths) >= max_paths:
        return set()
    common = None
    for path in paths:
        ids = {id(node.stmt) for node in path.nodes if node.stmt is not None}
        common = ids if common is None else common & ids
    return common or set()
