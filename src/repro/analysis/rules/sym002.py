"""SYM002: trap entry/exit and Stage-2 toggle pairing (lockdep-style).

A split-mode world switch traps to EL2 (``trap_to_el2``) and must
``eret`` back out; an x86 transition pairs ``vmexit`` with ``vmentry``;
and any path that disables Stage-2 translation
(``disable_virt_features``) must re-enable it before handing the CPU
back.  A path that returns, raises, or falls off the end *between* the
pair leaves the modeled CPU stuck in hypervisor context — the
simulation equivalent of lockdep's "lock held at return".

The transition stream comes from the shared PathSpec extraction
(:mod:`repro.analysis.pathspec`), the same source the committed
``specs/`` goldens and SPEC00x rules consume.

Only functions containing **both** ends of a dimension are checked:
dedicated halves (``_xen_entry`` traps in, ``_xen_return`` erets out)
are legitimate composition units and stay out of scope — their pairing
is SYM001's one-sidedness report, suppressed with a reason.  An exit
with no recorded enter (the function was *called* in hypervisor
context) clamps at depth zero rather than flagging.
"""

from repro.analysis.flow.cfg import RAISE, RETURN
from repro.analysis.flow.effects import TRAP_ENTER, TRAP_EXIT, VIRT_OFF, VIRT_ON
from repro.analysis.pathspec.extract import module_specs
from repro.analysis.rules.base import Rule

#: (enter kind, exit kind, what the pair is)
_DIMENSIONS = (
    (TRAP_ENTER, TRAP_EXIT, "trap to hypervisor context"),
    (VIRT_OFF, VIRT_ON, "Stage-2/virt-feature disable"),
)


def _path_end(path, func):
    if path.terminator == RETURN:
        return "returns at line %d" % path.escape_line
    if path.terminator == RAISE:
        return "raises at line %d" % path.escape_line
    return "falls off the end of '%s'" % func.name


class TrapPairing(Rule):
    code = "SYM002"
    name = "trap-pairing"
    tier = "flow"
    description = (
        "trap entries and Stage-2 disables must be matched before any exit"
    )

    def check(self, project, config):
        max_paths = config.flow_max_paths
        for module in project.in_paths(config.paths_for(self.code)):
            for spec in module_specs(module, max_paths):
                yield from self._check_function(module, spec)

    def _check_function(self, module, spec):
        func = spec.func
        kinds = {step.arch for step in spec.all_steps if step.kind == "arch"}
        dimensions = [
            dim for dim in _DIMENSIONS if dim[0] in kinds and dim[1] in kinds
        ]
        if not dimensions:
            return
        seen = set()
        for path in spec.paths:
            for enter_kind, exit_kind, label in dimensions:
                pending = []  # lines of unmatched enters, innermost last
                for step in path.steps:
                    if step.kind != "arch":
                        continue
                    if step.arch == enter_kind:
                        pending.append(step.line)
                    elif step.arch == exit_kind and pending:
                        pending.pop()
                for line in pending:
                    message = "%s at line %d is never undone on a path that %s" % (
                        label,
                        line,
                        _path_end(path, func),
                    )
                    if (line, message) not in seen:
                        seen.add((line, message))
                        yield module.violation(line, self.code, message)
