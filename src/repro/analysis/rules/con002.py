"""CON002: shared attribute written from two contexts with inconsistent guard.

A lockset check in the RacerD tradition, scoped to ``self``-attribute
writes: for each (class, attribute), collect every non-``__init__``
write site with the locks held there (lexically plus the caller-held
entry set), and the union of execution contexts that reach the writing
functions.  When at least two contexts write the attribute *and* a
majority of the write sites agree on a guard lock, any write missing
that lock is flagged.  No majority — e.g. the deliberate GIL-atomic
one-flag pattern (``self._draining = True`` everywhere unguarded) —
means no discipline to enforce, so nothing fires.
"""

from repro.analysis.conc import build_model
from repro.analysis.rules.base import Rule


class SharedGuard(Rule):
    code = "CON002"
    name = "shared-guard"
    description = "shared attribute written from >=2 contexts with inconsistent guard"
    tier = "conc"

    def check(self, project, config):
        model = build_model(project, config)
        prefixes = config.paths_for(self.code)
        groups = {}
        for func in model.functions:
            for write in func.writes:
                key = (func.module.relpath, write.class_name, write.attr)
                groups.setdefault(key, []).append((func, write))
        for (relpath, class_name, attr), writes in sorted(groups.items()):
            module = writes[0][0].module
            if not module.in_any(prefixes):
                continue
            write_contexts = set()
            for func, _write in writes:
                write_contexts.update(model.contexts[func])
            if len(write_contexts) < 2:
                continue
            guards = [
                write.held | model.entry_held[func] for func, write in writes
            ]
            majority = _majority_lock(guards)
            if majority is None:
                continue
            for (func, write), held in zip(writes, guards):
                if majority in held:
                    continue
                yield module.violation(
                    write.node, self.code,
                    "write to %s.%s is unguarded, but %d of %d write sites "
                    "hold %s and the attribute is written from %s contexts"
                    % (
                        class_name, attr,
                        sum(1 for g in guards if majority in g), len(guards),
                        majority.display,
                        "+".join(sorted(write_contexts)),
                    ),
                )


def _majority_lock(guards):
    """The lock held at a strict majority of write sites, else None."""
    counts = {}
    for held in guards:
        for token in held:
            counts[token] = counts.get(token, 0) + 1
    best = None
    for token, count in counts.items():
        if 2 * count > len(guards) and (best is None or count > counts[best]):
            best = token
    return best
