"""SYM001: register-class saves and restores must balance on every path.

The paper's Table III attributes world-switch cost to the register
classes each transition moves (GP, FP, EL1 sysregs, VGIC, timer, EL2
shadow state).  The model stays faithful only if every function that
*saves* a class also *restores* it on every way out — otherwise some
path silently leaks architectural state and the composed operations
drift from the table.

Two independent layers are checked:

* **costed ops** — ``pcpu.op(..., "save")`` / ``pcpu.op(..., "restore")``
  pairs, matched by register-class token.  The expectations come from
  the PathSpec extraction (:mod:`repro.analysis.pathspec`) — the same
  step stream the committed ``specs/`` golden files are generated from,
  with module-level aliases canonicalized — so the flow tier and the
  spec tier can never disagree about what a sweep moves;
* **context-image moves** — ``arch.save_context(...)`` /
  ``arch.load_context(...)`` call counts.

A function that is one-sided in either layer (saves with no restores
anywhere, or vice versa) gets a single violation on its ``def`` line:
that shape is either a bug or an intentional *switch half*
(``split_mode_exit`` saves; ``split_mode_enter`` restores), and halves
are expected to carry a suppression naming the paper section that
justifies them.  A function with both sides is checked path-by-path:
every acyclic path must balance each layer.
"""

from collections import Counter

from repro.analysis.flow.effects import CTX_LOAD, CTX_SAVE
from repro.analysis.pathspec.extract import module_specs
from repro.analysis.rules.base import Rule


class PathSymmetry(Rule):
    code = "SYM001"
    name = "path-symmetry"
    tier = "flow"
    description = (
        "register-class saves and restores must balance on every acyclic path"
    )

    def check(self, project, config):
        max_paths = config.flow_max_paths
        for module in project.in_paths(config.paths_for(self.code)):
            for spec in module_specs(module, max_paths):
                yield from self._check_function(module, spec)

    def _check_function(self, module, spec):
        func = spec.func
        has_save = has_restore = has_ctx_save = has_ctx_load = False
        for step in spec.all_steps:
            if step.kind == "op":
                has_save = has_save or step.category == "save"
                has_restore = has_restore or step.category == "restore"
            else:
                has_ctx_save = has_ctx_save or step.arch == CTX_SAVE
                has_ctx_load = has_ctx_load or step.arch == CTX_LOAD

        one_sided = []
        if has_save and not has_restore:
            one_sided.append("costed register-class saves but no restores")
        elif has_restore and not has_save:
            one_sided.append("costed register-class restores but no saves")
        if has_ctx_save and not has_ctx_load:
            one_sided.append("save_context with no load_context")
        elif has_ctx_load and not has_ctx_save:
            one_sided.append("load_context with no save_context")
        if one_sided:
            yield module.violation(
                func,
                self.code,
                "'%s' has %s: a one-sided switch half must be paired or "
                "suppressed with its paper-grounded reason" % (func.name, "; ".join(one_sided)),
            )
            return

        check_ops = has_save  # both sides present (see above)
        check_ctx = has_ctx_save
        if not (check_ops or check_ctx):
            return
        seen = set()
        for path in spec.paths:
            saves, restores = Counter(), Counter()
            ctx_saves = ctx_loads = 0
            first_line = {}
            for step in path.steps:
                if step.kind == "op":
                    if step.category == "save":
                        saves[step.reg_class] += 1
                        first_line.setdefault(("s", step.reg_class), step.line)
                    elif step.category == "restore":
                        restores[step.reg_class] += 1
                        first_line.setdefault(("r", step.reg_class), step.line)
                elif step.arch == CTX_SAVE:
                    ctx_saves += 1
                    first_line.setdefault("ctx", step.line)
                elif step.arch == CTX_LOAD:
                    ctx_loads += 1
                    first_line.setdefault("ctx", step.line)
            if check_ops and saves != restores:
                for token in sorted(
                    set(saves) | set(restores), key=lambda t: str(t)
                ):
                    if saves[token] == restores[token]:
                        continue
                    side = "s" if saves[token] > restores[token] else "r"
                    line = first_line.get((side, token), func.lineno)
                    message = (
                        "register class '%s' is saved %d time(s) but restored "
                        "%d time(s) on a path through '%s'"
                        % (token, saves[token], restores[token], func.name)
                    )
                    if (line, message) not in seen:
                        seen.add((line, message))
                        yield module.violation(line, self.code, message)
            if check_ctx and ctx_saves != ctx_loads:
                line = first_line.get("ctx", func.lineno)
                message = (
                    "context image saved %d time(s) but loaded %d time(s) "
                    "on a path through '%s'" % (ctx_saves, ctx_loads, func.name)
                )
                if (line, message) not in seen:
                    seen.add((line, message))
                    yield module.violation(line, self.code, message)
