"""SYM001: register-class saves and restores must balance on every path.

The paper's Table III attributes world-switch cost to the register
classes each transition moves (GP, FP, EL1 sysregs, VGIC, timer, EL2
shadow state).  The model stays faithful only if every function that
*saves* a class also *restores* it on every way out — otherwise some
path silently leaks architectural state and the composed operations
drift from the table.

Two independent layers are checked:

* **costed ops** — ``pcpu.op(..., "save")`` / ``pcpu.op(..., "restore")``
  pairs, matched by register-class token (see
  :mod:`repro.analysis.flow.effects`);
* **context-image moves** — ``arch.save_context(...)`` /
  ``arch.load_context(...)`` call counts.

A function that is one-sided in either layer (saves with no restores
anywhere, or vice versa) gets a single violation on its ``def`` line:
that shape is either a bug or an intentional *switch half*
(``split_mode_exit`` saves; ``split_mode_enter`` restores), and halves
are expected to carry a suppression naming the paper section that
justifies them.  A function with both sides is checked path-by-path:
every acyclic path must balance each layer.
"""

from collections import Counter

from repro.analysis.flow import Extractor, build_cfg, iter_functions
from repro.analysis.flow.effects import CTX_LOAD, CTX_SAVE, RESTORE_OP, SAVE_OP
from repro.analysis.rules.base import Rule


class PathSymmetry(Rule):
    code = "SYM001"
    name = "path-symmetry"
    tier = "flow"
    description = (
        "register-class saves and restores must balance on every acyclic path"
    )

    def check(self, project, config):
        max_paths = config.flow_max_paths
        for module in project.in_paths(config.paths_for(self.code)):
            for func in iter_functions(module.tree):
                yield from self._check_function(module, func, max_paths)

    def _check_function(self, module, func, max_paths):
        extractor = Extractor(func)
        cfg = build_cfg(func)
        kinds = set()
        for node in cfg.nodes:
            if node.kind == "stmt":
                kinds.update(e.kind for e in extractor.effects(node.stmt))

        one_sided = []
        if SAVE_OP in kinds and RESTORE_OP not in kinds:
            one_sided.append("costed register-class saves but no restores")
        elif RESTORE_OP in kinds and SAVE_OP not in kinds:
            one_sided.append("costed register-class restores but no saves")
        if CTX_SAVE in kinds and CTX_LOAD not in kinds:
            one_sided.append("save_context with no load_context")
        elif CTX_LOAD in kinds and CTX_SAVE not in kinds:
            one_sided.append("load_context with no save_context")
        if one_sided:
            yield module.violation(
                func,
                self.code,
                "'%s' has %s: a one-sided switch half must be paired or "
                "suppressed with its paper-grounded reason" % (func.name, "; ".join(one_sided)),
            )
            return

        check_ops = SAVE_OP in kinds  # both sides present (see above)
        check_ctx = CTX_SAVE in kinds
        if not (check_ops or check_ctx):
            return
        seen = set()
        for path in cfg.iter_paths(max_paths):
            saves, restores = Counter(), Counter()
            ctx_saves = ctx_loads = 0
            first_line = {}
            for node in path.nodes:
                for effect in extractor.effects(node.stmt):
                    if effect.kind == SAVE_OP:
                        saves[effect.token] += 1
                        first_line.setdefault(("s", effect.token), effect.line)
                    elif effect.kind == RESTORE_OP:
                        restores[effect.token] += 1
                        first_line.setdefault(("r", effect.token), effect.line)
                    elif effect.kind == CTX_SAVE:
                        ctx_saves += 1
                        first_line.setdefault("ctx", effect.line)
                    elif effect.kind == CTX_LOAD:
                        ctx_loads += 1
                        first_line.setdefault("ctx", effect.line)
            if check_ops and saves != restores:
                for token in sorted(
                    set(saves) | set(restores), key=lambda t: str(t)
                ):
                    if saves[token] == restores[token]:
                        continue
                    side = "s" if saves[token] > restores[token] else "r"
                    line = first_line.get((side, token), func.lineno)
                    message = (
                        "register class '%s' is saved %d time(s) but restored "
                        "%d time(s) on a path through '%s'"
                        % (token, saves[token], restores[token], func.name)
                    )
                    if (line, message) not in seen:
                        seen.add((line, message))
                        yield module.violation(line, self.code, message)
            if check_ctx and ctx_saves != ctx_loads:
                line = first_line.get("ctx", func.lineno)
                message = (
                    "context image saved %d time(s) but loaded %d time(s) "
                    "on a path through '%s'" % (ctx_saves, ctx_loads, func.name)
                )
                if (line, message) not in seen:
                    seen.add((line, message))
                    yield module.violation(line, self.code, message)
