"""CON003: await or blocking call while holding a lock.

Three shapes, all reported at the offending line:

* ``await`` inside a ``with <threading lock>`` in a coroutine — the
  loop suspends the coroutine *with the OS lock held*; any thread (or
  other coroutine on a worker loop) contending on it then stalls for an
  unbounded number of scheduler turns.  ``async with asyncio.Lock`` is
  the correct tool and stays silent.
* A direct blocking call while any recognized lock is held (lexically
  or on entry via the caller-held fixpoint) — the classic convoy:
  every contender pays the sleep.
* A *precisely-resolved* call, made under a lock, into a function whose
  may-block closure is non-empty — the interprocedural convoy.  Fuzzy
  name-matched edges are excluded here (see conc/model.py); a reviewed
  suppression on the underlying blocking line clears the whole chain.
"""

from repro.analysis.conc import build_model
from repro.analysis.rules.base import Rule


class LockHold(Rule):
    code = "CON003"
    name = "lock-hold"
    description = "await or blocking call while holding a lock"
    tier = "conc"

    def check(self, project, config):
        model = build_model(project, config)
        prefixes = config.paths_for(self.code)
        for func in model.functions:
            if not func.module.in_any(prefixes):
                continue
            entry = model.entry_held[func]
            if func.is_async:
                for await_site in func.awaits:
                    threading_locks = sorted(
                        token.display
                        for token in (await_site.held | entry)
                        if token.kind == "threading"
                    )
                    if threading_locks:
                        yield func.module.violation(
                            await_site.node, self.code,
                            "await while holding threading lock %s suspends "
                            "the coroutine with the lock held; use "
                            "asyncio.Lock or release before awaiting"
                            % ", ".join(threading_locks),
                        )
            for effect in model.blocking_effects(func, self.code):
                held = effect.held | entry
                if held:
                    yield func.module.violation(
                        effect.node, self.code,
                        "blocking call %s while holding %s makes every "
                        "contender wait out the block"
                        % (effect.label, _display(held)),
                    )
            for site in func.calls:
                if site.awaited or site.fuzzy:
                    continue
                held = site.held | entry
                if not held:
                    continue
                for target in site.targets:
                    if target.is_async and not func.is_async:
                        continue
                    reached = model.may_block(target, self.code)
                    if reached is None:
                        continue
                    effect, owner = reached
                    yield func.module.violation(
                        site.node, self.code,
                        "call to %s while holding %s reaches blocking %s "
                        "(%s:%d)" % (
                            target.qualname, _display(held), effect.label,
                            owner.module.relpath, effect.node.lineno,
                        ),
                    )
                    break


def _display(held):
    return ", ".join(sorted(token.display for token in held))
