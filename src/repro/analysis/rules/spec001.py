"""SPEC001: world-switch code and committed path specs must agree.

The JSON under ``specs/`` is a golden file: any change to a hypervisor
path (a reordered save sweep, a new trap, a recosted step) must re-land
the regenerated spec in the same commit, exactly like a golden output.
The rule re-extracts every in-scope function and compares against the
committed documents in both directions — drifted and missing functions
anchor at the ``def``; stale committed entries anchor at the spec file.
"""

from repro.analysis.engine import Violation
from repro.analysis.pathspec.extract import (
    extract_tree,
    load_committed,
    resolve_spec_dir,
)
from repro.analysis.rules.base import Rule


class SpecDrift(Rule):
    code = "SPEC001"
    name = "pathspec-drift"
    description = "extracted world-switch paths must match the committed specs/ golden JSON"
    tier = "spec"

    def check(self, project, config):
        extracted = extract_tree(project, config)
        if not extracted:
            return
        spec_dir = resolve_spec_dir(config, project)
        if not spec_dir.is_dir():
            anchor = extracted[0]
            yield anchor.module.violation(
                anchor.func,
                self.code,
                "no committed path specs at %s — run `python -m repro spec "
                "extract` and commit the result" % spec_dir,
            )
            return
        committed, sources, problems = load_committed(spec_dir)
        for path, message in problems:
            yield Violation(str(path), 1, 0, self.code, message)
        matched = set()
        for spec in extracted:
            document = spec.serialize()
            have = committed.get(spec.spec_id)
            if have is None:
                yield spec.module.violation(
                    spec.func,
                    self.code,
                    "'%s' has no committed path spec in %s — run `python -m "
                    "repro spec extract` and commit the result"
                    % (spec.qualname, spec_dir),
                )
                continue
            matched.add(spec.spec_id)
            if have != document:
                yield spec.module.violation(
                    spec.func,
                    self.code,
                    "path spec for '%s' drifted from %s — the code changed "
                    "without re-landing the golden spec (run `python -m repro "
                    "spec extract`)" % (spec.qualname, sources[spec.spec_id].name),
                )
        for spec_id in sorted(set(committed) - matched):
            yield Violation(
                str(sources[spec_id]),
                1,
                0,
                self.code,
                "committed path spec %r matches no extracted function — "
                "stale entry (run `python -m repro spec extract`)" % spec_id,
            )
