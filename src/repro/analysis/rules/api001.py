"""API001 — raw magic address.

Guest-physical addresses and page-size constants written as anonymous hex
literals (``grants.grant(gpa_page=0x4000 + page)``) hide the memory-map
contract between frontends, backends, and grant tables.  Page-scale hex
literals (>= ``api001-min-address``, default 0x1000) in the scoped
subsystems (``hv/`` by default) must come from named module-level
constants — see ``GICD_BASE_GPA`` and friends in ``repro.hv.base``.

Only literals actually *written in hex* are flagged: hex is how this
codebase spells addresses, while decimal literals are byte counts and are
CAL001's business.
"""

from repro.analysis.rules.base import (
    Rule,
    is_hex_literal,
    iter_numeric_constants,
    named_definition_constants,
)


class RawMagicAddress(Rule):
    code = "API001"
    name = "raw-magic-address"
    description = (
        "page-scale hex address literals must come from named "
        "module-level constants"
    )

    def check(self, project, config):
        scope = config.paths_for(self.code)
        for module in project.in_paths(scope):
            named = named_definition_constants(module.tree)
            for node in iter_numeric_constants(module.tree):
                if not isinstance(node.value, int):
                    continue
                if node.value < config.api001_min_address:
                    continue
                if id(node) in named or not is_hex_literal(module, node):
                    continue
                yield module.violation(
                    node, self.code,
                    "raw hex address/page literal 0x%x — define a named "
                    "module-level constant (cf. GICD_BASE_GPA in "
                    "repro.hv.base)" % node.value,
                )
