"""COV001 — cost coverage.

The calibration discipline cuts both ways.  CAL001 keeps composed results
out of the constants; COV001 keeps the constants honest:

* every primitive defined in ``repro.hw.costs`` must be *read* by at
  least one composed path (an orphaned primitive is dead calibration —
  it looks load-bearing in a review but influences nothing);
* every ``costs.<attr>`` reference must resolve to a defined primitive
  or cost-model method (a typo'd cost name raises only when that exact
  path executes, which a shape test may never do).

Reads are recognized on any receiver whose final component is ``costs``
(``costs.x``, ``self.costs.x``, ``hv.costs.x``, ``machine.costs.x``) plus
``self.<field>`` inside the cost module itself (cost-class methods like
``copy_cycles`` consume their own fields).
"""

import ast

from repro.analysis.rules.base import Rule, terminal_name


def _cost_definitions(costs_module):
    """(fields, methods): {name: lineno} from every class in the module."""
    fields, methods = {}, set()
    for node in costs_module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if not stmt.target.id.startswith("_"):
                    fields.setdefault(stmt.target.id, stmt.lineno)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and not target.id.startswith("_"):
                        fields.setdefault(target.id, stmt.lineno)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.add(stmt.name)
    return fields, methods


class CostCoverage(Rule):
    code = "COV001"
    name = "cost-coverage"
    description = (
        "every repro.hw.costs primitive must be read by a composed path; "
        "cost references must resolve"
    )

    def check(self, project, config):
        costs_module = project.module(config.cov001_costs_module)
        if costs_module is None:
            return
        fields, methods = _cost_definitions(costs_module)
        scope = config.paths_for(self.code)
        scoped = project.in_paths(scope)
        if costs_module not in scoped:
            scoped = scoped + [costs_module]
        reads = {}
        for module in scoped:
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load)):
                    continue
                receiver = terminal_name(node.value)
                if receiver == "costs" or (receiver == "self" and module is costs_module):
                    reads.setdefault(node.attr, []).append((module, node))
        for name, lineno in sorted(fields.items()):
            if name not in reads:
                yield costs_module.violation(
                    lineno, self.code,
                    "primitive cost %r is never read by any composed path — "
                    "orphaned calibration constant (wire it into a hypervisor "
                    "path or remove it)" % name,
                )
        known = set(fields) | methods
        for name, sites in sorted(reads.items()):
            if name in known:
                continue
            for module, node in sites:
                yield module.violation(
                    node, self.code,
                    "reference to undefined cost attribute %r — not a "
                    "primitive or method of the cost model" % name,
                )
