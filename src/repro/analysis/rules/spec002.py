"""SPEC002: path specs and the cost table must reference each other.

Forward direction: every op step whose cost expression resolves into
the cost model must name a real ``ArmCosts``/``X86Costs`` field (or the
``save``/``restore`` sweep tables, or a cost-model method).  Backward
direction: every cost field must be reachable from at least one
extracted path step — a field no spec can see is dead calibration the
per-read COV001 check cannot distinguish from helper-only reads, and is
flagged at its definition unless suppressed with a reason.
"""

import ast

from repro.analysis.pathspec.extract import extract_tree
from repro.analysis.rules.base import Rule


def _cost_fields(costs_module):
    """``([(name, lineno), ...], methods)`` over every cost class, keeping
    per-class duplicates so each definition line is checked on its own."""
    fields, methods = [], set()
    for node in costs_module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if not stmt.target.id.startswith("_"):
                    fields.append((stmt.target.id, stmt.lineno))
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and not target.id.startswith("_"):
                        fields.append((target.id, stmt.lineno))
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.add(stmt.name)
    return fields, methods


class SpecCostConsistency(Rule):
    code = "SPEC002"
    name = "pathspec-cost-consistency"
    description = "every spec step references a real cost field; every cost field is spec-reachable or suppressed"
    tier = "spec"

    def check(self, project, config):
        costs_module = project.module(config.cov001_costs_module)
        if costs_module is None:
            return
        fields, methods = _cost_fields(costs_module)
        field_names = {name for name, _ in fields}
        referenced = set()
        seen_sites = set()
        for spec in extract_tree(project, config):
            for step in spec.all_steps:
                if step.kind != "op" or step.cost is None:
                    continue
                referenced.add(step.cost)
                site = (spec.module.relpath, step.line, step.cost)
                if site in seen_sites:
                    continue
                seen_sites.add(site)
                if step.cost_kind in ("field", "table"):
                    if step.cost not in field_names:
                        yield spec.module.violation(
                            step.line,
                            self.code,
                            "op step charges cost field %r which is not a "
                            "field of the cost model (%s)"
                            % (step.cost, config.cov001_costs_module),
                        )
                elif step.cost_kind == "method":
                    if step.cost not in methods:
                        yield spec.module.violation(
                            step.line,
                            self.code,
                            "op step calls cost method %r which is not a "
                            "method of the cost model (%s)"
                            % (step.cost, config.cov001_costs_module),
                        )
        for name, lineno in fields:
            if name not in referenced:
                yield costs_module.violation(
                    lineno,
                    self.code,
                    "cost field %r is unreachable from every extracted path "
                    "spec — no op step charges it; wire it into a costed "
                    "step or suppress with the consuming-helper reason" % name,
                )
