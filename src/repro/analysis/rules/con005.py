"""CON005: non-reentrant or blocking work in a signal handler.

A Python signal handler runs between two arbitrary bytecodes of
whatever the main thread was doing — possibly *inside* a critical
section of the very lock the handler would take (the single-thread
deadlock ``signal`` docs warn about), or inside an fsync the handler
would re-enter.  The only robust handler body is a flag flip: set an
``Event``, store a boolean, wake the loop.  This rule flags, in any
function the context propagation marks ``signal``:

* direct blocking effects (sleep, fsync, ``open``, socket I/O, ...);
* lock acquisition (``with <lock>``), the deadlock case;
* precisely-resolved calls whose may-block closure is non-empty.

``loop.add_signal_handler(sig, stop.set)``-style flag flips resolve to
nothing in scope and stay silent by construction.
"""

from repro.analysis.conc import build_model
from repro.analysis.conc.contexts import SIGNAL
from repro.analysis.rules.base import Rule


class SignalSafety(Rule):
    code = "CON005"
    name = "signal-safety"
    description = "blocking or lock-taking work in a signal handler"
    tier = "conc"

    def check(self, project, config):
        model = build_model(project, config)
        prefixes = config.paths_for(self.code)
        for func in model.functions:
            if not func.module.in_any(prefixes):
                continue
            if SIGNAL not in model.contexts[func]:
                continue
            chain = model.chain(func, SIGNAL)
            for effect in model.blocking_effects(func, self.code):
                yield func.module.violation(
                    effect.node, self.code,
                    "blocking call %s in a signal handler (%s); handlers "
                    "must only flip flags or set events" % (effect.label, chain),
                )
            for region in func.regions:
                yield func.module.violation(
                    region.node, self.code,
                    "lock %s acquired in a signal handler (%s): the handler "
                    "can interrupt its own holder and deadlock a single "
                    "thread" % (region.token.display, chain),
                )
            for site in func.calls:
                if site.fuzzy or site.awaited:
                    continue
                for target in site.targets:
                    reached = model.may_block(target, self.code)
                    if reached is None:
                        continue
                    effect, owner = reached
                    yield func.module.violation(
                        site.node, self.code,
                        "signal handler (%s) calls %s, which reaches "
                        "blocking %s (%s:%d)" % (
                            chain, target.qualname, effect.label,
                            owner.module.relpath, effect.node.lineno,
                        ),
                    )
                    break
