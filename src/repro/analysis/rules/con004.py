"""CON004: lock-order cycle across the module lock-order graph.

Acquisition-order edges come from two places: a ``with`` on lock B
lexically nested inside a ``with`` on lock A (A -> B), and a ``with``
on B inside a function whose caller-held entry set contains A (the
interprocedural case the entry-held fixpoint exists for).  A cycle in
the resulting directed graph means two call stacks can acquire the same
pair of locks in opposite orders — the textbook ABBA deadlock.  Every
acquisition site on a cyclic edge is reported, so both halves of the
inversion show up in one lint run.
"""

from repro.analysis.conc import build_model
from repro.analysis.rules.base import Rule


class LockOrderCycle(Rule):
    code = "CON004"
    name = "lock-order-cycle"
    description = "lock-order cycle (ABBA deadlock) in the lock-order graph"
    tier = "conc"

    def check(self, project, config):
        model = build_model(project, config)
        prefixes = config.paths_for(self.code)
        edges = {}  # (outer, inner) -> [(func, node)]
        for func in model.functions:
            for order in func.lock_orders:
                edges.setdefault((order.outer, order.inner), []).append(
                    (func, order.node)
                )
            entry = model.entry_held[func]
            for region in func.regions:
                for held in entry:
                    if held != region.token:
                        edges.setdefault((held, region.token), []).append(
                            (func, region.node)
                        )
        graph = {}
        for outer, inner in edges:
            graph.setdefault(outer, set()).add(inner)
        seen = set()
        for (outer, inner), sites in sorted(
            edges.items(), key=lambda item: (item[0][0].display, item[0][1].display)
        ):
            if outer == inner or not _reaches(graph, inner, outer):
                continue
            for func, node in sites:
                if not func.module.in_any(prefixes):
                    continue
                key = (func.module.relpath, node.lineno, outer, inner)
                if key in seen:
                    continue
                seen.add(key)
                yield func.module.violation(
                    node, self.code,
                    "lock-order cycle: %s is acquired while holding %s here, "
                    "but the opposite order also exists — two stacks can "
                    "deadlock ABBA" % (inner.display, outer.display),
                )


def _reaches(graph, start, goal):
    stack, visited = [start], set()
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        if node in visited:
            continue
        visited.add(node)
        stack.extend(graph.get(node, ()))
    return False
