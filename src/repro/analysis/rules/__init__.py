"""Rule registry."""

from repro.analysis.rules.api001 import RawMagicAddress
from repro.analysis.rules.base import Rule
from repro.analysis.rules.cal001 import CalibrationLeakage
from repro.analysis.rules.con001 import LoopBlocking
from repro.analysis.rules.con002 import SharedGuard
from repro.analysis.rules.con003 import LockHold
from repro.analysis.rules.con004 import LockOrderCycle
from repro.analysis.rules.con005 import SignalSafety
from repro.analysis.rules.cov001 import CostCoverage
from repro.analysis.rules.des001 import DroppedGenerator
from repro.analysis.rules.det001 import Determinism
from repro.analysis.rules.flw001 import BranchCostDrift
from repro.analysis.rules.spec001 import SpecDrift
from repro.analysis.rules.spec002 import SpecCostConsistency
from repro.analysis.rules.spec003 import SkeletonSymmetry
from repro.analysis.rules.sym001 import PathSymmetry
from repro.analysis.rules.sym002 import TrapPairing

#: every registered rule, in reporting order (flow, spec, then conc tier)
ALL_RULES = (
    CalibrationLeakage(),
    Determinism(),
    DroppedGenerator(),
    CostCoverage(),
    RawMagicAddress(),
    PathSymmetry(),
    TrapPairing(),
    BranchCostDrift(),
    SpecDrift(),
    SpecCostConsistency(),
    SkeletonSymmetry(),
    LoopBlocking(),
    SharedGuard(),
    LockHold(),
    LockOrderCycle(),
    SignalSafety(),
)

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}


def active_rules(config, select=None, flow=False, spec=False, conc=False):
    """Resolve the rule set.

    An explicit ``select`` (CLI) is exact: it runs precisely those rules,
    flow, spec and conc tiers included.  Otherwise the config's ``select``
    (or the full registry) applies, with flow-tier rules filtered out
    unless ``flow=True``, spec-tier rules unless ``spec=True``, and
    conc-tier rules unless ``conc=True`` — that is what lets
    ``[tool.repro-lint]`` list every code while plain ``repro lint``
    stays cheap.
    """
    if select is not None:
        return tuple(_resolve(code) for code in select)
    if config.select is None:
        rules = ALL_RULES
    else:
        rules = tuple(_resolve(code) for code in config.select)
    if not flow:
        rules = tuple(rule for rule in rules if rule.tier != "flow")
    if not spec:
        rules = tuple(rule for rule in rules if rule.tier != "spec")
    if not conc:
        rules = tuple(rule for rule in rules if rule.tier != "conc")
    return rules


def expand_codes(entries):
    """Resolve codes *or prefixes* (``"SPEC"`` -> all SPEC rules).

    Raises ``KeyError`` for an entry matching nothing — a silently
    ignored typo in ``--ignore`` would un-suppress nothing and mask the
    intent.
    """
    expanded = set()
    for entry in entries:
        token = entry.strip().upper()
        matches = {
            code for code in RULES_BY_CODE if code == token or code.startswith(token)
        }
        if not matches:
            raise KeyError(
                "unknown lint rule or prefix %r (known: %s)"
                % (entry, ", ".join(sorted(RULES_BY_CODE)))
            )
        expanded.update(matches)
    return expanded


def _resolve(code):
    code = code.upper()
    if code not in RULES_BY_CODE:
        raise KeyError(
            "unknown lint rule %r (known: %s)" % (code, ", ".join(sorted(RULES_BY_CODE)))
        )
    return RULES_BY_CODE[code]


__all__ = ["ALL_RULES", "RULES_BY_CODE", "Rule", "active_rules", "expand_codes"]
