"""Rule registry."""

from repro.analysis.rules.api001 import RawMagicAddress
from repro.analysis.rules.base import Rule
from repro.analysis.rules.cal001 import CalibrationLeakage
from repro.analysis.rules.cov001 import CostCoverage
from repro.analysis.rules.des001 import DroppedGenerator
from repro.analysis.rules.det001 import Determinism

#: every registered rule, in reporting order
ALL_RULES = (
    CalibrationLeakage(),
    Determinism(),
    DroppedGenerator(),
    CostCoverage(),
    RawMagicAddress(),
)

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}


def active_rules(config, select=None):
    """Resolve the rule set: CLI ``select`` overrides config ``select``."""
    codes = select if select is not None else config.select
    if codes is None:
        return ALL_RULES
    resolved = []
    for code in codes:
        code = code.upper()
        if code not in RULES_BY_CODE:
            raise KeyError("unknown lint rule %r (known: %s)" % (code, ", ".join(sorted(RULES_BY_CODE))))
        resolved.append(RULES_BY_CODE[code])
    return tuple(resolved)


__all__ = ["ALL_RULES", "RULES_BY_CODE", "Rule", "active_rules"]
