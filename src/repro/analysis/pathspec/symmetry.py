"""Cross-hypervisor skeleton groups: Table III's claim, made checkable.

The paper's Table III shows KVM and Xen ARM world switches as one
trap → save → restore → eret skeleton whose members differ only in a
small set of *named* extra steps (split-mode double trap, Xen's credit
scheduler, VHE's collapsed register sweep).  Each :class:`Group` below
declares one such skeleton: which function compositions share it, which
cost-step differences are allowed, and the paper citation that licenses
each difference.  SPEC003 recomputes the deltas from the extracted
specs and flags anything the declarations don't explain.

A member is a *composition*: the concatenated primary paths of its
ordered function list (e.g. KVM's exit half followed by its enter half
equals one full switch, comparable against Xen's single
``_domain_switch``).  The signature compared is the ordered save/restore
register-class token sweep plus the multiset of cost-model references;
step order inside the skeleton is the save/restore sweep order, which is
what Table III fixes.
"""

import collections

Member = collections.namedtuple("Member", "name ids")
Difference = collections.namedtuple("Difference", "member cost count cite")

#: declared register-class sweeps for groups whose members legitimately
#: move different state (split vs VHE); None means all members must
#: agree with the first (reference) member.
Classes = collections.namedtuple("Classes", "save restore cite")


class Group:
    __slots__ = ("name", "cite", "members", "differences", "classes")

    def __init__(self, name, cite, members, differences, classes=None):
        self.name = name
        self.cite = cite
        self.members = members
        self.differences = differences
        self.classes = classes  # {member name: Classes} or None


GROUPS = (
    Group(
        name="arm-full-vm-switch",
        cite="Table III: full ARM VM switch skeleton",
        members=(
            Member(
                "kvm-split",
                (
                    "hv/kvm/world_switch.py::split_mode_exit",
                    "hv/kvm/world_switch.py::split_mode_enter",
                ),
            ),
            Member("xen", ("hv/xen/xen.py::XenHypervisor._domain_switch",)),
        ),
        differences=(
            Difference(
                "kvm-split",
                "trap_to_el2",
                1,
                "split-mode KVM traps to EL2 twice per switch (Section III)",
            ),
            Difference(
                "kvm-split",
                "eret_to_el1",
                1,
                "split-mode KVM erets twice per switch (Section III)",
            ),
            Difference(
                "kvm-split",
                "virt_feature_toggle",
                2,
                "Stage-2/EL2 feature toggle each direction (Table III, EL2 config rows)",
            ),
            Difference(
                "kvm-split",
                "kvm_exit_dispatch",
                1,
                "Type-2 host run-loop dispatch on exit (Section II, Figure 1)",
            ),
            Difference(
                "xen",
                "xen_sched_pick",
                1,
                "Xen credit scheduler picks the next domain in the hypervisor (Section II)",
            ),
            Difference(
                "xen",
                "xen_ctx_extra",
                1,
                "Xen per-domain context beyond the register file (Section IV)",
            ),
        ),
    ),
    Group(
        name="arm-light-trap",
        cite="Table III: hypercall-style light trap skeleton",
        members=(
            Member(
                "kvm-vhe",
                (
                    "hv/kvm/world_switch.py::vhe_exit",
                    "hv/kvm/world_switch.py::vhe_enter",
                ),
            ),
            Member(
                "xen",
                (
                    "hv/xen/xen.py::XenHypervisor._xen_entry",
                    "hv/xen/xen.py::XenHypervisor._xen_return",
                ),
            ),
        ),
        differences=(
            Difference(
                "kvm-vhe",
                "kvm_vhe_dispatch",
                1,
                "KVM run-loop dispatch survives VHE (Section VI)",
            ),
            Difference(
                "kvm-vhe",
                "virq_inject_lr",
                1,
                "KVM injects pending virtual interrupts on re-entry (Section III)",
            ),
            Difference(
                "xen",
                "xen_dispatch",
                1,
                "Xen trap dispatch runs inside the hypervisor (Section IV)",
            ),
        ),
    ),
    Group(
        name="kvm-split-vs-vhe",
        cite="Section VI: VHE collapses the split-mode switch",
        members=(
            Member(
                "split",
                (
                    "hv/kvm/world_switch.py::split_mode_exit",
                    "hv/kvm/world_switch.py::split_mode_enter",
                ),
            ),
            Member(
                "vhe",
                (
                    "hv/kvm/world_switch.py::vhe_exit",
                    "hv/kvm/world_switch.py::vhe_enter",
                ),
            ),
        ),
        differences=(
            Difference(
                "split",
                "trap_to_el2",
                1,
                "split mode traps twice; VHE traps once (Section VI)",
            ),
            Difference(
                "split",
                "eret_to_el1",
                1,
                "split mode erets twice; VHE erets once (Section VI)",
            ),
            Difference(
                "split",
                "virt_feature_toggle",
                2,
                "VHE never toggles EL2 features on the switch path (Section VI)",
            ),
            Difference(
                "split",
                "save",
                1,
                "split mode sweeps the full register file eagerly (Table III)",
            ),
            Difference(
                "split",
                "restore",
                1,
                "split mode restores the full register file eagerly (Table III)",
            ),
            Difference(
                "split",
                "kvm_exit_dispatch",
                1,
                "split-mode exit dispatches through the host run loop (Section II)",
            ),
            Difference(
                "vhe",
                "gp_save_light",
                1,
                "VHE saves only the light GP set on the hot path (Section VI)",
            ),
            Difference(
                "vhe",
                "gp_restore_light",
                1,
                "VHE restores only the light GP set on the hot path (Section VI)",
            ),
            Difference(
                "vhe",
                "kvm_vhe_dispatch",
                1,
                "VHE dispatches in-kernel without a world switch (Section VI)",
            ),
        ),
        classes={
            "split": Classes(
                save=("ALL_ARM_CLASSES",),
                restore=("ALL_ARM_CLASSES",),
                cite="Table III: split mode moves every register class",
            ),
            "vhe": Classes(
                save=("gp_light",),
                restore=("gp_light",),
                cite="Section VI: VHE defers all but the light GP set",
            ),
        },
    ),
)


def _signature(specs, primary_path):
    """(ordered save tokens, ordered restore tokens, cost multiset) of a
    member composition."""
    steps = []
    for spec in specs:
        steps.extend(primary_path(spec).steps)
    saves = tuple(
        step.reg_class
        for step in steps
        if step.kind == "op" and step.category == "save"
    )
    restores = tuple(
        step.reg_class
        for step in steps
        if step.kind == "op" and step.category == "restore"
    )
    costs = collections.Counter(
        step.cost
        for step in steps
        if step.kind == "op"
        and step.cost
        and step.cost_kind in ("field", "table", "method")
    )
    return saves, restores, costs


def _fmt_counter(counter):
    return ", ".join(
        "%s x%d" % (name, count) for name, count in sorted(counter.items())
    )


def _fmt_classes(tokens):
    return "(%s)" % ", ".join(str(token) for token in tokens)


def evaluate(specs_by_id, groups=GROUPS):
    """Yield ``(anchor_spec, message)`` pairs for every skeleton break.

    A group is only evaluated when *every* member function is present in
    the extraction (partial trees — fixtures, subset scans — skip it).
    """
    from repro.analysis.pathspec.extract import primary_path

    for group in groups:
        member_specs = {}
        complete = True
        for member in group.members:
            specs = [specs_by_id.get(spec_id) for spec_id in member.ids]
            if any(spec is None or not spec.paths for spec in specs):
                complete = False
                break
            member_specs[member.name] = specs
        if not complete:
            continue

        signatures = {
            member.name: _signature(member_specs[member.name], primary_path)
            for member in group.members
        }
        reference = group.members[0]
        ref_saves, ref_restores, ref_costs = signatures[reference.name]

        for member in group.members:
            saves, restores, costs = signatures[member.name]
            anchor = member_specs[member.name][0]

            if group.classes is not None:
                declared = group.classes[member.name]
                if saves != tuple(declared.save) or restores != tuple(
                    declared.restore
                ):
                    yield anchor, (
                        "skeleton group '%s': member '%s' sweeps save=%s "
                        "restore=%s but declares save=%s restore=%s [%s]"
                        % (
                            group.name,
                            member.name,
                            _fmt_classes(saves),
                            _fmt_classes(restores),
                            _fmt_classes(declared.save),
                            _fmt_classes(declared.restore),
                            declared.cite,
                        )
                    )
            elif member is not reference and (
                saves != ref_saves or restores != ref_restores
            ):
                yield anchor, (
                    "skeleton group '%s': member '%s' sweeps save=%s "
                    "restore=%s but reference '%s' sweeps save=%s restore=%s "
                    "— declare the difference with a paper citation or fix "
                    "the asymmetry [%s]"
                    % (
                        group.name,
                        member.name,
                        _fmt_classes(saves),
                        _fmt_classes(restores),
                        reference.name,
                        _fmt_classes(ref_saves),
                        _fmt_classes(ref_restores),
                        group.cite,
                    )
                )

            if member is reference:
                continue
            extra_here = costs - ref_costs
            extra_ref = ref_costs - costs
            declared_here = collections.Counter(
                {
                    diff.cost: diff.count
                    for diff in group.differences
                    if diff.member == member.name
                }
            )
            declared_ref = collections.Counter(
                {
                    diff.cost: diff.count
                    for diff in group.differences
                    if diff.member == reference.name
                }
            )
            if extra_here != declared_here or extra_ref != declared_ref:
                unexplained = (
                    (extra_here - declared_here)
                    + (declared_here - extra_here)
                    + (extra_ref - declared_ref)
                    + (declared_ref - extra_ref)
                )
                yield anchor, (
                    "skeleton group '%s': member '%s' cost deltas vs '%s' do "
                    "not match the declared differences (got +[%s] -[%s], "
                    "declared +[%s] -[%s]; unexplained: %s) [%s]"
                    % (
                        group.name,
                        member.name,
                        reference.name,
                        _fmt_counter(extra_here),
                        _fmt_counter(extra_ref),
                        _fmt_counter(declared_here),
                        _fmt_counter(declared_ref),
                        _fmt_counter(unexplained) or "-",
                        group.cite,
                    )
                )
