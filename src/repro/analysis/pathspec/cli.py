"""``python -m repro spec`` — extract, diff and show path specs.

Usage:
    python -m repro spec extract [paths...]      # (re)write specs/*.json
    python -m repro spec diff [paths...]         # compare code vs committed
    python -m repro spec show [--id SUBSTR] [paths...]

``extract`` writes the golden documents the SPEC001 drift gate compares
against; CI runs it and fails if the working tree dirties ``specs/``.
``diff`` exits 1 when the committed specs disagree with the code.
Exit status: 0 ok, 1 drift (diff only), 2 bad invocation.
"""

import argparse
import os
import sys

from repro.analysis.config import LintConfig
from repro.analysis.engine import discover
from repro.analysis.pathspec.extract import (
    build_documents,
    extract_tree,
    load_committed,
    render_document,
    resolve_spec_dir,
)


def _default_path():
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro spec",
        description="Extract, diff and inspect declarative world-switch path specs.",
    )
    parser.add_argument("action", choices=("extract", "diff", "show"))
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to extract from (default: the repro package)",
    )
    parser.add_argument(
        "--spec-dir", metavar="DIR",
        help="directory of the committed golden specs "
             "(default: configured spec-dir, else <first scan root>/specs)",
    )
    parser.add_argument(
        "--id", metavar="SUBSTRING", default=None,
        help="show: only specs whose id contains SUBSTRING",
    )
    parser.add_argument(
        "--config", metavar="PYPROJECT",
        help="pyproject.toml with a [tool.repro-lint] block "
             "(default: discovered upward from the first path)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore any pyproject.toml; use built-in defaults",
    )
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    paths = args.paths or [_default_path()]
    for path in paths:
        if not os.path.exists(path):
            print("repro spec: no such path: %s" % path, file=sys.stderr)
            return 2
    if args.no_config:
        config = LintConfig()
    elif args.config:
        config = LintConfig.load(args.config)
    else:
        config = LintConfig.discover(paths[0])
    project, errors = discover(paths)
    if errors:
        for error in errors:
            print("repro spec: %s" % error.format(), file=sys.stderr)
        return 2
    specs = extract_tree(project, config)
    if args.spec_dir:
        spec_dir = resolve_spec_dir(
            LintConfig(spec_dir=args.spec_dir), project
        )
    else:
        spec_dir = resolve_spec_dir(config, project)

    if args.action == "extract":
        return _extract(specs, spec_dir)
    if args.action == "diff":
        return _diff(specs, spec_dir)
    return _show(specs, args.id)


def _extract(specs, spec_dir):
    documents = build_documents(specs)
    spec_dir.mkdir(parents=True, exist_ok=True)
    total = 0
    for group in sorted(documents):
        path = spec_dir / (group + ".json")
        path.write_text(render_document(documents[group]), encoding="utf-8")
        count = len(documents[group]["specs"])
        total += count
        print("wrote %s (%d specs)" % (path, count))
    if not documents:
        print("no stepped functions in scope; nothing written")
    else:
        print("%d spec(s) across %d group(s)" % (total, len(documents)))
    return 0


def _diff(specs, spec_dir):
    committed, _sources, problems = load_committed(spec_dir)
    drifted = []
    for path, message in problems:
        drifted.append("malformed  %s: %s" % (path, message))
    matched = set()
    for spec in sorted(specs, key=lambda s: s.spec_id):
        have = committed.get(spec.spec_id)
        if have is None:
            drifted.append("missing    %s" % spec.spec_id)
            continue
        matched.add(spec.spec_id)
        if have != spec.serialize():
            drifted.append("drifted    %s" % spec.spec_id)
    for spec_id in sorted(set(committed) - matched):
        drifted.append("stale      %s" % spec_id)
    for line in drifted:
        print(line)
    if drifted:
        print(
            "%d difference(s) vs %s — run `python -m repro spec extract`"
            % (len(drifted), spec_dir)
        )
        return 1
    print("specs up to date (%d function(s) vs %s)" % (len(specs), spec_dir))
    return 0


def _show(specs, id_filter):
    shown = 0
    for spec in sorted(specs, key=lambda s: s.spec_id):
        if id_filter and id_filter not in spec.spec_id:
            continue
        shown += 1
        print(
            "%s  (%d path(s)%s)"
            % (spec.spec_id, len(spec.paths), ", truncated" if spec.truncated else "")
        )
        for index, path_doc in enumerate(spec.serialize()["paths"]):
            print("  path %d [%s]:" % (index, path_doc["terminator"]))
            for step in path_doc["steps"]:
                if "arch" in step:
                    print("    ~ %s" % step["arch"])
                    continue
                detail = "%s (%s)" % (step["cost"], step["cost_kind"])
                if step["cost"] is None:
                    detail = step["cost_kind"]
                reg = (
                    "  class=%s" % step["class"] if "class" in step else ""
                )
                print(
                    "    op %-24s %-10s cost=%s%s"
                    % (step["op"], step["category"], detail, reg)
                )
    if not shown:
        print("no specs matched")
    return 0


if __name__ == "__main__":
    sys.exit(main())
