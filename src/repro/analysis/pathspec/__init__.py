"""PathSpec: statically extracted world-switch path specifications.

The paper's Tables II/III treat every hypervisor transition as the same
trap → save → restore → eret skeleton with per-step costs.  This package
derives that skeleton *from the code*: it walks the flow CFG
(:mod:`repro.analysis.flow.cfg`) and the step extraction
(:mod:`repro.analysis.flow.effects`) over the hypervisor models and
emits each function's enumerated paths as a declarative IR — ordered
steps, register-class tokens, cost-field references into
:mod:`repro.hw.costs`, and escape edges.

The extracted specs are committed as golden JSON under ``specs/``
(schema ``repro-pathspec/1``) and checked by the ``--spec`` lint tier:

* SPEC001 — code ↔ committed-spec drift (golden-file semantics),
* SPEC002 — spec ↔ cost-table consistency in both directions,
* SPEC003 — cross-hypervisor/VHE skeleton symmetry per Table III.
"""

from repro.analysis.pathspec.extract import (  # noqa: F401
    SCHEMA,
    FunctionSpec,
    PathTrace,
    build_documents,
    extract_tree,
    group_for,
    load_committed,
    module_specs,
    primary_path,
    render_document,
    resolve_spec_dir,
)
