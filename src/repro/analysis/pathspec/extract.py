"""Whole-program PathSpec extraction over the hypervisor models.

One :class:`FunctionSpec` per function that touches the machine (at
least one op or architectural step anywhere in its body): every
enumerated CFG path is kept in memory as a :class:`PathTrace` (steps,
terminator, escape line) for the flow rules, and serialized — line
numbers stripped, structurally identical paths deduplicated — for the
committed golden JSON under ``specs/``.

Register-class tokens are canonicalized through module-level name
aliases (``ARM_SWITCH_ORDER = ALL_ARM_CLASSES``) so a sweep keeps the
same token no matter which local alias the module loops over.
"""

import json
import pathlib

from repro.analysis.flow.cfg import build_cfg
from repro.analysis.flow.effects import Extractor, Step

SCHEMA = "repro-pathspec/1"

#: serialized paths per function are deduplicated then capped; the full
#: enumeration stays available in memory for the flow rules.
MAX_SERIALIZED_PATHS = 64

_CACHE_ATTR = "_pathspec_cache"


class PathTrace:
    """One enumerated path: its steps plus how it leaves the function."""

    __slots__ = ("steps", "terminator", "escape_line")

    def __init__(self, steps, terminator, escape_line):
        self.steps = steps
        self.terminator = terminator
        self.escape_line = escape_line


class FunctionSpec:
    """Extracted paths of one function, addressable by a stable id."""

    __slots__ = ("module", "qualname", "func", "paths", "truncated", "all_steps")

    def __init__(self, module, qualname, func, paths, truncated, all_steps):
        self.module = module
        self.qualname = qualname
        self.func = func
        self.paths = paths
        self.truncated = truncated
        #: steps of every CFG statement node, reachable or not
        self.all_steps = all_steps

    @property
    def spec_id(self):
        return "%s::%s" % (self.module.relpath, self.qualname)

    def serialize(self):
        """The committed JSON form: lines stripped, paths deduplicated
        in first-seen order and capped at :data:`MAX_SERIALIZED_PATHS`."""
        seen = set()
        paths = []
        truncated = self.truncated
        for trace in self.paths:
            doc = {
                "terminator": trace.terminator,
                "steps": [serialize_step(step) for step in trace.steps],
            }
            key = json.dumps(doc, sort_keys=True)
            if key in seen:
                continue
            if len(paths) >= MAX_SERIALIZED_PATHS:
                truncated = True
                break
            seen.add(key)
            paths.append(doc)
        return {
            "id": self.spec_id,
            "module": self.module.relpath,
            "function": self.qualname,
            "truncated": truncated,
            "paths": paths,
        }


def serialize_step(step):
    if step.kind == "arch":
        return {"arch": step.arch}
    doc = {
        "op": step.label,
        "category": step.category,
        "cost": step.cost,
        "cost_kind": step.cost_kind,
    }
    if step.reg_class is not None:
        doc["class"] = step.reg_class
    return doc


def primary_path(spec):
    """The representative path: the first enumerated path carrying the
    most steps — on the in-tree models, the all-branches-taken switch."""
    best = None
    for trace in spec.paths:
        if best is None or len(trace.steps) > len(best.steps):
            best = trace
    return best


def _module_name_aliases(tree):
    """Top-level ``NAME = OTHER_NAME`` assigns, resolved transitively."""
    import ast

    raw = {}
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Name)
        ):
            raw[stmt.targets[0].id] = stmt.value.id
    aliases = {}
    for name in raw:
        target, seen = name, set()
        while target in raw and target not in seen:
            seen.add(target)
            target = raw[target]
        aliases[name] = target
    return aliases


def _canonical_step(step, aliases):
    if step.kind != "op" or step.reg_class not in aliases:
        return step
    return Step(
        "op",
        label=step.label,
        category=step.category,
        cost=step.cost,
        cost_kind=step.cost_kind,
        reg_class=aliases[step.reg_class],
        line=step.line,
    )


def _iter_qualified_functions(tree):
    """Every function with its class-qualified name, in document order."""
    import ast

    def walk(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield prefix + child.name, child
                yield from walk(child, prefix + child.name + ".")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, prefix + child.name + ".")
            elif not isinstance(child, ast.Lambda):
                yield from walk(child, prefix)

    yield from walk(tree, "")


def module_specs(module, max_paths=2000):
    """Every function's :class:`FunctionSpec` for one source module.

    Results are memoized on the module object so the three SPEC rules
    and the rewired SYM rules share one extraction per run.
    """
    cache = getattr(module, _CACHE_ATTR, None)
    if cache is not None and cache[0] == max_paths:
        return cache[1]
    aliases = _module_name_aliases(module.tree)
    specs = []
    for qualname, func in _iter_qualified_functions(module.tree):
        extractor = Extractor(func)
        cfg = build_cfg(func)
        all_steps = []
        for node in cfg.nodes:
            if node.kind == "stmt":
                all_steps.extend(
                    _canonical_step(step, aliases)
                    for step in extractor.steps(node.stmt)
                )
        paths = []
        for path in cfg.iter_paths(max_paths):
            steps = []
            for node in path.nodes:
                steps.extend(
                    _canonical_step(step, aliases)
                    for step in extractor.steps(node.stmt)
                )
            paths.append(PathTrace(tuple(steps), path.terminator, path.escape_line))
        specs.append(
            FunctionSpec(
                module, qualname, func, tuple(paths), cfg.truncated, tuple(all_steps)
            )
        )
    setattr(module, _CACHE_ATTR, (max_paths, specs))
    return specs


def extract_tree(project, config):
    """Specs for every stepped function in the SPEC-scoped modules."""
    prefixes = config.paths_for("SPEC001")
    specs = []
    for module in project.in_paths(prefixes):
        specs.extend(
            spec
            for spec in module_specs(module, config.flow_max_paths)
            if spec.all_steps
        )
    return specs


def group_for(relpath):
    """Which ``specs/<group>.json`` document a module's specs land in."""
    if relpath.startswith("hv/kvm/"):
        return "kvm"
    if relpath.startswith("hv/xen/"):
        return "xen"
    return relpath.split("/", 1)[0] or "root"


def build_documents(specs):
    """``{group: document}`` — specs sorted by id inside each group."""
    documents = {}
    for spec in sorted(specs, key=lambda s: s.spec_id):
        group = group_for(spec.module.relpath)
        document = documents.setdefault(
            group, {"schema": SCHEMA, "group": group, "specs": []}
        )
        document["specs"].append(spec.serialize())
    return documents


def render_document(document):
    """The canonical byte form a spec document is committed in."""
    return json.dumps(document, indent=1, sort_keys=True) + "\n"


def resolve_spec_dir(config, project):
    """Where the committed golden specs live for this run."""
    if getattr(config, "spec_dir", None):
        return pathlib.Path(config.spec_dir)
    for root in getattr(project, "roots", ()):
        return pathlib.Path(root) / "specs"
    return pathlib.Path("specs")


def load_committed(spec_dir):
    """Committed specs indexed by id.

    Returns ``(specs, sources, problems)`` — ``sources`` maps each id to
    the JSON file it came from; ``problems`` is a list of
    ``(path, message)`` pairs for unreadable or malformed files.
    """
    committed, sources, problems = {}, {}, []
    spec_dir = pathlib.Path(spec_dir)
    if not spec_dir.is_dir():
        return committed, sources, problems
    for path in sorted(spec_dir.glob("*.json")):
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            problems.append((path, "cannot load spec document: %s" % exc))
            continue
        specs = document.get("specs") if isinstance(document, dict) else None
        if document is None or not isinstance(specs, list):
            problems.append((path, "spec document has no 'specs' list"))
            continue
        if document.get("schema") != SCHEMA:
            problems.append(
                (
                    path,
                    "spec document schema is %r, expected %r"
                    % (document.get("schema"), SCHEMA),
                )
            )
        for spec in specs:
            if not isinstance(spec, dict) or not isinstance(spec.get("id"), str):
                problems.append((path, "spec entry without a string 'id'"))
                continue
            committed[spec["id"]] = spec
            sources[spec["id"]] = path
    return committed, sources, problems
