"""Lint configuration, optionally sourced from ``[tool.repro-lint]``.

Defaults are built in so the linter runs with no configuration at all
(fixture tests rely on this).  A ``pyproject.toml`` can scope rules to
subsystem paths and tune thresholds:

.. code-block:: toml

    [tool.repro-lint]
    select = ["CAL001", "DET001"]

    [tool.repro-lint.paths]
    CAL001 = ["hv", "os", "core"]

    [tool.repro-lint.options]
    cal001-min-literal = 50

``tomllib`` only exists on Python 3.11+; on older interpreters a minimal
fallback parser reads just the ``[tool.repro-lint*]`` sections, which must
then stay within the simple ``key = int | "str" | [list-of-strings]``
subset (the block in this repository does).
"""

import dataclasses
import pathlib
import re

try:
    import tomllib as _toml
except ImportError:  # Python <= 3.10
    _toml = None

#: default subsystem scoping per rule; () = the whole scanned tree.
DEFAULT_RULE_PATHS = {
    "CAL001": ("hv", "os", "core"),
    "DET001": ("sim", "hw", "os", "hv", "core"),
    "DES001": (),
    "COV001": ("hv", "os", "hw"),
    "API001": ("hv",),
    # flow tier: unscoped by default so fixture trees are fully checked;
    # the repository's pyproject narrows these to the model layers.
    "SYM001": (),
    "SYM002": (),
    "FLW001": (),
    # spec tier: the hypervisor models are what the committed path specs
    # describe, in fixture trees and the real package alike.
    "SPEC001": ("hv",),
    "SPEC002": ("hv",),
    "SPEC003": ("hv",),
    # conc tier: unscoped by default (fixture trees live outside the
    # package layout); the repository's pyproject narrows these to the
    # concurrent layers service/, runner/, sim/.
    "CON001": (),
    "CON002": (),
    "CON003": (),
    "CON004": (),
    "CON005": (),
}


@dataclasses.dataclass
class LintConfig:
    """Resolved configuration handed to every rule."""

    #: rule codes to run (None = every registered rule)
    select: tuple = None
    #: per-rule path scoping, package-relative prefixes
    rule_paths: dict = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_RULE_PATHS)
    )
    #: CAL001: smallest literal considered "cycle scale"
    cal001_min_literal: int = 50
    #: CAL001: files where paper Table III primitives are allowed
    cal001_table3_allow: tuple = ("hw/costs.py",)
    #: API001: smallest hex literal considered an address/page constant
    api001_min_address: int = 0x1000
    #: DET001: files exempt from the randomness ban
    det001_allow: tuple = ("sim/rng.py",)
    #: COV001: package-relative path of the cost-model module
    cov001_costs_module: str = "hw/costs.py"
    #: flow rules: acyclic-path budget per function (beyond it, the rest
    #: of the function's paths go unchecked rather than hanging the lint)
    flow_max_paths: int = 2000
    #: SPEC001: directory of the committed golden path specs; None falls
    #: back to ``<first scan root>/specs``.  Relative values in a
    #: pyproject resolve against the pyproject's own directory.
    spec_dir: str = None

    def paths_for(self, rule_code):
        return tuple(self.rule_paths.get(rule_code, ()))

    @classmethod
    def load(cls, pyproject_path):
        """Build a config from a ``pyproject.toml`` (missing block = defaults)."""
        text = pathlib.Path(pyproject_path).read_text(encoding="utf-8")
        data = _parse_toml(text)
        section = data.get("tool", {}).get("repro-lint", {})
        config = cls()
        if "select" in section:
            config.select = tuple(str(code).upper() for code in section["select"])
        for code, prefixes in section.get("paths", {}).items():
            config.rule_paths[str(code).upper()] = tuple(prefixes)
        options = section.get("options", {})
        for key, value in options.items():
            attr = key.replace("-", "_")
            if hasattr(config, attr):
                current = getattr(config, attr)
                setattr(config, attr, tuple(value) if isinstance(current, tuple) else value)
        if config.spec_dir is not None:
            spec_path = pathlib.Path(config.spec_dir)
            if not spec_path.is_absolute():
                spec_path = pathlib.Path(pyproject_path).resolve().parent / spec_path
            config.spec_dir = str(spec_path)
        return config

    @classmethod
    def discover(cls, start_path):
        """Walk upward from ``start_path`` looking for a pyproject.toml."""
        current = pathlib.Path(start_path).resolve()
        if current.is_file():
            current = current.parent
        for candidate in [current, *current.parents]:
            pyproject = candidate / "pyproject.toml"
            if pyproject.exists():
                return cls.load(pyproject)
        return cls()


def _parse_toml(text):
    if _toml is not None:
        return _toml.loads(text)
    return _parse_toml_minimal(text)


_SECTION_RE = re.compile(r"^\[([^\]]+)\]\s*$")
_KEYVAL_RE = re.compile(r"^([A-Za-z0-9_.-]+)\s*=\s*(.+?)\s*$")


def _parse_toml_minimal(text):
    """Tiny TOML subset: sections, ints, quoted strings, one-line lists.

    Only used on interpreters without ``tomllib``; sufficient for the
    ``[tool.repro-lint]`` block this package documents.
    """
    data = {}
    current = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        section = _SECTION_RE.match(line)
        if section:
            current = {}
            node = data
            parts = section.group(1).split(".")
            for part in parts[:-1]:
                node = node.setdefault(part.strip().strip('"'), {})
            node[parts[-1].strip().strip('"')] = current
            continue
        if current is None:
            continue
        keyval = _KEYVAL_RE.match(line)
        if keyval:
            current[keyval.group(1).strip('"')] = _parse_value(keyval.group(2))
    return data


def _parse_value(raw):
    raw = raw.strip()
    if raw.startswith("[") and raw.endswith("]"):
        inner = raw[1:-1].strip()
        if not inner:
            return []
        return [_parse_value(item) for item in _split_list(inner)]
    if raw.startswith(('"', "'")):
        return raw[1:-1]
    if raw in ("true", "false"):
        return raw == "true"
    try:
        return int(raw, 0)
    except ValueError:
        try:
            return float(raw)
        except ValueError:
            return raw


def _split_list(inner):
    items, depth, start = [], 0, 0
    for index, char in enumerate(inner):
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif char == "," and depth == 0:
            items.append(inner[start:index].strip())
            start = index + 1
    tail = inner[start:].strip()
    if tail:
        items.append(tail)
    return items
