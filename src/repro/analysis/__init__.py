"""Model-integrity static analysis for the reproduction.

The calibration discipline (DESIGN.md) — primitives live in
``repro.hw.costs``, composed results are *outputs* of executed hypervisor
paths, simulations are deterministic — is what makes the reproduction's
numbers scientifically meaningful.  This package enforces the discipline
mechanically: an AST-based linter (stdlib ``ast`` only) with a small rule
engine, per-line suppression comments, and text/JSON reporters.

Rule catalog:

* ``CAL001`` calibration leakage: cycle-scale numeric literals outside
  ``repro.hw.costs``, and any literal equal to a published Table II/III/V
  cell outside ``repro.paperdata``.
* ``DET001`` determinism: bans ``random``, wall-clock time, ``os.urandom``
  and iteration over bare sets in the model layers (only ``repro.sim.rng``
  may touch ``random``).
* ``DES001`` dropped generator: a simulation generator called as a bare
  expression statement silently simulates zero cycles.
* ``COV001`` cost coverage: every primitive in ``repro.hw.costs`` must be
  read by a composed path; references to undefined costs are errors.
* ``API001`` raw magic address: page-scale hex literals must come from
  named module-level constants.

Suppress a finding on one line with ``# repro-lint: ignore[CAL001]`` (a
comma-separated rule list, or no bracket to ignore every rule).

Run it as ``python -m repro.analysis [paths]`` or ``python -m repro lint``.
"""

from repro.analysis.engine import Project, SourceModule, Violation, run_analysis

__all__ = ["Project", "SourceModule", "Violation", "run_analysis"]
