"""Execution-context lattice and propagation.

Every function in scope is classified into the contexts that may run
it.  The lattice is a plain powerset over five context names:

* ``event-loop`` — asyncio coroutines and their sync helpers.  Seeded
  by every ``async def`` (a coroutine body can only ever execute on a
  loop) and by loop-spawn constructs (``asyncio.run``, ``create_task``,
  ``run_coroutine_threadsafe``, ``call_soon*``, ...).
* ``thread`` — ``threading.Thread(target=...)`` targets,
  ``run_in_executor`` / ``asyncio.to_thread`` offloads.
* ``pool-worker`` — executor ``submit(f, ...)`` targets and pool
  ``initializer=`` hooks.
* ``signal`` — ``signal.signal`` / ``loop.add_signal_handler`` targets.
* ``main`` — the default for anything nothing else reaches.

Propagation: contexts flow along plain call edges (a helper called from
a coroutine runs on the loop), with one exception — ``async def``
functions are *locked* to ``{event-loop}``: a sync caller touching a
coroutine function merely creates the coroutine object, it never runs
the body in its own context.  Spawn edges assign the spawned context
instead of the caller's.  Each (function, context) pair remembers the
edge that introduced it so rule messages can print a witness chain.
"""

EVENT_LOOP = "event-loop"
THREAD = "thread"
POOL = "pool-worker"
SIGNAL = "signal"
MAIN = "main"

CONTEXTS = (EVENT_LOOP, THREAD, POOL, SIGNAL, MAIN)


def propagate(functions):
    """Compute ``contexts`` and ``witness`` maps over scanned functions.

    Returns ``(contexts, witness)`` where ``contexts[func]`` is a set of
    context names and ``witness[(func, ctx)]`` is ``(parent_func, line)``
    — ``(None, seed_line)`` for seeds.
    """
    contexts = {func: set() for func in functions}
    witness = {}
    worklist = []

    def add(func, ctx, parent, line):
        if func not in contexts:
            return
        if func.is_async and ctx != EVENT_LOOP:
            return  # a coroutine body only ever runs on a loop
        if ctx in contexts[func]:
            return
        contexts[func].add(ctx)
        witness[(func, ctx)] = (parent, line)
        worklist.append(func)

    for func in functions:
        if func.is_async:
            add(func, EVENT_LOOP, None, func.node.lineno)
        for spawn in func.spawns:
            for target in spawn.targets:
                add(target, spawn.context, func, spawn.node.lineno)

    while worklist:
        func = worklist.pop()
        snapshot = tuple(contexts[func])
        for site in func.calls:
            for target in site.targets:
                for ctx in snapshot:
                    add(target, ctx, func, site.node.lineno)

    for func in functions:
        if not contexts[func]:
            contexts[func].add(MAIN)
            witness[(func, MAIN)] = (None, func.node.lineno)
    return contexts, witness


def witness_chain(witness, func, ctx, limit=6):
    """Human-readable seed->...->func chain for one (func, context)."""
    labels = [func.label]
    seen = {func}
    current = func
    while len(labels) < limit:
        parent, _line = witness.get((current, ctx), (None, 0))
        if parent is None or parent in seen:
            break
        labels.append(parent.label)
        seen.add(parent)
        current = parent
    return " <- ".join(labels)
