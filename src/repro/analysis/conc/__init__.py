"""Interprocedural concurrency analysis for the conc lint tier.

Layers (each its own module):

* :mod:`~repro.analysis.conc.callgraph` — module-level call graph with
  a documented precision ladder (precise / external / fuzzy-by-name);
* :mod:`~repro.analysis.conc.contexts` — execution-context lattice
  (event-loop, thread, pool-worker, signal, main) and propagation;
* :mod:`~repro.analysis.conc.effects` — per-function blocking / lock /
  await / write effect extraction with lexical guard inference;
* :mod:`~repro.analysis.conc.model` — assembly, entry-held-lock
  fixpoint, may-block closures, and the shared per-project cache.

The CON001–CON005 rules in :mod:`repro.analysis.rules` consume
:func:`build_model`; everything here is pure stdlib ``ast``.
"""

from repro.analysis.conc.model import ConcModel, build_model

__all__ = ["ConcModel", "build_model"]
