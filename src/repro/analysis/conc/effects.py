"""Per-function effect extraction: blocking calls, locks, awaits, writes.

One recursive pass per function (nested ``def``s are scanned as their
own functions) collects, with the lexically-held lock set at each point:

* **call sites** — resolved through :mod:`repro.analysis.conc.callgraph`;
* **spawn sites** — constructs that move a callable into another
  execution context (see :mod:`repro.analysis.conc.contexts`);
* **blocking effects** — the vocabulary below;
* **awaits** — ``await`` expressions (a call directly under ``await``
  is never blocking: the loop keeps scheduling while it waits);
* **attribute writes** — ``self.x = ...`` / ``self.x += ...`` /
  ``self.x[k] = ...`` / ``self.x.append(...)``-style mutations, the
  input to CON002's majority-lockset check;
* **lock regions and order edges** — ``with``-statement guard inference
  over recognized ``threading.Lock`` / ``asyncio.Lock`` attributes and
  module globals (bare ``.acquire()`` bookkeeping is out of scope — the
  tree uses ``with`` everywhere; DESIGN.md records the gap).

Blocking vocabulary (deliberately conservative; misses are documented
under-approximations, not bugs to paper over with suppressions):

* external calls ``time.sleep``, ``os.fsync``, ``os.system``,
  ``subprocess.run/call/check_call/check_output``,
  ``socket.create_connection``, ``select.select``, builtin ``open`` —
  including module-level / class-body alias seams
  (``_sleep = time.sleep``, ``_sleep = staticmethod(time.sleep)``);
* non-awaited method calls named ``result``, ``wait``, ``getresponse``,
  ``recv``, ``accept``, ``connect``, ``sendall`` on receivers that do
  not resolve to an in-scope function (``Future.result``,
  ``Event.wait``, sockets, HTTP connections);
* ``.join(...)`` only when the receiver's name smells like a
  thread/process/pool — ``", ".join(parts)`` must stay silent.

Lock *acquisition* is not "blocking" here: guarded sections in this
tree are short and CPU-bound, and flagging every ``with self._lock``
reachable from a coroutine would drown the tier in noise (documented
over-/under-approximation trade in DESIGN.md).
"""

import ast
import dataclasses

from repro.analysis.conc import contexts as ctx
from repro.analysis.conc.callgraph import EXTERNAL_TYPE, ExtRef, dotted

#: lock-constructor dotted names -> lock kind
LOCK_CONSTRUCTORS = {
    "threading.Lock": "threading",
    "threading.RLock": "threading",
    "threading.Condition": "threading",
    "asyncio.Lock": "asyncio",
}

#: out-of-scope callables that block the calling thread
BLOCKING_EXTERNAL = {
    "time.sleep",
    "os.fsync",
    "os.system",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
    "select.select",
    "open",
}

#: method names that block when not awaited (Future.result, Event.wait,
#: socket/HTTP round trips) — applied only to fuzzy/unresolved receivers
BLOCKING_METHODS = {
    "result", "wait", "getresponse", "recv", "accept", "connect", "sendall",
}

#: ``.join()`` blocks only on receivers named like one of these
JOIN_RECEIVER_HINTS = ("thread", "proc", "pool", "worker")

#: container mutations counted as writes for CON002
MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "clear", "update", "add",
    "discard", "pop", "popitem", "popleft", "appendleft", "setdefault",
}

#: spawn constructs by external dotted name: (argument picker, context)
SPAWN_EXTERNAL = {
    "asyncio.run": (0, ctx.EVENT_LOOP),
    "asyncio.create_task": (0, ctx.EVENT_LOOP),
    "asyncio.ensure_future": (0, ctx.EVENT_LOOP),
    "asyncio.run_coroutine_threadsafe": (0, ctx.EVENT_LOOP),
    "asyncio.to_thread": (0, ctx.THREAD),
    "signal.signal": (1, ctx.SIGNAL),
}

#: spawn constructs by method name (receiver type unknown)
SPAWN_METHODS = {
    "create_task": (0, ctx.EVENT_LOOP),
    "ensure_future": (0, ctx.EVENT_LOOP),
    "run_until_complete": (0, ctx.EVENT_LOOP),
    "call_soon": (0, ctx.EVENT_LOOP),
    "call_soon_threadsafe": (0, ctx.EVENT_LOOP),
    "call_later": (1, ctx.EVENT_LOOP),
    "call_at": (1, ctx.EVENT_LOOP),
    "run_in_executor": (1, ctx.THREAD),
    "add_signal_handler": (1, ctx.SIGNAL),
    "submit": (0, ctx.POOL),
}

#: keyword arguments that carry a callable into another context
SPAWN_KEYWORDS = {"target": ctx.THREAD, "initializer": ctx.POOL}


@dataclasses.dataclass(frozen=True)
class LockToken:
    """Identity of one recognized lock (class attribute or module global)."""

    relpath: str
    class_name: str  # "" for module-level locks
    name: str
    kind: str  # "threading" | "asyncio"

    @property
    def display(self):
        owner = self.class_name or self.relpath.rsplit("/", 1)[-1][:-3]
        return "%s.%s" % (owner, self.name)


@dataclasses.dataclass
class CallSite:
    node: object
    stmt: object
    targets: tuple
    fuzzy: bool
    held: frozenset
    awaited: bool


@dataclasses.dataclass
class SpawnSite:
    node: object
    targets: tuple
    context: str


@dataclasses.dataclass
class BlockEffect:
    node: object
    stmt: object
    label: str
    held: frozenset
    #: (SourceModule, line) of an alias seam this call resolved through
    alias_origin: tuple = None


@dataclasses.dataclass
class AwaitSite:
    node: object
    held: frozenset


@dataclasses.dataclass
class AttrWrite:
    class_name: str
    attr: str
    node: object
    held: frozenset


@dataclasses.dataclass
class LockRegion:
    token: LockToken
    node: object


@dataclasses.dataclass
class LockOrder:
    outer: LockToken
    inner: LockToken
    node: object


def scan_function(func, resolver):
    """Populate ``func``'s effect slots (calls/spawns/blocking/...)."""
    info = resolver.infos[func.module.relpath]
    local_types = _infer_local_types(func, resolver, info)
    scanner = _Scanner(func, resolver, info, local_types)
    body = func.node.body
    for stmt in body:
        scanner.visit_stmt(stmt)


def lock_token_for(resolver, info, func, expr):
    """LockToken for a ``with`` context expression, else None."""
    if isinstance(expr, ast.Name):
        kind = info.locks.get(expr.id)
        if kind is not None:
            return LockToken(info.module.relpath, "", expr.id, kind)
        return None
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and func.class_name
    ):
        cls = info.classes.get(func.class_name)
        if cls is not None:
            kind = cls.lock_attrs.get(expr.attr)
            if kind is not None:
                return LockToken(info.module.relpath, func.class_name, expr.attr, kind)
    return None


def _infer_local_types(func, resolver, info):
    """``x = SomeClass(...)`` / ``with SomeClass(...) as x`` receiver types."""
    types = {}

    def record(name, value):
        if not isinstance(value, ast.Call):
            return
        targets, external, fuzzy = resolver.resolve(func, value.func)
        if external is not None and "." in external.name:
            types[name] = EXTERNAL_TYPE
            return
        if fuzzy:
            return
        for target in targets:
            if target.name == "__init__" and target.class_name:
                owner = resolver.infos[target.module.relpath]
                types[name] = owner.classes[target.class_name]
                return

    nested = set()
    for node in ast.walk(func.node):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            and node is not func.node
        ):
            nested.update(id(sub) for sub in ast.walk(node))
    for node in ast.walk(func.node):
        if id(node) in nested:
            continue
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            if isinstance(node.targets[0], ast.Name):
                record(node.targets[0].id, node.value)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    record(item.optional_vars.id, item.context_expr)
    return types


class _Scanner:
    """One traversal of a function body, tracking held locks."""

    def __init__(self, func, resolver, info, local_types):
        self.func = func
        self.resolver = resolver
        self.info = info
        self.local_types = local_types
        self.held = []  # stack of LockToken
        self.current_stmt = None
        self.awaited_calls = set()
        self.in_init = func.name in ("__init__", "__post_init__")

    # -- statements --------------------------------------------------------

    def visit_stmt(self, stmt):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions are scanned as their own functions
        self.current_stmt = stmt
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
            return
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._record_assign_writes(stmt)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self.visit_stmt(child)
                self.current_stmt = stmt
            elif isinstance(child, ast.expr):
                self.visit_expr(child)
            elif isinstance(child, (ast.withitem, ast.excepthandler, ast.arguments, ast.keyword)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self.visit_stmt(sub)
                        self.current_stmt = stmt
                    elif isinstance(sub, ast.expr):
                        self.visit_expr(sub)

    def _visit_with(self, stmt):
        tokens = []
        for item in stmt.items:
            self.visit_expr(item.context_expr)
            token = lock_token_for(self.resolver, self.info, self.func, item.context_expr)
            if token is not None:
                for outer in self.held:
                    self.func.lock_orders.append(LockOrder(outer, token, stmt))
                self.func.regions.append(LockRegion(token, stmt))
                tokens.append(token)
        self.held.extend(tokens)
        for child in stmt.body:
            self.visit_stmt(child)
            self.current_stmt = stmt
        if tokens:
            del self.held[-len(tokens):]

    def _record_assign_writes(self, stmt):
        if self.in_init:
            return
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        flat = []
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                flat.extend(target.elts)
            else:
                flat.append(target)
        for target in flat:
            attr_node = target
            if isinstance(attr_node, ast.Subscript):
                attr_node = attr_node.value
            if (
                isinstance(attr_node, ast.Attribute)
                and isinstance(attr_node.value, ast.Name)
                and attr_node.value.id == "self"
                and self.func.class_name
            ):
                self.func.writes.append(
                    AttrWrite(
                        self.func.class_name, attr_node.attr, target,
                        frozenset(self.held),
                    )
                )

    # -- expressions -------------------------------------------------------

    def visit_expr(self, expr):
        if isinstance(expr, ast.Await):
            self.func.awaits.append(AwaitSite(expr, frozenset(self.held)))
            if isinstance(expr.value, ast.Call):
                self.awaited_calls.add(id(expr.value))
            self.visit_expr(expr.value)
            return
        if isinstance(expr, ast.Lambda):
            return
        if isinstance(expr, ast.Call):
            self._visit_call(expr)
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.visit_expr(child)
            elif isinstance(child, (ast.keyword, ast.comprehension)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.expr):
                        self.visit_expr(sub)

    def _visit_call(self, call):
        func_expr = call.func
        targets, external, fuzzy = self.resolver.resolve(
            self.func, func_expr, self.local_types
        )
        awaited = id(call) in self.awaited_calls
        held = frozenset(self.held)
        if targets:
            self.func.calls.append(
                CallSite(call, self.current_stmt, tuple(targets), fuzzy, held, awaited)
            )
        self._maybe_spawn(call, func_expr, external)
        self._maybe_blocking(call, func_expr, targets, external, fuzzy, awaited, held)
        self._maybe_mutator_write(call, func_expr)

    def _maybe_spawn(self, call, func_expr, external):
        picked = None
        if isinstance(external, ExtRef) and external.name in SPAWN_EXTERNAL:
            picked = SPAWN_EXTERNAL[external.name]
        elif isinstance(func_expr, ast.Attribute) and func_expr.attr in SPAWN_METHODS:
            picked = SPAWN_METHODS[func_expr.attr]
        if picked is not None:
            index, context = picked
            if index < len(call.args):
                self._spawn_to(call, call.args[index], context)
        for keyword in call.keywords:
            if keyword.arg in SPAWN_KEYWORDS:
                self._spawn_to(call, keyword.value, SPAWN_KEYWORDS[keyword.arg])

    def _spawn_to(self, call, ref, context):
        ref = _unwrap_partial(ref)
        if isinstance(ref, ast.Call):
            ref = ref.func
        if not isinstance(ref, (ast.Name, ast.Attribute)):
            return
        targets, _external, _fuzzy = self.resolver.resolve(
            self.func, ref, self.local_types
        )
        if targets:
            self.func.spawns.append(SpawnSite(call, tuple(targets), context))

    def _maybe_blocking(self, call, func_expr, targets, external, fuzzy, awaited, held):
        if awaited:
            return
        if isinstance(external, ExtRef):
            if external.name in BLOCKING_EXTERNAL:
                origin = None
                if external.origin_module is not None:
                    origin = (external.origin_module, external.origin_line)
                self.func.blocking.append(
                    BlockEffect(call, self.current_stmt, external.name, held, origin)
                )
            return
        if targets and not fuzzy:
            return  # precisely-resolved in-scope callee: its own effects apply
        if not isinstance(func_expr, ast.Attribute):
            return
        attr = func_expr.attr
        if attr in BLOCKING_METHODS:
            self.func.blocking.append(
                BlockEffect(call, self.current_stmt, ".%s()" % attr, held)
            )
        elif attr == "join":
            receiver = func_expr.value
            name = receiver.attr if isinstance(receiver, ast.Attribute) else (
                receiver.id if isinstance(receiver, ast.Name) else None
            )
            if name and any(hint in name.lower() for hint in JOIN_RECEIVER_HINTS):
                self.func.blocking.append(
                    BlockEffect(call, self.current_stmt, ".join()", held)
                )

    def _maybe_mutator_write(self, call, func_expr):
        if self.in_init or not isinstance(func_expr, ast.Attribute):
            return
        if func_expr.attr not in MUTATOR_METHODS:
            return
        receiver = func_expr.value
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and self.func.class_name
        ):
            self.func.writes.append(
                AttrWrite(
                    self.func.class_name, receiver.attr, call,
                    frozenset(self.held),
                )
            )


def _unwrap_partial(ref):
    """``functools.partial(f, ...)`` -> ``f``."""
    if isinstance(ref, ast.Call):
        chain = dotted(ref.func)
        if chain in ("functools.partial", "partial") and ref.args:
            return ref.args[0]
    return ref
