"""The assembled concurrency model handed to CON rules.

``build_model(project, config)`` indexes every module in the conc
scope, scans each function's effects, propagates execution contexts,
and computes two derived facts rules share:

* **entry-held locks** — the locks a function may assume held on entry,
  the *intersection* over all in-scope call sites of (locks lexically
  held at the site ∪ the caller's own entry-held set), iterated to a
  fixpoint.  This is what keeps ``SimulationBroker._ensure_thread``
  (always called under ``self._lock``) out of CON002.
* **may-block closures** — whether a function transitively reaches a
  blocking effect through plain call edges, with per-rule suppression
  filtering: a ``# repro-lint: ignore[CON...]`` on the blocking line
  (or on an alias seam's definition line) removes the effect from the
  closure, so a reviewed chaos-injection sleep does not indict every
  caller.

The model is cached per (project, scope): five rules share one build.
"""

from repro.analysis.conc import contexts as ctx
from repro.analysis.conc.callgraph import Resolver
from repro.analysis.conc.effects import scan_function

#: all CON rules share one scope — the union of their configured paths
CON_CODES = ("CON001", "CON002", "CON003", "CON004", "CON005")

_CACHE = {}


class ConcModel:
    def __init__(self, functions, resolver, contexts, witness, entry_held):
        self.functions = functions
        self.resolver = resolver
        #: FuncInfo -> set of context names
        self.contexts = contexts
        #: (FuncInfo, context) -> (parent FuncInfo | None, line)
        self.witness = witness
        #: FuncInfo -> frozenset of LockToken assumed held on entry
        self.entry_held = entry_held
        self._may_block = {}

    def chain(self, func, context):
        return ctx.witness_chain(self.witness, func, context)

    # -- suppression-aware effect filtering --------------------------------

    def effect_active(self, func, effect, code):
        """False when the effect is waived at its own line or at the
        alias seam it resolved through."""
        if func.module.is_suppressed(effect.node.lineno, code):
            return False
        if effect.alias_origin is not None:
            module, line = effect.alias_origin
            if module.is_suppressed(line, code):
                return False
        return True

    def blocking_effects(self, func, code):
        return [e for e in func.blocking if self.effect_active(func, e, code)]

    def may_block(self, func, code):
        """First transitively-reachable active blocking effect, as
        ``(effect, owner FuncInfo)``, else None.  Spawn edges do not
        count: work moved to another context no longer blocks this one."""
        key = (func, code)
        if key in self._may_block:
            return self._may_block[key]
        self._may_block[key] = None  # cycle guard
        found = None
        effects = self.blocking_effects(func, code)
        if effects:
            found = (effects[0], func)
        else:
            for site in func.calls:
                if site.awaited or site.fuzzy:
                    # fuzzy (name-matched) edges feed context propagation
                    # only; chaining may-block through them would let one
                    # name collision indict every caller of that name
                    continue
                for target in site.targets:
                    if target.is_async and not func.is_async:
                        continue  # sync code touching a coroutine fn never runs it
                    inner = self.may_block(target, code)
                    if inner is not None:
                        found = inner
                        break
                if found is not None:
                    break
        self._may_block[key] = found
        return found


def conc_scope(config):
    """Union of the five CON rules' configured path prefixes.

    An unscoped rule (``()``) widens the model to the whole tree —
    matching how unscoped rules report everywhere.
    """
    prefixes = []
    for code in CON_CODES:
        paths = config.paths_for(code)
        if not paths:
            return ()
        prefixes.extend(paths)
    return tuple(dict.fromkeys(prefixes))


def build_model(project, config):
    scope = conc_scope(config)
    key = (id(project), scope)
    if _CACHE.get("key") == key:
        return _CACHE["model"]
    modules = project.in_paths(scope)
    resolver = Resolver(modules)
    for func in resolver.all_functions:
        scan_function(func, resolver)
    contexts, witness = ctx.propagate(resolver.all_functions)
    entry_held = _entry_held_fixpoint(resolver.all_functions)
    model = ConcModel(resolver.all_functions, resolver, contexts, witness, entry_held)
    _CACHE["key"] = key
    _CACHE["model"] = model
    _CACHE["project"] = project  # keep the id() key valid
    return model


def _entry_held_fixpoint(functions, rounds=4):
    """Locks held at *every* in-scope call site, to a bounded fixpoint."""
    incoming = {func: [] for func in functions}
    for caller in functions:
        for site in caller.calls:
            for target in site.targets:
                if target in incoming:
                    incoming[target].append((caller, site.held))
    entry = {func: frozenset() for func in functions}
    for _round in range(rounds):
        changed = False
        for func in functions:
            sites = incoming[func]
            if not sites:
                continue
            held = None
            for caller, site_held in sites:
                combined = site_held | entry[caller]
                held = combined if held is None else held & combined
            held = frozenset(held or ())
            if held != entry[func]:
                entry[func] = held
                changed = True
        if not changed:
            break
    return entry
