"""Module-level call graph over the concurrency scope.

The conc tier reasons about *which context runs this function*, so it
needs call edges across modules — something the per-function flow tier
never did.  Names in Python are late-bound, so exact resolution is
impossible; this resolver trades precision for predictable, documented
behavior (DESIGN.md "Concurrency model"):

* **Precise** edges when the receiver is statically evident: bare names
  bind to nested defs, module functions/classes, or imported internal
  symbols; ``self.method()`` binds within the enclosing class;
  ``module.func()`` binds through the per-module import table; local
  variables remember the class of a direct constructor call
  (``client = AsyncServiceClient(...)``).
* **External** calls (receivers rooted at a non-scope import such as
  ``time`` or ``asyncio``) produce no edge — the blocking/spawn tables
  in :mod:`repro.analysis.conc.effects` classify them instead.
* Everything else falls back to **fuzzy** resolution: every function in
  the module's *import closure* (itself plus the in-scope modules it
  imports) whose terminal name matches.  This deliberately
  over-approximates — ``writer.drain()`` in a coroutine reaches every
  in-closure ``drain`` — because missing a real edge would silently
  under-report CON001; false contexts are waived with reviewed
  suppressions instead.
"""

import ast


def dotted(node):
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ExtRef:
    """An out-of-scope callable: absolute dotted name plus, when it was
    reached through an alias seam (``_sleep = time.sleep``), the module
    and line of the alias definition — suppressions there waive every
    call through the seam."""

    __slots__ = ("name", "origin_module", "origin_line")

    def __init__(self, name, origin_module=None, origin_line=None):
        self.name = name
        self.origin_module = origin_module
        self.origin_line = origin_line

    def __repr__(self):
        return "ExtRef(%s)" % self.name


class FuncInfo:
    """One function or method definition in the scanned scope."""

    __slots__ = (
        "module", "node", "name", "qualname", "class_name", "parent",
        "calls", "spawns", "blocking", "awaits", "writes", "regions",
        "lock_orders", "nested",
    )

    def __init__(self, module, node, qualname, class_name, parent):
        self.module = module
        self.node = node
        self.name = node.name
        self.qualname = qualname
        self.class_name = class_name
        #: lexically enclosing FuncInfo (for nested defs), else None
        self.parent = parent
        #: name -> FuncInfo for directly nested defs
        self.nested = {}
        # effect slots, filled by conc.effects.scan_function
        self.calls = []
        self.spawns = []
        self.blocking = []
        self.awaits = []
        self.writes = []
        self.regions = []
        self.lock_orders = []

    @property
    def is_async(self):
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def label(self):
        return "%s:%s" % (self.module.relpath, self.qualname)

    def __repr__(self):
        return "FuncInfo(%s)" % self.label


class ClassInfo:
    """Methods, attribute aliases and inferred attribute types of a class."""

    __slots__ = ("module", "name", "methods", "aliases", "attr_types", "lock_attrs")

    def __init__(self, module, name):
        self.module = module
        self.name = name
        #: method name -> FuncInfo
        self.methods = {}
        #: class-body alias: name -> (external dotted target, lineno) —
        #: covers ``_sleep = staticmethod(time.sleep)`` seams
        self.aliases = {}
        #: self-attribute -> ClassInfo (from ``self.x = SomeClass(...)``)
        self.attr_types = {}
        #: self-attribute -> lock kind ("threading" | "asyncio")
        self.lock_attrs = {}


#: import-table entry kinds
EXTERNAL, MODULE, SYMBOL = "external", "module", "symbol"


class ModuleInfo:
    """Per-module name tables: imports, functions, classes, aliases, locks."""

    __slots__ = (
        "module", "imports", "functions", "classes", "aliases", "locks", "closure",
    )

    def __init__(self, module):
        self.module = module
        #: bound name -> (EXTERNAL, dotted) | (MODULE, relpath) | (SYMBOL, relpath, name)
        self.imports = {}
        #: module-level def name -> FuncInfo
        self.functions = {}
        #: class name -> ClassInfo
        self.classes = {}
        #: module-level alias: name -> (external dotted target, lineno) —
        #: covers ``_sleep = time.sleep`` seams
        self.aliases = {}
        #: module-level lock name -> kind
        self.locks = {}
        #: relpaths fuzzy resolution may search (self + imported in-scope)
        self.closure = set()


def _relpath_for(dotted_module, known):
    """In-scope relpath for an absolute module path, else None."""
    parts = dotted_module.split(".")
    if parts and parts[0] == "repro":
        parts = parts[1:]
    if not parts:
        return None
    candidate = "/".join(parts) + ".py"
    return candidate if candidate in known else None


class Resolver:
    """Name tables for a set of modules plus the resolution ladder."""

    def __init__(self, modules):
        self.infos = {}
        self.all_functions = []
        #: terminal name -> [FuncInfo] across the whole scope
        self.by_name = {}
        known = {module.relpath for module in modules}
        for module in modules:
            self.infos[module.relpath] = self._index_module(module, known)
        for info in self.infos.values():
            info.closure = {info.module.relpath}
            for entry in info.imports.values():
                if entry[0] in (MODULE, SYMBOL):
                    info.closure.add(entry[1])
        for info in self.infos.values():
            self._infer_attr_types(info)

    # -- indexing ----------------------------------------------------------

    def _index_module(self, module, known):
        info = ModuleInfo(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    relpath = _relpath_for(target, known)
                    info.imports[bound] = (MODULE, relpath) if relpath else (EXTERNAL, target)
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    full = "%s.%s" % (node.module, alias.name)
                    relpath = _relpath_for(full, known)
                    if relpath is not None:
                        info.imports[bound] = (MODULE, relpath)
                        continue
                    parent = _relpath_for(node.module, known)
                    if parent is not None:
                        info.imports[bound] = (SYMBOL, parent, alias.name)
                    else:
                        info.imports[bound] = (EXTERNAL, full)
        self._index_defs(module, module.tree.body, info, qual="", class_info=None, parent=None)
        for stmt in module.tree.body:
            self._maybe_alias_or_lock(stmt, info, class_info=None)
        return info

    def _index_defs(self, module, body, info, qual, class_info, parent):
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = (qual + "." if qual else "") + stmt.name
                func = FuncInfo(
                    module, stmt, qualname,
                    class_info.name if class_info is not None else None,
                    parent,
                )
                self.all_functions.append(func)
                self.by_name.setdefault(stmt.name, []).append(func)
                if parent is not None:
                    parent.nested[stmt.name] = func
                elif class_info is not None:
                    class_info.methods[stmt.name] = func
                else:
                    info.functions[stmt.name] = func
                self._index_defs(
                    module, stmt.body, info,
                    qual=qualname + ".<locals>", class_info=None, parent=func,
                )
            elif isinstance(stmt, ast.ClassDef) and class_info is None and parent is None:
                cls = ClassInfo(module, stmt.name)
                info.classes[stmt.name] = cls
                self._index_defs(module, stmt.body, info, qual=stmt.name, class_info=cls, parent=None)
                for sub in stmt.body:
                    self._maybe_alias_or_lock(sub, info, class_info=cls)

    def _maybe_alias_or_lock(self, stmt, info, class_info):
        """Record ``name = time.sleep`` aliases and ``NAME = threading.Lock()``."""
        from repro.analysis.conc.effects import LOCK_CONSTRUCTORS

        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return
        value = stmt.value
        # unwrap staticmethod(...) for class-body seams
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "staticmethod"
            and len(value.args) == 1
        ):
            value = value.args[0]
        chain = dotted(value)
        if chain is not None:
            resolved = self._external_name(info, chain)
            if resolved is not None:
                table = class_info.aliases if class_info is not None else info.aliases
                table[target.id] = (resolved, stmt.lineno)
        if isinstance(stmt.value, ast.Call):
            chain = dotted(stmt.value.func)
            resolved = self._external_name(info, chain) if chain else None
            if resolved in LOCK_CONSTRUCTORS:
                if class_info is None:
                    info.locks[target.id] = LOCK_CONSTRUCTORS[resolved]
                else:
                    class_info.lock_attrs[target.id] = LOCK_CONSTRUCTORS[resolved]

    def _infer_attr_types(self, info):
        """``self.x = SomeClass(...)`` and ``self.x = threading.Lock()``."""
        from repro.analysis.conc.effects import LOCK_CONSTRUCTORS

        for cls in info.classes.values():
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                        continue
                    target = node.targets[0]
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and isinstance(node.value, ast.Call)
                    ):
                        continue
                    chain = dotted(node.value.func)
                    if chain is None:
                        continue
                    external = self._external_name(info, chain)
                    if external in LOCK_CONSTRUCTORS:
                        cls.lock_attrs[target.attr] = LOCK_CONSTRUCTORS[external]
                        continue
                    constructed = self._resolve_constructor(info, chain)
                    if constructed is not None:
                        cls.attr_types.setdefault(target.attr, constructed)

    def _resolve_constructor(self, info, chain):
        """ClassInfo for a ``Cls(...)`` / ``mod.Cls(...)`` constructor chain."""
        parts = chain.split(".")
        if len(parts) == 1:
            if parts[0] in info.classes:
                return info.classes[parts[0]]
            entry = info.imports.get(parts[0])
            if entry is not None and entry[0] == SYMBOL:
                return self.class_of(entry[1], entry[2])
            return None
        if len(parts) == 2:
            entry = info.imports.get(parts[0])
            if entry is not None and entry[0] == MODULE and entry[1] is not None:
                return self.infos[entry[1]].classes.get(parts[1])
        return None

    # -- resolution --------------------------------------------------------

    def _external_name(self, info, chain):
        """Absolute dotted name when ``chain`` roots at an external import."""
        if chain is None:
            return None
        root, _, rest = chain.partition(".")
        entry = info.imports.get(root)
        if entry is not None and entry[0] == EXTERNAL:
            return entry[1] + ("." + rest if rest else "")
        return None

    def fuzzy(self, info, name):
        """Every in-closure function with this terminal name (the documented
        over-approximation); dunders never match."""
        if name.startswith("__") and name.endswith("__"):
            return []
        return [
            func for func in self.by_name.get(name, ())
            if func.module.relpath in info.closure
        ]

    def class_of(self, relpath, class_name):
        info = self.infos.get(relpath)
        return info.classes.get(class_name) if info else None

    def resolve(self, func, expr, local_types=None):
        """Resolve a callable reference to ``(targets, external, fuzzy)``.

        ``targets`` is a list of FuncInfo; ``external`` an absolute dotted
        name for out-of-scope callables (or a bare builtin name); ``fuzzy``
        is True when targets came from the name-match fallback — blocking
        heuristics only apply to fuzzy/unresolved receivers.
        """
        info = self.infos[func.module.relpath]
        local_types = local_types or {}
        if isinstance(expr, ast.Name):
            return self._resolve_bare(info, func, expr.id)
        if isinstance(expr, ast.Attribute):
            return self._resolve_attribute(info, func, expr, local_types)
        return [], None, False

    def _resolve_bare(self, info, func, name):
        scope = func
        while scope is not None:
            if name in scope.nested:
                return [scope.nested[name]], None, False
            scope = scope.parent
        if name in info.functions:
            return [info.functions[name]], None, False
        if name in info.classes:
            init = info.classes[name].methods.get("__init__")
            return ([init] if init else []), None, False
        if name in info.aliases:
            target, lineno = info.aliases[name]
            return [], ExtRef(target, info.module, lineno), False
        entry = info.imports.get(name)
        if entry is not None:
            if entry[0] == EXTERNAL:
                return [], ExtRef(entry[1]), False
            if entry[0] == MODULE:
                return [], None, False
            if entry[0] == SYMBOL:
                return self._symbol_in(entry[1], entry[2])
        if name == "open":
            return [], ExtRef("open"), False
        return [], None, False

    def _symbol_in(self, relpath, name):
        target = self.infos.get(relpath)
        if target is None:
            return [], None, False
        if name in target.functions:
            return [target.functions[name]], None, False
        if name in target.classes:
            init = target.classes[name].methods.get("__init__")
            return ([init] if init else []), None, False
        if name in target.aliases:
            alias, lineno = target.aliases[name]
            return [], ExtRef(alias, target.module, lineno), False
        return [], None, False

    def _resolve_attribute(self, info, func, expr, local_types):
        attr = expr.attr
        chain = dotted(expr)
        if chain is not None:
            parts = chain.split(".")
            root = parts[0]
            external = self._external_name(info, chain)
            if external is not None:
                return [], ExtRef(external), False
            entry = info.imports.get(root)
            if entry is not None and entry[0] == MODULE and entry[1] is not None:
                if len(parts) == 2:
                    return self._symbol_in(entry[1], attr)
                if len(parts) == 3:  # mod.Class.method / mod.Class.create
                    cls = self.infos[entry[1]].classes.get(parts[1])
                    if cls is not None and attr in cls.methods:
                        return [cls.methods[attr]], None, False
                return [], None, False
            if entry is not None and entry[0] == SYMBOL and len(parts) == 2:
                cls = self.class_of(entry[1], entry[2])
                if cls is not None:
                    if attr in cls.methods:
                        return [cls.methods[attr]], None, False
                    if attr in cls.aliases:
                        alias, lineno = cls.aliases[attr]
                        return [], ExtRef(alias, cls.module, lineno), False
                return [], None, False
            if root == "self" and func.class_name:
                cls = info.classes.get(func.class_name)
                if cls is not None:
                    if len(parts) == 2:
                        if attr in cls.methods:
                            return [cls.methods[attr]], None, False
                        if attr in cls.aliases:
                            alias, lineno = cls.aliases[attr]
                            return [], ExtRef(alias, cls.module, lineno), False
                    elif len(parts) == 3 and parts[1] in cls.attr_types:
                        mid = cls.attr_types[parts[1]]
                        if attr in mid.methods:
                            return [mid.methods[attr]], None, False
                        return [], None, False
            if root in local_types and len(parts) == 2:
                cls = local_types[root]
                if cls is EXTERNAL_TYPE:
                    return [], None, False
                if attr in cls.methods:
                    return [cls.methods[attr]], None, False
                if attr in cls.aliases:
                    alias, lineno = cls.aliases[attr]
                    return [], ExtRef(alias, cls.module, lineno), False
                return [], None, False
        targets = self.fuzzy(info, attr)
        return targets, None, bool(targets)


#: sentinel local type: "constructed from an out-of-scope class"
EXTERNAL_TYPE = object()
