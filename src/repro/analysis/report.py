"""Reporters: human-readable text and machine-readable JSON."""

import json


def rule_counts(violations):
    """Per-rule finding counts, sorted by code."""
    by_rule = {}
    for violation in violations:
        by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
    return dict(sorted(by_rule.items()))


def render_statistics(violations):
    """The ``--statistics`` block: one ``count  CODE`` line per rule,
    most frequent first (code as the tiebreak) so CI diffs are stable."""
    counts = rule_counts(violations)
    if not counts:
        return "0 findings"
    ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    lines = ["%6d  %s" % (count, code) for code, count in ordered]
    lines.append("%6d  total" % len(violations))
    return "\n".join(lines)


def render_text(violations, statistics=False):
    """``file:line:col RULE message`` per finding, plus a summary line."""
    lines = [violation.format() for violation in violations]
    if violations:
        summary = ", ".join("%s: %d" % item for item in rule_counts(violations).items())
        lines.append("")
        lines.append("%d finding%s (%s)" % (len(violations), "s" if len(violations) != 1 else "", summary))
    else:
        lines.append("clean: no model-integrity findings")
    if statistics:
        lines.append("")
        lines.append(render_statistics(violations))
    return "\n".join(lines)


def render_json(violations, statistics=False):
    document = {
        "count": len(violations),
        "violations": [violation.as_dict() for violation in violations],
    }
    if statistics:
        document["statistics"] = rule_counts(violations)
    return json.dumps(document, indent=2, sort_keys=True)


RENDERERS = {"text": render_text, "json": render_json}
