"""Reporters: human-readable text and machine-readable JSON."""

import json


def render_text(violations):
    """``file:line:col RULE message`` per finding, plus a summary line."""
    lines = [violation.format() for violation in violations]
    if violations:
        by_rule = {}
        for violation in violations:
            by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
        summary = ", ".join("%s: %d" % item for item in sorted(by_rule.items()))
        lines.append("")
        lines.append("%d finding%s (%s)" % (len(violations), "s" if len(violations) != 1 else "", summary))
    else:
        lines.append("clean: no model-integrity findings")
    return "\n".join(lines)


def render_json(violations):
    return json.dumps(
        {
            "count": len(violations),
            "violations": [violation.as_dict() for violation in violations],
        },
        indent=2,
        sort_keys=True,
    )


RENDERERS = {"text": render_text, "json": render_json}
