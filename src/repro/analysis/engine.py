"""Rule engine: source discovery, suppression comments, rule dispatch.

The engine is deliberately simple: it parses every ``*.py`` file under the
given paths once, computes a *package-relative* path for each (so rules can
scope themselves to subsystems like ``hv/`` or ``os/`` regardless of where
the tree is checked out), collects per-line suppressions, and hands the
whole :class:`Project` to each rule.  Rules are pure functions from project
to violations; the engine filters suppressed findings afterwards.
"""

import ast
import dataclasses
import pathlib
import re

#: ``# repro-lint: ignore[CAL001,DET001]`` or ``# repro-lint: ignore``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?"
)

#: directories never scanned
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache"}


@dataclasses.dataclass(frozen=True)
class Violation:
    """One finding: ``path:line:col rule message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self):
        return "%s:%d:%d %s %s" % (self.path, self.line, self.col, self.rule, self.message)

    def as_dict(self):
        return dataclasses.asdict(self)


class SourceModule:
    """One parsed source file plus its suppression table."""

    def __init__(self, path, relpath, text):
        self.path = str(path)
        #: package-relative posix path, e.g. ``hv/xen/netback.py``
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=self.path)
        #: line -> set of suppressed rule codes ("*" = all)
        self.suppressions = self._parse_suppressions()

    def _parse_suppressions(self):
        table = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = match.group(1)
            if rules is None:
                codes = {"*"}
            else:
                codes = {code.strip().upper() for code in rules.split(",") if code.strip()}
            table.setdefault(lineno, set()).update(codes)
            if line[: match.start()].strip() == "":
                # A standalone suppression comment covers the next *code*
                # line, so a multi-line justification can sit above a
                # `def` with the directive leading the block.
                target = lineno + 1
                while (
                    target <= len(self.lines)
                    and self.lines[target - 1].lstrip().startswith("#")
                ):
                    target += 1
                table.setdefault(target, set()).update(codes)
        return table

    @property
    def subsystem(self):
        """First component of the package-relative path ('' for top level)."""
        return self.relpath.split("/", 1)[0] if "/" in self.relpath else ""

    def in_any(self, prefixes):
        """True when this module falls under one of the path ``prefixes``.

        A prefix is either a subsystem directory (``"hv"``) or an exact
        relative file path (``"sim/rng.py"``).  An empty prefix tuple means
        "everything".
        """
        if not prefixes:
            return True
        for prefix in prefixes:
            if self.relpath == prefix or self.relpath.startswith(prefix.rstrip("/") + "/"):
                return True
        return False

    def is_suppressed(self, line, rule):
        """Suppression entries match exactly or as a prefix, so
        ``# repro-lint: ignore[SPEC]`` waives the whole spec tier."""
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        if "*" in rules:
            return True
        rule = rule.upper()
        return any(rule == entry or rule.startswith(entry) for entry in rules)

    def violation(self, node_or_line, rule, message):
        """Build a :class:`Violation` anchored at an AST node (or line no)."""
        if isinstance(node_or_line, int):
            line, col = node_or_line, 0
        else:
            line, col = node_or_line.lineno, node_or_line.col_offset
        return Violation(self.path, line, col, rule, message)

    def __repr__(self):
        return "SourceModule(%s)" % self.relpath


class Project:
    """Every scanned module, addressable by package-relative path."""

    def __init__(self, modules, roots=()):
        self.modules = sorted(modules, key=lambda m: m.relpath)
        self._by_relpath = {m.relpath: m for m in self.modules}
        #: scan roots in input order — the first is where project-level
        #: artifacts (the ``specs/`` goldens) are looked up by default
        self.roots = tuple(roots)

    def module(self, relpath):
        return self._by_relpath.get(relpath)

    def in_paths(self, prefixes):
        return [m for m in self.modules if m.in_any(prefixes)]


def _package_root(path):
    """Outermost contiguous package directory containing ``path``."""
    current = path if path.is_dir() else path.parent
    root = current
    while (current / "__init__.py").exists():
        root = current
        current = current.parent
    return root


def _relativize(file_path, scan_root):
    """Package-relative path: everything after the last ``repro`` directory
    component, falling back to the path relative to the scan root."""
    parts = file_path.parts
    if "repro" in parts[:-1]:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index + 1:])
    try:
        return file_path.relative_to(scan_root).as_posix()
    except ValueError:
        return file_path.name


def discover(paths):
    """Parse every python file under ``paths``.

    Returns ``(project, errors)`` where errors is a list of
    :class:`Violation` with rule ``E001`` for unparseable files.
    """
    modules, errors, roots = [], [], []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            root = path
            files = sorted(
                f for f in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(f.parts) and "egg-info" not in str(f)
            )
        else:
            root = _package_root(path)
            files = [path]
        roots.append(root)
        for file_path in files:
            relpath = _relativize(file_path.resolve(), root.resolve())
            try:
                text = file_path.read_text(encoding="utf-8")
                modules.append(SourceModule(file_path, relpath, text))
            except (SyntaxError, UnicodeDecodeError) as exc:
                line = getattr(exc, "lineno", None) or 1
                errors.append(
                    Violation(str(file_path), line, 0, "E001", "cannot parse: %s" % exc)
                )
    return Project(modules, roots=roots), errors


def run_analysis(paths, config=None, select=None, flow=False, ignore=None, spec=False, conc=False):
    """Run the configured rules over ``paths``; returns sorted violations.

    ``config`` defaults to the built-in :class:`~repro.analysis.config.LintConfig`
    (no pyproject discovery — explicit is better for tests); ``select``
    optionally narrows to an iterable of rule codes, ``ignore`` drops
    codes *or code prefixes* from whatever was resolved (raising
    ``KeyError`` for entries matching nothing), ``flow`` enables the
    CFG-based flow tier (SYM001/SYM002/FLW001), ``spec`` the path-spec
    tier (SPEC001/SPEC002/SPEC003), and ``conc`` the concurrency tier
    (CON001–CON005).
    """
    from repro.analysis.config import LintConfig
    from repro.analysis.rules import active_rules, expand_codes

    if config is None:
        config = LintConfig()
    project, errors = discover(paths)
    violations = list(errors)
    rules = active_rules(config, select, flow=flow, spec=spec, conc=conc)
    if ignore:
        dropped = expand_codes(ignore)
        rules = tuple(rule for rule in rules if rule.code not in dropped)
    for rule in rules:
        for violation in rule.check(project, config):
            module = _module_for(project, violation)
            if module is not None and module.is_suppressed(violation.line, violation.rule):
                continue
            violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def _module_for(project, violation):
    for module in project.modules:
        if module.path == violation.path:
            return module
    return None
