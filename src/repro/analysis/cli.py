"""Model-integrity linter CLI.

Usage:
    python -m repro.analysis                     # lint the installed package
    python -m repro.analysis src/repro           # lint a tree
    python -m repro.analysis --format json path  # machine-readable output
    python -m repro.analysis --select CAL001,COV001 src/repro
    python -m repro.analysis --flow src/repro    # + CFG path-symmetry tier
    python -m repro.analysis --spec src/repro    # + path-spec golden tier
    python -m repro.analysis --conc src/repro    # + concurrency tier (CON001..CON005)
    python -m repro.analysis --ignore DES001 --statistics src/repro
    python -m repro.analysis --list-rules

Exit status: 0 clean, 1 findings, 2 bad invocation.
"""

import argparse
import os
import sys

from repro.analysis.config import LintConfig
from repro.analysis.engine import run_analysis
from repro.analysis.report import RENDERERS
from repro.analysis.rules import ALL_RULES


def _default_path():
    """The repro package directory itself (works from any cwd)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Model-integrity static analysis for the reproduction.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=sorted(RENDERERS), default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule codes to run (default: all configured)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule codes or prefixes (e.g. SPEC) to drop "
             "from the resolved set; unknown entries are an error",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="also run the flow-sensitive tier (SYM001, SYM002, FLW001)",
    )
    parser.add_argument(
        "--spec", action="store_true",
        help="also run the path-spec tier (SPEC001, SPEC002, SPEC003)",
    )
    parser.add_argument(
        "--conc", action="store_true",
        help="also run the concurrency tier (CON001..CON005)",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="append a per-rule finding-count summary",
    )
    parser.add_argument(
        "--config", metavar="PYPROJECT",
        help="pyproject.toml with a [tool.repro-lint] block "
             "(default: discovered upward from the first path)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore any pyproject.toml; use built-in defaults",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit",
    )
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print("%s  %-20s %s" % (rule.code, rule.name, rule.description))
        return 0
    paths = args.paths or [_default_path()]
    for path in paths:
        if not os.path.exists(path):
            print("repro.analysis: no such path: %s" % path, file=sys.stderr)
            return 2
    if args.no_config:
        config = LintConfig()
    elif args.config:
        config = LintConfig.load(args.config)
    else:
        config = LintConfig.discover(paths[0])
    select = _codes(args.select)
    ignore = _codes(args.ignore)
    try:
        violations = run_analysis(
            paths,
            config=config,
            select=select,
            flow=args.flow,
            ignore=ignore,
            spec=args.spec,
            conc=args.conc,
        )
    except KeyError as exc:
        print("repro.analysis: %s" % exc.args[0], file=sys.stderr)
        return 2
    print(RENDERERS[args.format](violations, statistics=args.statistics))
    return 1 if violations else 0


def _codes(raw):
    if not raw:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


if __name__ == "__main__":
    sys.exit(main())
