"""Abstract effects: what a statement *does* to the modeled machine.

The flow rules do not interpret Python; they pattern-match the small
vocabulary of architectural primitives the model layers are written in:

* costed steps — ``pcpu.op(label, cycles, category)`` — where the
  ``"save"``/``"restore"`` categories carry a *register-class token*
  recovered from the cost expression (``costs.save[reg_class]``) or the
  label literal (``"save_gp_light"``);
* context-image moves — ``arch.save_context(...)`` /
  ``arch.load_context(...)``;
* trap transitions — ``trap_to_el2``/``vmexit`` enter hypervisor
  context, ``eret``/``vmentry`` leave it;
* Stage-2 / virtualization-feature toggles —
  ``disable_virt_features`` / ``enable_virt_features``.

Extraction is *per CFG node*: compound statements contribute only their
header expressions (their bodies are separate nodes), and nested
``def``/``lambda`` bodies are opaque (they get their own analysis).

The primary extraction product is the :class:`Step` record — the unit of
the PathSpec IR (:mod:`repro.analysis.pathspec`).  A step is either an
``op`` (a costed simulation step, with its label pattern, category,
cost reference into the cost model and — for save/restore — a
register-class token) or an ``arch`` transition (one of the effect
kinds above).  :meth:`Extractor.effects` is derived from the step
stream, so the flow rules and the spec extractor can never disagree
about what a statement does.
"""

import ast

# effect kinds
SAVE_OP = "save_op"  # pcpu.op(..., "save") — costed register-class save
RESTORE_OP = "restore_op"  # pcpu.op(..., "restore")
CTX_SAVE = "ctx_save"  # arch.save_context(...)
CTX_LOAD = "ctx_load"  # arch.load_context(...)
TRAP_ENTER = "trap_enter"  # trap_to_el2 / vmexit
TRAP_EXIT = "trap_exit"  # eret / vmentry
VIRT_OFF = "virt_off"  # disable_virt_features
VIRT_ON = "virt_on"  # enable_virt_features
COST = "cost"  # any pcpu.op(...) — a cycle charge

_METHOD_EFFECTS = {
    "save_context": CTX_SAVE,
    "load_context": CTX_LOAD,
    "trap_to_el2": TRAP_ENTER,
    "vmexit": TRAP_ENTER,
    "eret": TRAP_EXIT,
    "vmentry": TRAP_EXIT,
    "disable_virt_features": VIRT_OFF,
    "enable_virt_features": VIRT_ON,
}

ARCH_KINDS = frozenset(_METHOD_EFFECTS.values())

#: token used when a save/restore's register class cannot be named
UNKNOWN = "?"

# how an op step's cost expression resolves into the cost model
COST_FIELD = "field"  # costs.trap_to_el2
COST_TABLE = "table"  # costs.save[reg_class] / costs.restore[...]
COST_METHOD = "method"  # costs.copy_cycles(n)
COST_LITERAL = "literal"  # a bare numeric literal (CAL001's business)
COST_EXTERNAL = "external"  # anything the extractor cannot tie to costs

COST_KINDS = (COST_FIELD, COST_TABLE, COST_METHOD, COST_LITERAL, COST_EXTERNAL)


class Effect:
    __slots__ = ("kind", "token", "line")

    def __init__(self, kind, token=None, line=0):
        self.kind = kind
        self.token = token
        self.line = line

    def __repr__(self):
        return "Effect(%s, %r, line %d)" % (self.kind, self.token, self.line)


class Step:
    """One PathSpec IR step: a costed op or an architectural transition."""

    __slots__ = (
        "kind",  # "op" | "arch"
        "arch",  # effect kind for arch steps, None for ops
        "label",  # op label *pattern* ("trap_to_el2", "save_*", "*")
        "category",  # op category ("trap", "save", ...; "" when unknown)
        "cost",  # cost-model name the cost expression references, or None
        "cost_kind",  # one of COST_KINDS (ops only)
        "reg_class",  # register-class token for save/restore ops
        "line",
    )

    def __init__(
        self,
        kind,
        arch=None,
        label=None,
        category=None,
        cost=None,
        cost_kind=None,
        reg_class=None,
        line=0,
    ):
        self.kind = kind
        self.arch = arch
        self.label = label
        self.category = category
        self.cost = cost
        self.cost_kind = cost_kind
        self.reg_class = reg_class
        self.line = line

    def __repr__(self):
        if self.kind == "arch":
            return "Step(arch=%s, line %d)" % (self.arch, self.line)
        return "Step(op=%r, category=%r, cost=%r/%s, class=%r, line %d)" % (
            self.label,
            self.category,
            self.cost,
            self.cost_kind,
            self.reg_class,
            self.line,
        )


def _dotted(node):
    """``a.b.c`` -> "a.b.c"; None for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _iter_shallow(node):
    """Walk ``node`` without entering nested function/class bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            stack.append(child)


def _header_exprs(stmt):
    """The expressions evaluated *at* a compound statement's own node."""
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []  # nested definitions are opaque (analyzed on their own)
    return None  # simple statement: walk it whole


def _assign_pairs(assign):
    """(target, value) pairs of an Assign, unpacking 1:1 tuple assigns."""
    pairs = []
    for target in assign.targets:
        if (
            isinstance(target, ast.Tuple)
            and isinstance(assign.value, ast.Tuple)
            and len(target.elts) == len(assign.value.elts)
        ):
            pairs.extend(zip(target.elts, assign.value.elts))
        else:
            pairs.append((target, assign.value))
    return pairs


_BLOCK_FIELDS = ("body", "orelse", "finalbody")


class Extractor:
    """Effect/step extraction for one function, with loop-variable
    resolution.

    A save inside ``for reg_class in ARM_SWITCH_ORDER:`` is tokenized as
    the *iterable's* dotted name — the whole sweep is one token, so a
    save loop over ``ARM_SWITCH_ORDER`` pairs with a restore loop over
    the same name and nothing else.  Bindings are resolved *lexically*:
    each statement sees the last loop header that bound the name before
    it in document order, so two sweeps reusing one loop variable over
    different iterables keep distinct tokens.
    """

    def __init__(self, func):
        self.func = func
        self._env_by_stmt = {}
        self._collect_bindings(func.body, {})
        self._bindings = {}
        self._cost_aliases = set()
        self._collect_cost_aliases(func)
        self._cache = {}
        self._steps_cache = {}

    def _collect_bindings(self, stmts, env):
        """Thread loop-variable bindings through a block in document
        order, snapshotting the environment each statement sees."""
        for stmt in stmts:
            if isinstance(stmt, (ast.For, ast.AsyncFor)) and isinstance(
                stmt.target, ast.Name
            ):
                iter_name = _dotted(stmt.iter)
                if iter_name is not None:
                    env[stmt.target.id] = iter_name
            self._env_by_stmt[id(stmt)] = dict(env)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # opaque: nested defs get their own Extractor
            for field in _BLOCK_FIELDS:
                block = getattr(stmt, field, None)
                if block:
                    self._collect_bindings(block, env)
            for handler in getattr(stmt, "handlers", ()):
                self._collect_bindings(handler.body, env)

    def _collect_cost_aliases(self, func):
        """Local names aliasing the cost model (``c = self.costs``),
        resolved to a fixpoint so chained aliases work too."""
        changed = True
        while changed:
            changed = False
            for node in _iter_shallow(func):
                if not isinstance(node, ast.Assign):
                    continue
                for target, value in _assign_pairs(node):
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "costs" or target.id in self._cost_aliases:
                        continue
                    if self._is_costs(value):
                        self._cost_aliases.add(target.id)
                        changed = True

    def _is_costs(self, node):
        """Does this expression denote the cost model object?"""
        dotted = _dotted(node)
        if dotted is None:
            return False
        return (
            dotted == "costs"
            or dotted.endswith(".costs")
            or dotted in self._cost_aliases
        )

    def effects(self, stmt):
        key = id(stmt)
        if key not in self._cache:
            self._cache[key] = tuple(self._effects_from_steps(self.steps(stmt)))
        return self._cache[key]

    def steps(self, stmt):
        key = id(stmt)
        if key not in self._steps_cache:
            self._bindings = self._env_by_stmt.get(id(stmt), {})
            self._steps_cache[key] = tuple(self._extract_steps(stmt))
        return self._steps_cache[key]

    # -- extraction ----------------------------------------------------

    @staticmethod
    def _effects_from_steps(steps):
        for step in steps:
            if step.kind == "arch":
                yield Effect(step.arch, line=step.line)
                continue
            yield Effect(COST, token=step.category, line=step.line)
            if step.category == "save":
                yield Effect(SAVE_OP, token=step.reg_class, line=step.line)
            elif step.category == "restore":
                yield Effect(RESTORE_OP, token=step.reg_class, line=step.line)

    def _extract_steps(self, stmt):
        headers = _header_exprs(stmt)
        roots = [stmt] if headers is None else headers
        for root in roots:
            for node in _iter_shallow(root):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                name = node.func.attr
                if name == "op":
                    yield self._op_step(node)
                elif name in _METHOD_EFFECTS:
                    yield Step(
                        "arch", arch=_METHOD_EFFECTS[name], line=node.lineno
                    )

    def _op_step(self, call):
        category = self._category(call)
        label = _label_pattern(call.args[0]) if call.args else "*"
        if len(call.args) >= 2:
            cost, cost_kind = self._cost_ref(call.args[1])
        else:
            cost, cost_kind = None, COST_EXTERNAL
        reg_class = None
        if category in ("save", "restore"):
            reg_class = self._reg_token(call)
        return Step(
            "op",
            label=label,
            category=category,
            cost=cost,
            cost_kind=cost_kind,
            reg_class=reg_class,
            line=call.lineno,
        )

    @staticmethod
    def _category(call):
        args = call.args
        if len(args) >= 3 and isinstance(args[2], ast.Constant):
            if isinstance(args[2].value, str):
                return args[2].value
        for keyword in call.keywords:
            if keyword.arg == "category" and isinstance(keyword.value, ast.Constant):
                if isinstance(keyword.value.value, str):
                    return keyword.value.value
        return UNKNOWN

    def _cost_ref(self, node):
        """Resolve an op's cost expression to ``(name, kind)``.

        ``name`` is the cost-model attribute the expression charges
        (``"save"``/``"restore"`` for the sweep tables) or None when the
        expression never touches the cost model.
        """
        if isinstance(node, ast.Subscript):
            value = node.value
            if isinstance(value, ast.Attribute) and value.attr in (
                "save",
                "restore",
            ):
                return value.attr, COST_TABLE
            return self._cost_ref(node.value)
        if isinstance(node, ast.Attribute):
            if self._is_costs(node.value):
                return node.attr, COST_FIELD
            return None, COST_EXTERNAL
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and self._is_costs(func.value):
                return func.attr, COST_METHOD
            return None, COST_EXTERNAL
        if isinstance(node, ast.BinOp):
            left = self._cost_ref(node.left)
            if left[0] is not None:
                return left
            right = self._cost_ref(node.right)
            if right[0] is not None:
                return right
            if COST_LITERAL in (left[1], right[1]):
                return None, COST_LITERAL
            return None, COST_EXTERNAL
        if isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float)
        ) and not isinstance(node.value, bool):
            return None, COST_LITERAL
        return None, COST_EXTERNAL

    def _reg_token(self, call):
        """Name the register class a save/restore op moves."""
        # 1. the cost expression: costs.save[reg_class] / costs.restore[...]
        if len(call.args) >= 2:
            cost = call.args[1]
            if (
                isinstance(cost, ast.Subscript)
                and isinstance(cost.value, ast.Attribute)
                and cost.value.attr in ("save", "restore")
            ):
                return self._token_expr(_subscript_index(cost))
        # 2. the label: a literal, "save_%s" % x, or _label("save", x)
        if call.args:
            return self._label_token(call.args[0])
        return UNKNOWN

    def _label_token(self, label):
        if isinstance(label, ast.Constant) and isinstance(label.value, str):
            return _strip_prefix(label.value)
        if isinstance(label, ast.BinOp) and isinstance(label.op, ast.Mod):
            return self._token_expr(label.right)
        if isinstance(label, ast.Call) and len(label.args) >= 2:
            # the _label("save", reg_class) helper idiom
            return self._token_expr(label.args[1])
        return UNKNOWN

    def _token_expr(self, node):
        """A register-class expression -> its token."""
        if isinstance(node, ast.Name):
            return self._bindings.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            # RegClass.GP -> "gp"; reg_class.name.lower() -> the root Name
            root = node
            while isinstance(root, ast.Attribute):
                base = root.value
                if isinstance(base, ast.Name):
                    bound = self._bindings.get(base.id)
                    if bound is not None:
                        return bound
                root = base
            return node.attr.lower()
        if isinstance(node, ast.Call):
            return self._token_expr(node.func)
        if isinstance(node, ast.Subscript):
            # order[i] -> resolve the container being indexed
            return self._token_expr(node.value)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return _strip_prefix(node.value)
        return UNKNOWN


def _label_pattern(label):
    """An op label expression -> a stable pattern string.

    Literal labels pass through; ``"save_%s" % x`` and the
    ``_label("save", x)`` helper idiom collapse their dynamic tail to
    ``*`` so the committed specs stay independent of runtime values.
    """
    if isinstance(label, ast.Constant) and isinstance(label.value, str):
        return label.value
    if isinstance(label, ast.BinOp) and isinstance(label.op, ast.Mod):
        left = label.left
        if isinstance(left, ast.Constant) and isinstance(left.value, str):
            return left.value.replace("%s", "*")
    if isinstance(label, ast.Call) and label.args:
        first = label.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value + "_*"
    return "*"


def _subscript_index(sub):
    index = sub.slice
    # py3.8 wraps subscript indices in ast.Index
    if index.__class__.__name__ == "Index":
        index = index.value
    return index


def _strip_prefix(label):
    for prefix in ("save_", "restore_"):
        if label.startswith(prefix):
            return label[len(prefix):]
    return label if label else UNKNOWN


def iter_functions(tree):
    """Every function in a module tree (methods and nested defs too)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
