"""Abstract effects: what a statement *does* to the modeled machine.

The flow rules do not interpret Python; they pattern-match the small
vocabulary of architectural primitives the model layers are written in:

* costed steps — ``pcpu.op(label, cycles, category)`` — where the
  ``"save"``/``"restore"`` categories carry a *register-class token*
  recovered from the cost expression (``costs.save[reg_class]``) or the
  label literal (``"save_gp_light"``);
* context-image moves — ``arch.save_context(...)`` /
  ``arch.load_context(...)``;
* trap transitions — ``trap_to_el2``/``vmexit`` enter hypervisor
  context, ``eret``/``vmentry`` leave it;
* Stage-2 / virtualization-feature toggles —
  ``disable_virt_features`` / ``enable_virt_features``.

Extraction is *per CFG node*: compound statements contribute only their
header expressions (their bodies are separate nodes), and nested
``def``/``lambda`` bodies are opaque (they get their own analysis).
"""

import ast

# effect kinds
SAVE_OP = "save_op"  # pcpu.op(..., "save") — costed register-class save
RESTORE_OP = "restore_op"  # pcpu.op(..., "restore")
CTX_SAVE = "ctx_save"  # arch.save_context(...)
CTX_LOAD = "ctx_load"  # arch.load_context(...)
TRAP_ENTER = "trap_enter"  # trap_to_el2 / vmexit
TRAP_EXIT = "trap_exit"  # eret / vmentry
VIRT_OFF = "virt_off"  # disable_virt_features
VIRT_ON = "virt_on"  # enable_virt_features
COST = "cost"  # any pcpu.op(...) — a cycle charge

_METHOD_EFFECTS = {
    "save_context": CTX_SAVE,
    "load_context": CTX_LOAD,
    "trap_to_el2": TRAP_ENTER,
    "vmexit": TRAP_ENTER,
    "eret": TRAP_EXIT,
    "vmentry": TRAP_EXIT,
    "disable_virt_features": VIRT_OFF,
    "enable_virt_features": VIRT_ON,
}

#: token used when a save/restore's register class cannot be named
UNKNOWN = "?"


class Effect:
    __slots__ = ("kind", "token", "line")

    def __init__(self, kind, token=None, line=0):
        self.kind = kind
        self.token = token
        self.line = line

    def __repr__(self):
        return "Effect(%s, %r, line %d)" % (self.kind, self.token, self.line)


def _dotted(node):
    """``a.b.c`` -> "a.b.c"; None for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _iter_shallow(node):
    """Walk ``node`` without entering nested function/class bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            stack.append(child)


def _header_exprs(stmt):
    """The expressions evaluated *at* a compound statement's own node."""
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []  # nested definitions are opaque (analyzed on their own)
    return None  # simple statement: walk it whole


class Extractor:
    """Effect extraction for one function, with loop-variable resolution.

    A save inside ``for reg_class in ARM_SWITCH_ORDER:`` is tokenized as
    the *iterable's* dotted name — the whole sweep is one token, so a
    save loop over ``ARM_SWITCH_ORDER`` pairs with a restore loop over
    the same name and nothing else.
    """

    def __init__(self, func):
        self.func = func
        self._loop_bindings = {}
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                iter_name = _dotted(node.iter)
                if iter_name is not None:
                    self._loop_bindings[node.target.id] = iter_name
        self._cache = {}

    def effects(self, stmt):
        key = id(stmt)
        if key not in self._cache:
            self._cache[key] = tuple(self._extract(stmt))
        return self._cache[key]

    # -- extraction ----------------------------------------------------

    def _extract(self, stmt):
        headers = _header_exprs(stmt)
        roots = [stmt] if headers is None else headers
        for root in roots:
            for node in _iter_shallow(root):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                name = node.func.attr
                if name == "op":
                    yield from self._op_effects(node)
                elif name in _METHOD_EFFECTS:
                    yield Effect(_METHOD_EFFECTS[name], line=node.lineno)

    def _op_effects(self, call):
        category = self._category(call)
        line = call.lineno
        yield Effect(COST, token=category, line=line)
        if category == "save":
            yield Effect(SAVE_OP, token=self._reg_token(call), line=line)
        elif category == "restore":
            yield Effect(RESTORE_OP, token=self._reg_token(call), line=line)

    @staticmethod
    def _category(call):
        args = call.args
        if len(args) >= 3 and isinstance(args[2], ast.Constant):
            if isinstance(args[2].value, str):
                return args[2].value
        for keyword in call.keywords:
            if keyword.arg == "category" and isinstance(keyword.value, ast.Constant):
                if isinstance(keyword.value.value, str):
                    return keyword.value.value
        return ""

    def _reg_token(self, call):
        """Name the register class a save/restore op moves."""
        # 1. the cost expression: costs.save[reg_class] / costs.restore[...]
        if len(call.args) >= 2:
            cost = call.args[1]
            if (
                isinstance(cost, ast.Subscript)
                and isinstance(cost.value, ast.Attribute)
                and cost.value.attr in ("save", "restore")
            ):
                return self._token_expr(_subscript_index(cost))
        # 2. the label: a literal, "save_%s" % x, or _label("save", x)
        if call.args:
            return self._label_token(call.args[0])
        return UNKNOWN

    def _label_token(self, label):
        if isinstance(label, ast.Constant) and isinstance(label.value, str):
            return _strip_prefix(label.value)
        if isinstance(label, ast.BinOp) and isinstance(label.op, ast.Mod):
            return self._token_expr(label.right)
        if isinstance(label, ast.Call) and len(label.args) >= 2:
            # the _label("save", reg_class) helper idiom
            return self._token_expr(label.args[1])
        return UNKNOWN

    def _token_expr(self, node):
        """A register-class expression -> its token."""
        if isinstance(node, ast.Name):
            return self._loop_bindings.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            # RegClass.GP -> "gp"; reg_class.name.lower() -> the root Name
            root = node
            while isinstance(root, ast.Attribute):
                base = root.value
                if isinstance(base, ast.Name):
                    bound = self._loop_bindings.get(base.id)
                    if bound is not None:
                        return bound
                root = base
            return node.attr.lower()
        if isinstance(node, ast.Call):
            return self._token_expr(node.func)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return _strip_prefix(node.value)
        return UNKNOWN


def _subscript_index(sub):
    index = sub.slice
    # py3.8 wraps subscript indices in ast.Index
    if index.__class__.__name__ == "Index":
        index = index.value
    return index


def _strip_prefix(label):
    for prefix in ("save_", "restore_"):
        if label.startswith(prefix):
            return label[len(prefix):]
    return label if label else UNKNOWN


def iter_functions(tree):
    """Every function in a module tree (methods and nested defs too)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
