"""Per-function control-flow graphs over stdlib ``ast``.

The flow rules (SYM001/SYM002/FLW001) need to reason about *paths*, not
lines: "is there a way through this world-switch function that saves the
VGIC state but returns before restoring it?".  This module builds a
statement-level CFG for one function and enumerates its acyclic paths.

Design points, chosen for the shapes that actually occur in the model
layers (costed generators full of ``yield``/``yield from``, early
returns, ``try/finally`` cleanup):

* Nodes are statement occurrences.  ``finally`` bodies are *duplicated*
  per exit kind (normal, return, raise, break, continue) — the textbook
  trick that keeps path enumeration a plain graph walk.
* Loops are traversed acyclically: every edge is used at most once per
  path, so a loop body contributes zero-or-one iterations.  That is
  exactly the right abstraction for pairing checks (a save inside a
  loop pairs with a restore inside the same or a later loop; iteration
  counts are a cost question, not a shape question).
* ``except`` handlers are entered from two points: the top of the
  ``try`` body (the body failed immediately) and its end (it failed
  late).  Implicit exceptions at arbitrary interior points are not
  modeled; explicit ``raise`` statements are exact.
* Nested ``def``/``class`` statements are opaque single nodes — the
  nested function gets its own CFG when the caller asks for it.
* Generator functions need nothing special: ``yield`` is just an
  expression, and the DES drives the paths we enumerate.

Every path carries a *terminator*: ``"return"``, ``"raise"``, or
``"fall"`` (off the end), plus the statement that caused the escape —
which is what lets SYM002 say "this trap entry leaks through the
``return`` on line N".
"""

import ast

#: path terminators
RETURN, RAISE, FALL = "return", "raise", "fall"


class Node:
    """One statement occurrence in the graph (synthetic for entry/exits)."""

    __slots__ = ("index", "stmt", "kind", "succ")

    def __init__(self, index, stmt=None, kind="stmt"):
        self.index = index
        self.stmt = stmt
        self.kind = kind  # "entry" | "stmt" | RETURN | RAISE | FALL
        self.succ = []

    @property
    def line(self):
        return self.stmt.lineno if self.stmt is not None else 0

    def __repr__(self):
        what = type(self.stmt).__name__ if self.stmt is not None else self.kind
        return "Node(%d, %s, line %d)" % (self.index, what, self.line)


class Path:
    """One acyclic walk: the statement nodes plus how the walk ended."""

    __slots__ = ("nodes", "terminator", "escape")

    def __init__(self, nodes, terminator, escape):
        self.nodes = nodes
        self.terminator = terminator  # RETURN | RAISE | FALL
        #: the Return/Raise statement node that ended the path (None for FALL)
        self.escape = escape

    @property
    def escape_line(self):
        return self.escape.line if self.escape is not None else 0

    def __repr__(self):
        return "Path(%d stmts, %s)" % (len(self.nodes), self.terminator)


class Cfg:
    """The graph for one function: entry node, exit nodes, all nodes."""

    def __init__(self, func):
        self.func = func
        self.nodes = []
        self.entry = self._new(None, "entry")
        self.return_exit = self._new(None, RETURN)
        self.raise_exit = self._new(None, RAISE)
        self.fall_exit = self._new(None, FALL)
        #: set when path enumeration hit its budget (rules then stay quiet
        #: rather than reporting on a partial path set)
        self.truncated = False

    def _new(self, stmt, kind="stmt"):
        node = Node(len(self.nodes), stmt, kind)
        self.nodes.append(node)
        return node

    # ------------------------------------------------------------------
    # path enumeration

    def iter_paths(self, max_paths=2000):
        """Yield every acyclic :class:`Path` (each edge used at most once).

        Stops — and marks ``self.truncated`` — after ``max_paths`` paths,
        so pathological functions degrade to "not analyzed" instead of
        hanging the linter.
        """
        exits = {self.return_exit, self.raise_exit, self.fall_exit}
        emitted = 0
        # stack entries: (node, edge-index to try next, used-edge set is
        # maintained incrementally alongside the stack)
        stack = [(self.entry, 0)]
        trail = [self.entry]
        used = set()

        while stack:
            node, edge_index = stack[-1]
            if node in exits:
                emitted += 1
                if emitted > max_paths:
                    self.truncated = True
                    return
                yield self._snapshot(trail, node)
                self._pop(stack, trail, used)
                continue
            if edge_index >= len(node.succ):
                if not node.succ and node is not self.entry:
                    # dangling node (unreachable continuation) — treat as fall
                    emitted += 1
                    if emitted > max_paths:
                        self.truncated = True
                        return
                    yield self._snapshot(trail, self.fall_exit)
                self._pop(stack, trail, used)
                continue
            stack[-1] = (node, edge_index + 1)
            edge = (node.index, edge_index)
            if edge in used:
                continue
            used.add(edge)
            successor = node.succ[edge_index]
            stack.append((successor, 0))
            trail.append(successor)

    def _snapshot(self, trail, exit_node):
        nodes = tuple(n for n in trail if n.kind == "stmt")
        escape = None
        if exit_node.kind in (RETURN, RAISE):
            for node in reversed(nodes):
                if isinstance(node.stmt, (ast.Return, ast.Raise)):
                    escape = node
                    break
        return Path(nodes, exit_node.kind if exit_node.kind != "entry" else FALL, escape)

    @staticmethod
    def _pop(stack, trail, used):
        node, _ = stack.pop()
        if trail and trail[-1] is node:
            trail.pop()
        if stack:
            parent, next_index = stack[-1]
            used.discard((parent.index, next_index - 1))


class _Frame:
    """One level of lexical control context during the build."""

    __slots__ = ("kind", "after", "head", "finalbody")

    def __init__(self, kind, after=None, head=None, finalbody=None):
        self.kind = kind  # "loop" | "finally"
        self.after = after  # loop: the break target
        self.head = head  # loop: the continue target
        self.finalbody = finalbody  # finally: stmt list to splice


class _Builder:
    def __init__(self, cfg):
        self.cfg = cfg

    def build(self, body):
        tails = self._block(body, [self.cfg.entry], [])
        self._connect(tails, self.cfg.fall_exit)

    # -- plumbing ------------------------------------------------------

    def _connect(self, tails, target):
        for tail in tails:
            tail.succ.append(target)

    def _block(self, stmts, tails, frames):
        """Wire ``stmts`` after ``tails``; returns the new loose ends."""
        for stmt in stmts:
            if not tails:
                break  # unreachable code after return/raise/break
            tails = self._statement(stmt, tails, frames)
        return tails

    def _statement(self, stmt, tails, frames):
        node = self.cfg._new(stmt)
        self._connect(tails, node)
        if isinstance(stmt, ast.Return):
            self._abrupt(node, frames, None, self.cfg.return_exit)
            return []
        if isinstance(stmt, ast.Raise):
            self._abrupt(node, frames, None, self.cfg.raise_exit)
            return []
        if isinstance(stmt, ast.Break):
            loop = self._abrupt(node, frames, "loop", None)
            if loop is not None:
                pass  # _abrupt already connected to loop.after
            return []
        if isinstance(stmt, ast.Continue):
            self._abrupt(node, frames, "loop", None, to_head=True)
            return []
        if isinstance(stmt, ast.If):
            then_tails = self._block(stmt.body, [node], frames)
            if stmt.orelse:
                else_tails = self._block(stmt.orelse, [node], frames)
            else:
                else_tails = [node]
            return then_tails + else_tails
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._loop(stmt, node, frames)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, node, frames)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._block(stmt.body, [node], frames)
        # plain statement (incl. nested def/class, which stay opaque)
        return [node]

    def _loop(self, stmt, head, frames):
        # a lightweight join point: collect everything that exits the loop
        join = self.cfg._new(None, "join")
        frame = _Frame("loop", after=join, head=head)
        body_tails = self._block(stmt.body, [head], frames + [frame])
        self._connect(body_tails, head)  # back edge (a dead end: bounds paths)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            # `for` bodies run exactly once in the path abstraction: the
            # model's for-loops sweep non-empty register-class lists, and
            # a zero-iteration edge would fabricate save/restore
            # imbalance paths that cannot occur.  `while` keeps the
            # zero-iteration edge (the condition may be false at entry).
            if stmt.orelse:
                tails = self._block(stmt.orelse, list(body_tails), frames)
                self._connect(tails, join)
            else:
                self._connect(body_tails, join)
        else:
            if stmt.orelse:
                else_tails = self._block(stmt.orelse, [head], frames)
                self._connect(else_tails, join)
            else:
                head.succ.append(join)  # zero-iteration / loop-done edge
        return [join]

    def _try(self, stmt, node, frames):
        inner = frames + (
            [_Frame("finally", finalbody=stmt.finalbody)] if stmt.finalbody else []
        )
        body_tails = self._block(stmt.body, [node], inner)
        handler_tails = []
        for handler in stmt.handlers:
            # entered from the top of the body (failed immediately)...
            entry_tails = self._block(handler.body, [node], inner)
            handler_tails.extend(entry_tails)
            # ...and from its end (failed late), when the body completes
            if body_tails:
                late_tails = self._block(handler.body, list(body_tails), inner)
                handler_tails.extend(late_tails)
        if stmt.orelse:
            body_tails = self._block(stmt.orelse, body_tails, inner)
        tails = list(body_tails) + handler_tails
        if stmt.finalbody:
            tails = self._block(stmt.finalbody, tails, frames)
        return tails

    def _abrupt(self, node, frames, stop_kind, exit_node, to_head=False):
        """Route an abrupt exit through enclosing ``finally`` bodies.

        ``stop_kind`` == "loop" stops the unwind at the innermost loop
        (break/continue); otherwise unwinds everything to ``exit_node``.
        """
        tails = [node]
        for frame in reversed(frames):
            if frame.kind == "finally":
                tails = self._block(frame.finalbody, tails, [])
            elif frame.kind == "loop" and stop_kind == "loop":
                self._connect(tails, frame.head if to_head else frame.after)
                return frame
        if stop_kind == "loop":
            # break/continue outside a loop: syntactically invalid; treat
            # as falling off the end so the walk still terminates.
            self._connect(tails, self.cfg.fall_exit)
            return None
        self._connect(tails, exit_node)
        return None


def build_cfg(func):
    """Build the :class:`Cfg` for one ``FunctionDef``/``AsyncFunctionDef``."""
    cfg = Cfg(func)
    _Builder(cfg).build(func.body)
    return cfg
