"""Flow-sensitive analysis: per-function CFGs + architectural effects.

Shared machinery for the path-symmetry rules (SYM001, SYM002, FLW001):
:mod:`repro.analysis.flow.cfg` builds the control-flow graph and
enumerates acyclic paths; :mod:`repro.analysis.flow.effects` maps
statements to the architectural primitives they invoke.
"""

from repro.analysis.flow.cfg import build_cfg
from repro.analysis.flow.effects import Extractor, iter_functions

__all__ = ["build_cfg", "Extractor", "iter_functions"]
