"""A CFS-like process scheduler model for guest/host kernels.

Used by workload models that are scheduler-heavy (hackbench) and by the
application benchmark runner to account run-queue behavior when many
tasks share the 4 VCPUs of the paper's test configuration.
"""

from repro.errors import ConfigurationError

#: CFS NICE_0_LOAD: the weight of a nice-0 task; vruntime advances at
#: real time scaled by NICE_0_LOAD / weight.
NICE_0_LOAD = 1024.0


class Task:
    """A schedulable entity with CFS-style virtual runtime."""

    __slots__ = ("name", "weight", "vruntime", "runnable")

    def __init__(self, name, weight=1024):
        if weight <= 0:
            raise ConfigurationError("task weight must be positive")
        self.name = name
        self.weight = weight
        self.vruntime = 0.0
        self.runnable = True


class CfsScheduler:
    """Weighted-fair pick-next over a set of tasks on N CPUs."""

    def __init__(self, num_cpus):
        if num_cpus < 1:
            raise ConfigurationError("need at least one CPU")
        self.num_cpus = num_cpus
        self._tasks = {}
        self.switches = 0

    def add_task(self, task):
        if task.name in self._tasks:
            raise ConfigurationError("duplicate task %r" % task.name)
        self._tasks[task.name] = task

    def remove_task(self, name):
        self._tasks.pop(name, None)

    def wake(self, name):
        self._tasks[name].runnable = True

    def sleep(self, name):
        self._tasks[name].runnable = False

    def runnable_tasks(self):
        return [task for task in self._tasks.values() if task.runnable]

    def pick_next(self):
        """Minimum-vruntime runnable task (ties by name for determinism)."""
        runnable = self.runnable_tasks()
        if not runnable:
            return None
        self.switches += 1
        return min(runnable, key=lambda task: (task.vruntime, task.name))

    def account(self, task, cycles):
        """Charge ``cycles`` of CPU to ``task`` (weight-scaled vruntime)."""
        task.vruntime += cycles * NICE_0_LOAD / task.weight

    def load(self):
        """Runnable tasks per CPU — >1 means the run queues are saturated."""
        return len(self.runnable_tasks()) / self.num_cpus
