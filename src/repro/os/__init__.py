"""Operating-system model: the Linux-like kernel both hosts and guests run.

The workloads only exercise the kernel through costed paths (syscalls,
scheduler operations, network-stack traversals, driver work); this package
is the single home of those costs.
"""

from repro.os.netstack import NetstackModel
from repro.os.kernel import KernelModel
from repro.os.sched import CfsScheduler

__all__ = ["CfsScheduler", "KernelModel", "NetstackModel"]
