"""Kernel cost model: syscalls, faults, and scheduler-visible operations.

These are the per-event costs the workload models multiply by their event
mixes.  Expressed in nanoseconds (Linux 4.0-era costs on server-class
cores) and converted per platform.
"""

import dataclasses


@dataclasses.dataclass
class KernelCostsNs:
    syscall: float = 180.0
    process_switch: float = 1400.0
    #: futex/pipe wake of a sleeping task on the same machine
    local_wakeup: float = 900.0
    page_fault: float = 1100.0
    #: one scheduler rebalancing IPI handled natively
    resched_ipi: float = 700.0
    fork_exec: float = 220000.0


class KernelModel:
    """Cycle-cost view of kernel operations for one platform."""

    def __init__(self, clock, costs_ns=None):
        self.clock = clock
        self.ns = costs_ns if costs_ns is not None else KernelCostsNs()

    def syscall_cycles(self):
        return self.clock.cycles_from_ns(self.ns.syscall)

    def process_switch_cycles(self):
        return self.clock.cycles_from_ns(self.ns.process_switch)

    def local_wakeup_cycles(self):
        return self.clock.cycles_from_ns(self.ns.local_wakeup)

    def page_fault_cycles(self):
        return self.clock.cycles_from_ns(self.ns.page_fault)

    def resched_ipi_cycles(self):
        return self.clock.cycles_from_ns(self.ns.resched_ipi)

    def fork_exec_cycles(self):
        return self.clock.cycles_from_ns(self.ns.fork_exec)
