"""Process-level execution on simulated CPUs.

A :class:`VcpuExecutor` serializes work items on one (V)CPU — the
queueing effects (tasks waiting behind interrupt processing, idle gaps
while a partner runs elsewhere) emerge from the discrete-event engine
rather than being folded into closed-form averages.

Used by the process-level hackbench simulation to cross-validate the
closed-form Figure 4 model.
"""

from repro.sim import Channel, Timeout


class VcpuExecutor:
    """One CPU's serialized work queue."""

    def __init__(self, engine, name):
        self.engine = engine
        self.name = name
        self._channel = Channel(engine, "%s.work" % name)
        self.busy_cycles = 0
        self.items = 0
        self._proc = engine.spawn(self._run(), name="%s.executor" % name)

    def submit(self, cycles, done_event=None):
        """Queue ``cycles`` of work; ``done_event`` fires on completion."""
        self._channel.put((cycles, done_event))

    def _run(self):
        while True:
            cycles, done = yield from self._channel.get()
            yield Timeout(cycles)
            self.busy_cycles += cycles
            self.items += 1
            if done is not None:
                done.fire(self.engine.now)

    @property
    def queue_depth(self):
        return len(self._channel)


class ExecutorPool:
    """N executors with round-robin task placement."""

    def __init__(self, engine, count, prefix="cpu"):
        self.executors = [
            VcpuExecutor(engine, "%s%d" % (prefix, index)) for index in range(count)
        ]

    def __len__(self):
        return len(self.executors)

    def __getitem__(self, index):
        return self.executors[index % len(self.executors)]

    def total_busy_cycles(self):
        return sum(executor.busy_cycles for executor in self.executors)
