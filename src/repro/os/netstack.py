"""Network stack cost model (Linux 4.0-era, 10 GbE).

Calibration anchor: paper Table V's *native* decomposition — a TCP_RR
transaction spends 14.5 us on the server (receive -> send), which we split
into IRQ+receive-stack, application socket turnaround, and transmit-stack
components.  Virtualized configurations add the host-side bridge/tap path
(KVM) or Dom0 bridging (Xen) on top.

Costs are expressed in nanoseconds (constant work, independent of CPU
frequency differences between our two platforms) and converted to cycles
through the platform clock.
"""

import dataclasses

from repro.errors import ConfigurationError


@dataclasses.dataclass
class NetstackCostsNs:
    """Per-packet path costs in nanoseconds."""

    #: NIC IRQ handling + driver rx + IP/TCP receive processing
    irq_rx_stack: float = 6000.0
    #: socket wakeup + application read()+write() turnaround (netperf RR)
    app_turnaround: float = 2500.0
    #: TCP/IP transmit processing + driver tx + doorbell
    tx_stack: float = 6000.0
    #: host-only: bridge + tap traversal on the receive path
    bridge_rx: float = 8000.0
    #: host-only: tap + bridge traversal on the transmit path
    bridge_tx: float = 6000.0
    #: per-64KB-segment cost for bulk streams (TSO/GRO amortized)
    bulk_segment: float = 9000.0
    #: netperf client: response received -> next request on the wire
    client_turnaround: float = 25000.0


class NetstackModel:
    """Cycle-cost view of the stack for one platform."""

    def __init__(self, clock, costs_ns=None):
        if clock is None:
            raise ConfigurationError("netstack model needs the platform clock")
        self.clock = clock
        self.ns = costs_ns if costs_ns is not None else NetstackCostsNs()

    # --- per-packet paths (latency benchmarks) ----------------------------

    def host_rx_cycles(self):
        """NIC IRQ + receive stack in the host/Dom0."""
        return self.clock.cycles_from_ns(self.ns.irq_rx_stack)

    def host_tx_cycles(self):
        return self.clock.cycles_from_ns(self.ns.tx_stack)

    def bridge_cycles(self):
        """Bridge+tap on the host receive path (toward the VM)."""
        return self.clock.cycles_from_ns(self.ns.bridge_rx)

    def bridge_tx_cycles(self):
        return self.clock.cycles_from_ns(self.ns.bridge_tx)

    def guest_rx_cycles(self):
        """The guest's own receive stack (same kernel, same work)."""
        return self.clock.cycles_from_ns(self.ns.irq_rx_stack)

    def guest_tx_cycles(self):
        return self.clock.cycles_from_ns(self.ns.tx_stack)

    def app_turnaround_cycles(self):
        return self.clock.cycles_from_ns(self.ns.app_turnaround)

    def native_recv_to_send_cycles(self):
        """The whole native server-side path of one RR transaction."""
        return self.host_rx_cycles() + self.app_turnaround_cycles() + self.host_tx_cycles()

    def client_turnaround_cycles(self):
        """Client-side processing between response and next request."""
        return self.clock.cycles_from_ns(self.ns.client_turnaround)

    # --- bulk streaming (throughput benchmarks) -------------------------------

    def bulk_segment_cycles(self):
        """CPU cost to move one 64 KB TSO segment through the stack."""
        return self.clock.cycles_from_ns(self.ns.bulk_segment)
