"""virtio-net frontend: the guest driver for KVM's paravirtual NIC.

Guest-side per-packet work beyond the plain stack: descriptor setup on
tx, used-ring reaping + skb wrap on rx.  Table V shows the VM-internal
transaction time only ~2.4 us above native; this driver contributes the
bulk of that delta (the doorbell trap itself is charged by the
hypervisor's kick path).
"""

import dataclasses


@dataclasses.dataclass
class VirtioDriverCostsNs:
    tx_descriptor: float = 1200.0
    rx_reap: float = 1200.0


class VirtioNetFrontend:
    """Cost view of the guest virtio-net driver."""

    name = "virtio-net"

    def __init__(self, clock, costs_ns=None):
        self.clock = clock
        self.ns = costs_ns if costs_ns is not None else VirtioDriverCostsNs()
        self.tx_count = 0
        self.rx_count = 0

    def tx_cycles(self):
        self.tx_count += 1
        return self.clock.cycles_from_ns(self.ns.tx_descriptor)

    def rx_cycles(self):
        self.rx_count += 1
        return self.clock.cycles_from_ns(self.ns.rx_reap)
