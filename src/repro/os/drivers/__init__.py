"""Guest-side paravirtual drivers and the host physical NIC driver."""

from repro.os.drivers.virtio_net import VirtioNetFrontend
from repro.os.drivers.xen_netfront import XenNetfront

__all__ = ["VirtioNetFrontend", "XenNetfront"]
