"""xen-netfront: the DomU driver for Xen PV networking.

Heavier per-packet guest work than virtio: every buffer must be *granted*
before the backend may touch it (grant allocation + ref bookkeeping on
tx, grant revoke + reap on rx).  Table V shows the Xen VM-internal time
~2.9 us above native vs virtio's ~2.4 us.
"""

import dataclasses


@dataclasses.dataclass
class NetfrontCostsNs:
    tx_grant_and_descriptor: float = 1450.0
    rx_revoke_and_reap: float = 1450.0


class XenNetfront:
    """Cost view of the DomU netfront driver."""

    name = "xen-netfront"

    def __init__(self, clock, costs_ns=None):
        self.clock = clock
        self.ns = costs_ns if costs_ns is not None else NetfrontCostsNs()
        self.tx_count = 0
        self.rx_count = 0

    def tx_cycles(self):
        self.tx_count += 1
        return self.clock.cycles_from_ns(self.ns.tx_grant_and_descriptor)

    def rx_cycles(self):
        self.rx_count += 1
        return self.clock.cycles_from_ns(self.ns.rx_revoke_and_reap)
