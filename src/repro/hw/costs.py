"""Calibrated primitive cycle costs — the only paper-derived constants.

Discipline (see DESIGN.md): every constant here is a *primitive* — the cost
of one architectural or software step — never a composed result.  Paper
Table II/V/Figure 4 numbers must emerge from executing hypervisor paths
built from these primitives on the simulator.

Calibration sources:

* ARM per-register-class save/restore costs: paper Table III (measured on
  the HP m400's APM X-Gene at 2.4 GHz).
* Trap/eret, emulation, IPI, scheduler and I/O-stack primitives: fitted so
  the *composed* paths land near paper Tables II and V, while staying
  individually plausible (e.g. an EL1->EL2 trap is O(100) cycles, a Linux
  scheduler wakeup is O(1000)s of cycles).

All costs are integers (cycles of the owning platform's CPU).
"""

import contextlib
import dataclasses

from repro.errors import ConfigurationError
from repro.hw.cpu.registers import RegClass


@dataclasses.dataclass
class ArmCosts:
    """Primitive costs for the ARMv8 (m400-like) platform."""

    # --- hardware exception mechanics -----------------------------------
    #: hvc/data-abort/IRQ trap from EL1/EL0 into EL2 (pipeline flush + vector)
    trap_to_el2: int = 76
    #: eret from EL2 back into EL1/EL0
    eret_to_el1: int = 64
    #: enabling *or* disabling the EL2 virtualization features
    #: (HCR_EL2 traps + Stage-2 translation) on a split-mode switch
    virt_feature_toggle: int = 115

    # --- register-class save/restore (paper Table III) ------------------
    save: dict = dataclasses.field(
        default_factory=lambda: {
            RegClass.GP: 152,
            RegClass.FP: 282,
            RegClass.EL1_SYS: 230,
            RegClass.VGIC: 3250,
            RegClass.TIMER: 104,
            RegClass.EL2_CONFIG: 92,
            RegClass.EL2_VIRTUAL_MEMORY: 92,
        }
    )
    restore: dict = dataclasses.field(
        default_factory=lambda: {
            RegClass.GP: 184,
            RegClass.FP: 310,
            RegClass.EL1_SYS: 511,
            RegClass.VGIC: 181,
            RegClass.TIMER: 106,
            RegClass.EL2_CONFIG: 107,
            RegClass.EL2_VIRTUAL_MEMORY: 107,
        }
    )

    # --- light (Type 1) switch: Xen keeps its own EL2 register bank -----
    #: pushing the guest GP registers onto Xen's EL2 stack
    gp_save_light: int = 76
    #: popping them back on exception return
    gp_restore_light: int = 88

    # --- hypervisor software dispatch ------------------------------------
    #: Xen's hypercall/trap dispatch inside EL2
    xen_dispatch: int = 72
    #: KVM host-side exit handler: EL2 trampoline return -> kvm run loop
    kvm_exit_dispatch: int = 282
    #: VHE KVM's exit dispatch: the handler already runs in EL2 next to
    #: the trap vector, no lowvisor/highvisor bouncing
    kvm_vhe_dispatch: int = 150
    #: a no-op hypercall handler body
    hypercall_body: int = 30
    #: decoding a Stage-2 data-abort syndrome into an MMIO emulation call
    mmio_decode: int = 290

    # --- GIC emulation and virtual interrupts ----------------------------
    #: emulating an ordinary distributor register access
    gic_dist_access: int = 620
    #: extra work for Xen's distributor emulation (vgic locking in EL2)
    gic_dist_access_xen_extra: int = 70
    #: emulating a GICD_SGIR write (send SGI: resolve targets, lock vcpus)
    gic_sgi_emulate: int = 260
    #: Xen-only slow path on SGI emulation: vgic rank locking + vcpu_kick
    #: bookkeeping inside EL2 (Xen 4.5's vgic was known to be lock-heavy)
    xen_sgi_slowpath: int = 1900
    #: Xen-only slow path when injecting a virq from a physical interrupt:
    #: do_IRQ -> vgic_vcpu_inject_irq -> maintenance bookkeeping
    xen_inject_slowpath: int = 1400
    #: Xen ARM vcpu_unblock on event delivery: runqueue insertion plus the
    #: vgic/vtimer pending-state scan Xen 4.5 performed when kicking a
    #: blocked VCPU (ARM-specific; the x86 wake path had no vgic scan)
    xen_vcpu_wake_slowpath: int = 5400
    #: acknowledging a physical interrupt (GICC_IAR read) in the hypervisor
    gic_phys_ack: int = 320
    #: writing a list register to inject one virtual interrupt
    virq_inject_lr: int = 180
    #: software bookkeeping to mark a virq pending for a target VCPU
    virq_set_pending: int = 90
    #: guest completing a virtual IRQ via the GICV interface (NO trap) —
    #: the paper measures 71 cycles for this hardware-assisted completion.
    #: This one cell of Table II *is* a primitive: the operation never
    #: leaves the guest, so the published number is the hardware cost.
    virq_complete_hw: int = 71  # repro-lint: ignore[CAL001]
    #: guest exception entry to its own IRQ handler
    guest_irq_entry: int = 150

    # --- cross-CPU signaling ---------------------------------------------
    #: physical IPI propagation between PCPUs through the GIC
    ipi_wire: int = 430

    # --- schedulers -------------------------------------------------------
    #: Xen credit-scheduler pick + accounting on a domain switch
    xen_sched_pick: int = 340
    #: additional Xen per-domain context (vtimer migration, pending-irq
    #: rescan, Stage-2/VMID bookkeeping) beyond the register file itself
    xen_ctx_extra: int = 2300
    #: Linux host: switching between two VCPU threads (full process switch)
    host_thread_switch: int = 3400
    #: Linux host: waking a blocked VCPU/vhost thread on another CPU —
    #: wake_up + scheduler IPI + idle exit + runqueue work on the far side
    sched_wakeup: int = 7800

    # --- paravirtual I/O signaling ----------------------------------------
    #: KVM ioeventfd: doorbell write resolved in the host into an eventfd
    eventfd_signal: int = 400
    #: vhost worker dequeue once signaled
    vhost_dequeue: int = 150
    #: Xen: marking an event-channel pending + evtchn bookkeeping in EL2
    evtchn_send: int = 400
    #: Xen: guest-side upcall into the evtchn handler (Dom0 or DomU kernel)
    evtchn_upcall: int = 800
    #: Dom0 netback: softirq schedule + ring dequeue until the signal is
    #: observed by the backend
    netback_kick: int = 1800

    # --- memory-system primitives -----------------------------------------
    #: grant-table map or unmap of one foreign page (hypercall + page-table
    #: update; the paper pins a whole one-byte grant copy at >3 us)
    grant_map: int = 3300
    grant_unmap: int = 3300
    #: memcpy per byte (bulk, cache-warm): ~16 bytes/cycle
    copy_per_byte_num: int = 1  # repro-lint: ignore[SPEC002] -- consumed via copy_cycles(), not an op step
    copy_per_byte_den: int = 16  # repro-lint: ignore[SPEC002] -- consumed via copy_cycles(), not an op step
    #: fixed overhead per copy (function call, ring bookkeeping)
    copy_setup: int = 260  # repro-lint: ignore[SPEC002] -- consumed via copy_cycles(), not an op step
    #: one Stage-2 page-table walk (TLB miss) per level
    stage2_walk_per_level: int = 30  # repro-lint: ignore[SPEC002] -- consumed by the workload fault model, not a switch path
    #: broadcast TLB invalidate (ARM has hardware broadcast: DVM message)
    tlb_invalidate_broadcast: int = 190  # repro-lint: ignore[SPEC002] -- consumed by the grant-unmap shootdown model

    def full_save_cycles(self):
        return sum(self.save.values())

    def full_restore_cycles(self):
        return sum(self.restore.values())

    def copy_cycles(self, nbytes):
        """Cycles to copy ``nbytes`` of payload."""
        return self.copy_setup + (nbytes * self.copy_per_byte_num) // self.copy_per_byte_den


@dataclasses.dataclass
class X86Costs:
    """Primitive costs for the x86 (r320-like) platform.

    x86 transitions move the whole CPU state to/from the VMCS in memory,
    but the transfer is performed *by hardware* as part of vmexit/vmentry
    — so there are no per-register-class software costs here; the split
    is instead exit/entry hardware costs plus software dispatch.
    """

    #: hardware vmexit: non-root -> root, state to VMCS
    vmexit_hw: int = 520
    #: hardware vmentry: root -> non-root, state from VMCS
    vmentry_hw: int = 610
    #: KVM's exit-reason dispatch in the host kernel
    kvm_exit_dispatch: int = 140
    #: Xen's exit dispatch
    xen_dispatch: int = 80
    hypercall_body: int = 30
    #: decoding an APIC-access exit into an emulation call
    mmio_decode: int = 190

    # --- APIC emulation ----------------------------------------------------
    #: KVM in-kernel LAPIC register emulation
    apic_access_kvm: int = 1040
    #: Xen vlapic register emulation
    apic_access_xen: int = 400
    #: emulating an ICR write (send IPI): resolve target, set IRR
    apic_ipi_emulate: int = 1400
    #: host-side acknowledgement/dispatch of a physical IPI that arrived
    #: while a VM was running (external-interrupt exit handling)
    apic_phys_ack: int = 800
    #: injecting a pending interrupt on vmentry (event injection field)
    virq_inject: int = 210
    #: software bookkeeping to mark a virq pending for a target VCPU
    virq_set_pending: int = 90
    #: EOI write emulation (the x86 completion *traps*, unlike ARM's 71)
    eoi_emulate_kvm: int = 426
    eoi_emulate_xen: int = 334
    #: with vAPIC (APICv) hardware support: EOI completes without a trap
    virq_complete_vapic: int = 80
    guest_irq_entry: int = 160

    ipi_wire: int = 520

    # --- schedulers ---------------------------------------------------------
    xen_sched_pick: int = 360
    #: Xen x86 per-domain context beyond the VMCS itself (FPU, MSRs,
    #: vlapic timers, shadow state) — the paper measures Xen x86 VM
    #: switches at 2x KVM's
    xen_ctx_extra: int = 7900
    #: loading another VMCS (vmptrld + segment/MSR reload in software)
    vmcs_switch: int = 640
    host_thread_switch: int = 2900
    #: remote thread wakeup incl. deep C-state idle exit on the r320 Xeon
    sched_wakeup: int = 13000

    # --- paravirtual I/O signaling -------------------------------------------
    #: ioeventfd fast path: the doorbell exit is resolved without a full
    #: round trip into userspace; cost beyond vmexit_hw itself
    eventfd_signal: int = 40
    vhost_dequeue: int = 150
    evtchn_send: int = 260
    evtchn_upcall: int = 400
    netback_kick: int = 900

    #: (1300 coincidentally equals Table II's Hypercall kvm-x86 cell; this
    #: is the x86 grant-map primitive, fitted independently of it)
    grant_map: int = 1300  # repro-lint: ignore[CAL001]
    grant_unmap: int = 2400  # includes the IPI TLB-shootdown burden (no
    # broadcast invalidate on x86 — why zero-copy was abandoned there)
    copy_per_byte_num: int = 1  # repro-lint: ignore[SPEC002] -- consumed via copy_cycles(), not an op step
    copy_per_byte_den: int = 16  # repro-lint: ignore[SPEC002] -- consumed via copy_cycles(), not an op step
    copy_setup: int = 240  # repro-lint: ignore[SPEC002] -- consumed via copy_cycles(), not an op step
    stage2_walk_per_level: int = 28  # repro-lint: ignore[SPEC002] -- consumed by the workload fault model, not a switch path
    #: x86 remote TLB invalidate requires an IPI per target CPU
    tlb_invalidate_ipi: int = 1450  # repro-lint: ignore[SPEC002] -- consumed by the grant-unmap shootdown model

    def copy_cycles(self, nbytes):
        return self.copy_setup + (nbytes * self.copy_per_byte_num) // self.copy_per_byte_den


def arm_costs():
    """Fresh (mutable) ARM cost model — default calibration plus any
    active what-if overrides (see :func:`overriding`)."""
    costs = ArmCosts()
    if _ACTIVE_OVERRIDES:
        _apply_section(costs, _ACTIVE_OVERRIDES.get("arm") or {})
    return costs


def x86_costs():
    """Fresh (mutable) x86 cost model — default calibration plus any
    active what-if overrides (see :func:`overriding`)."""
    costs = X86Costs()
    if _ACTIVE_OVERRIDES:
        _apply_section(costs, _ACTIVE_OVERRIDES.get("x86") or {})
    return costs


# --- what-if overrides ------------------------------------------------------
#
# A what-if query ("how does Table II move if trap_to_el2 doubled?")
# needs a *scoped* recalibration: every cost table built while the query
# simulates must carry the overridden primitives, and nothing outside
# the query may observe them.  Overrides are expressed as a document
#
#     {"arm": {"trap_to_el2": 152, "save.GP": 200}, "x86": {...}}
#
# where a plain key names a scalar dataclass field and a dotted
# ``save.<CLASS>`` / ``restore.<CLASS>`` key names one register class of
# the Table III sweep dicts.  ``repro.runner.cells`` installs a document
# around one cell execution (the document travels inside the cell's
# parameters, so spawned workers and the content-addressed cache key see
# exactly what the parent sees).

#: the override sections that address into a dict field (RegClass-keyed)
_DICT_FIELDS = ("save", "restore")

#: the currently installed override document (None = pure defaults)
_ACTIVE_OVERRIDES = None


def _override_targets(arch):
    """(prototype instance, arch label) for one override section."""
    if arch == "arm":
        return ArmCosts()
    if arch == "x86":
        return X86Costs()
    raise ConfigurationError(
        "unknown cost-override arch %r (expected 'arm' or 'x86')" % (arch,)
    )


def _check_value(arch, field, value):
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            "cost override %s.%s must be an integer, got %r" % (arch, field, value)
        )
    if value < 0:
        raise ConfigurationError(
            "cost override %s.%s must be >= 0, got %d" % (arch, field, value)
        )


def _resolve_field(prototype, arch, field):
    """Validate that ``field`` addresses a real primitive; returns a key."""
    if "." in field:
        table_name, _, reg_name = field.partition(".")
        if table_name not in _DICT_FIELDS or not isinstance(
            getattr(prototype, table_name, None), dict
        ):
            raise ConfigurationError(
                "cost override %s.%s does not name a register-class table"
                % (arch, field)
            )
        try:
            RegClass[reg_name]
        except KeyError:
            raise ConfigurationError(
                "cost override %s.%s: unknown register class %r (expected one "
                "of %s)" % (arch, field, reg_name, [c.name for c in RegClass])
            )
        return field
    if not hasattr(prototype, field) or not isinstance(
        getattr(prototype, field), int
    ):
        raise ConfigurationError(
            "cost override %s.%s does not name a scalar cost primitive"
            % (arch, field)
        )
    return field


def validate_overrides(document):
    """Check a what-if override document; returns its canonical form.

    The canonical form has sorted arch sections and sorted field names,
    so two equivalent documents serialize identically (the cell cache
    key and the service query key both depend on this).  Raises
    :class:`~repro.errors.ConfigurationError` on any unknown arch,
    field, register class, or non-integer value.
    """
    if not isinstance(document, dict):
        raise ConfigurationError(
            "cost overrides must be an object of per-arch sections, got %r"
            % (document,)
        )
    canonical = {}
    for arch in sorted(document):
        section = document[arch]
        prototype = _override_targets(arch)
        if not isinstance(section, dict):
            raise ConfigurationError(
                "cost-override section %r must be an object, got %r"
                % (arch, section)
            )
        if not section:
            continue
        fields = {}
        for field in sorted(section):
            value = section[field]
            _check_value(arch, field, value)
            fields[_resolve_field(prototype, arch, field)] = value
        canonical[arch] = fields
    return canonical


def _apply_section(costs, section):
    """Write one validated override section onto a fresh cost table."""
    for field, value in section.items():
        if "." in field:
            table_name, _, reg_name = field.partition(".")
            getattr(costs, table_name)[RegClass[reg_name]] = value
        else:
            setattr(costs, field, value)


@contextlib.contextmanager
def overriding(document):
    """Install a what-if override document for the duration of a block.

    Every :func:`arm_costs` / :func:`x86_costs` call inside the block —
    testbed construction, cache-key derivation, fast-lane cost
    re-resolution — sees the overridden primitives; the previous state
    is restored on exit even if the block raises.  Documents do not
    merge: nesting replaces the outer document wholesale.
    """
    global _ACTIVE_OVERRIDES
    previous = _ACTIVE_OVERRIDES
    _ACTIVE_OVERRIDES = validate_overrides(document) if document else None
    try:
        yield
    finally:
        _ACTIVE_OVERRIDES = previous
