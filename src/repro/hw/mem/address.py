"""Address spaces of the ARM Stage-2 world (paper Section II).

With Stage-2 translation enabled the architecture defines three spaces:
Virtual Addresses (VA), Intermediate Physical Addresses (IPA — the VM's
view of physical memory, called GPA here for guest-physical), and
Physical Addresses (PA/HPA — machine addresses).  Stage-2, configured in
EL2, translates IPA -> PA.
"""

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB granule


class _TypedAddress(int):
    """An int subtype used to keep guest- and host-physical addresses
    from being mixed up silently."""

    def __repr__(self):
        return "%s(0x%x)" % (type(self).__name__, int(self))

    @property
    def page(self):
        return int(self) >> PAGE_SHIFT

    @property
    def offset(self):
        return int(self) & (PAGE_SIZE - 1)


class GPA(_TypedAddress):
    """Guest-physical (the architecture's Intermediate Physical Address)."""


class HPA(_TypedAddress):
    """Host-physical (machine address)."""


def page_of(address):
    """Page frame number of an address."""
    return int(address) >> PAGE_SHIFT
