"""DMA engine: where the device writes incoming data.

The receive-path difference the paper highlights:

* KVM/virtio: the NIC can DMA straight into a guest-visible buffer
  (the host maintains the virtio rings over guest memory) — zero copy.
* Xen: Dom0 cannot point the NIC at DomU memory, so DMA lands in a Dom0
  kernel buffer and the payload is grant-copied into the guest.
"""

from repro.errors import ConfigurationError


class DmaEngine:
    """Tracks DMA target buffers and their cost implications."""

    GUEST_DIRECT = "guest-direct"  # zero copy: device -> guest buffer
    BOUNCE = "bounce"  # device -> backend buffer, then copy

    def __init__(self, mode, costs):
        if mode not in (self.GUEST_DIRECT, self.BOUNCE):
            raise ConfigurationError("unknown DMA mode %r" % (mode,))
        self.mode = mode
        self.costs = costs
        self.transfers = 0
        self.bounced_bytes = 0

    @property
    def zero_copy(self):
        return self.mode == self.GUEST_DIRECT

    def landing_cost(self, nbytes):
        """Cycles of CPU work to make DMA'd data guest-visible.

        Zero copy: nothing beyond ring bookkeeping (charged elsewhere).
        Bounce: a full copy of the payload into the guest-shared buffer.
        """
        self.transfers += 1
        if self.zero_copy:
            return 0
        self.bounced_bytes += nbytes
        return self.costs.copy_cycles(nbytes)
