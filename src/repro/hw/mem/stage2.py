"""Stage-2 page tables: a real 3-level radix translating IPA -> PA.

The hypervisor owns these (configured from EL2 / via EPT on x86).  A walk
costs ``stage2_walk_per_level`` per level on a TLB miss; an unmapped IPA
raises a Stage-2 fault, which is how MMIO emulation traps happen (guest
touches the GIC distributor's IPA range -> fault -> hypervisor emulates).
"""

from repro.errors import HardwareFault
from repro.hw.mem.address import GPA, HPA, PAGE_SHIFT

LEVELS = 3
BITS_PER_LEVEL = 9  # 4K granule, 512 entries per table


class Stage2Fault(HardwareFault):
    """Translation fault at Stage 2 (unmapped IPA)."""

    def __init__(self, gpa, write):
        super().__init__("stage-2 fault at %r (%s)" % (gpa, "write" if write else "read"))
        self.gpa = gpa
        self.write = write


class Stage2Tables:
    """A per-VM IPA->PA radix tree with mapping permissions."""

    def __init__(self, vmid):
        self.vmid = vmid
        self._root = {}

    @staticmethod
    def _indices(page):
        indices = []
        for level in range(LEVELS):
            shift = BITS_PER_LEVEL * (LEVELS - 1 - level)
            indices.append((page >> shift) & ((1 << BITS_PER_LEVEL) - 1))
        return indices

    def map_page(self, gpa_page, hpa_page, writable=True):
        """Install a 4K mapping gpa_page -> hpa_page."""
        node = self._root
        indices = self._indices(gpa_page)
        for index in indices[:-1]:
            node = node.setdefault(index, {})
        node[indices[-1]] = (hpa_page, writable)

    def unmap_page(self, gpa_page):
        node = self._root
        indices = self._indices(gpa_page)
        for index in indices[:-1]:
            if index not in node:
                raise HardwareFault("unmapping unmapped page 0x%x" % gpa_page)
            node = node[index]
        if indices[-1] not in node:
            raise HardwareFault("unmapping unmapped page 0x%x" % gpa_page)
        del node[indices[-1]]

    def walk(self, gpa, write=False):
        """Translate; returns (HPA, levels_walked).  Faults if unmapped."""
        gpa = GPA(gpa)
        node = self._root
        indices = self._indices(gpa.page)
        for depth, index in enumerate(indices[:-1]):
            if index not in node:
                raise Stage2Fault(gpa, write)
            node = node[index]
        entry = node.get(indices[-1])
        if entry is None:
            raise Stage2Fault(gpa, write)
        hpa_page, writable = entry
        if write and not writable:
            raise Stage2Fault(gpa, write)
        return HPA((hpa_page << PAGE_SHIFT) | gpa.offset), LEVELS

    def is_mapped(self, gpa):
        try:
            self.walk(gpa)
        except Stage2Fault:
            return False
        return True

    def mapped_page_count(self):
        count = 0
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            if depth == LEVELS - 1:
                count += len(node)
            else:
                stack.extend((child, depth + 1) for child in node.values())
        return count


def identity_map(tables, base_page, num_pages, writable=True):
    """Convenience: map a contiguous IPA range 1:1 onto machine pages."""
    for page in range(base_page, base_page + num_pages):
        tables.map_page(page, page, writable)
    return tables
