"""Xen grant tables: the strict-isolation sharing mechanism.

Dom0 has no standing access to a DomU's memory.  To move I/O data, the
DomU *grants* a page; Dom0 maps the grant, copies, and unmaps.  Each
map/unmap is a hypercall, and the unmap requires a TLB invalidation on
every CPU that may have cached the mapping — the machinery whose cost
the paper measures at >3 us per copy even for one byte.

Contrast: KVM's host kernel has full access to VM memory (same address
space), so its virtio backend reads guest buffers directly — zero copy.
"""

from repro.errors import ProtocolError


class GrantRef:
    """One granted page."""

    __slots__ = ("ref", "granter", "gpa_page", "readonly", "mapped_by")

    def __init__(self, ref, granter, gpa_page, readonly):
        self.ref = ref
        self.granter = granter
        self.gpa_page = gpa_page
        self.readonly = readonly
        self.mapped_by = None


class GrantTable:
    """Per-domain grant table plus the map/unmap protocol."""

    def __init__(self, domain_name):
        self.domain_name = domain_name
        self._next_ref = 1
        self._grants = {}
        #: counters for analysis
        self.maps = 0
        self.unmaps = 0

    def grant(self, gpa_page, readonly=False):
        """Guest: offer a page; returns the grant reference."""
        ref = self._next_ref
        self._next_ref += 1
        self._grants[ref] = GrantRef(ref, self.domain_name, gpa_page, readonly)
        return ref

    def revoke(self, ref):
        entry = self._lookup(ref)
        if entry.mapped_by is not None:
            raise ProtocolError(
                "grant %d still mapped by %s" % (ref, entry.mapped_by)
            )
        del self._grants[ref]

    def map_grant(self, ref, mapper_name):
        """Backend domain: map the granted page (hypercall)."""
        entry = self._lookup(ref)
        if entry.mapped_by is not None:
            raise ProtocolError("grant %d already mapped" % ref)
        entry.mapped_by = mapper_name
        self.maps += 1
        return entry

    def unmap_grant(self, ref, mapper_name):
        """Backend domain: unmap (hypercall + global TLB invalidate)."""
        entry = self._lookup(ref)
        if entry.mapped_by != mapper_name:
            raise ProtocolError(
                "grant %d not mapped by %s (mapped by %r)"
                % (ref, mapper_name, entry.mapped_by)
            )
        entry.mapped_by = None
        self.unmaps += 1

    def active_mappings(self):
        return sum(1 for entry in self._grants.values() if entry.mapped_by is not None)

    def mapped_refs(self, mapper_name):
        """Grant refs currently mapped by ``mapper_name``, in ref order."""
        return sorted(
            entry.ref
            for entry in self._grants.values()
            if entry.mapped_by == mapper_name
        )

    def _lookup(self, ref):
        if ref not in self._grants:
            raise ProtocolError("unknown grant ref %d" % ref)
        return self._grants[ref]


def grant_copy_cycles(costs, shootdown, nbytes):
    """Total cycles for one grant-mediated copy of ``nbytes``.

    map hypercall + memcpy + unmap hypercall + cross-CPU TLB invalidate.
    This is the per-copy cost the paper pins at >3 us (~>7200 cycles at
    2.4 GHz) even for a single byte.
    """
    return (
        costs.grant_map
        + costs.copy_cycles(nbytes)
        + costs.grant_unmap
        + shootdown.invalidate_cycles()
    )
