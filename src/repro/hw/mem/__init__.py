"""Memory system: address spaces, Stage-2 tables, TLB, grants, DMA."""

from repro.hw.mem.address import GPA, HPA, PAGE_SHIFT, PAGE_SIZE, page_of
from repro.hw.mem.stage2 import Stage2Tables
from repro.hw.mem.tlb import Tlb, TlbShootdownModel
from repro.hw.mem.grant import GrantTable
from repro.hw.mem.dma import DmaEngine

__all__ = [
    "DmaEngine",
    "GPA",
    "GrantTable",
    "HPA",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "Stage2Tables",
    "Tlb",
    "TlbShootdownModel",
    "page_of",
]
