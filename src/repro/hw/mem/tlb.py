"""TLB model and the cross-CPU invalidation cost asymmetry.

The paper's zero-copy discussion hinges on this: removing a grant-table
mapping requires invalidating the page's translation on every PCPU.  On
x86 that is one IPI per CPU (expensive — why Xen x86 abandoned zero-copy
I/O); ARM has a hardware broadcast invalidate (DVM), so the same
operation is one broadcast message.
"""

from collections import OrderedDict

from repro.errors import ConfigurationError


class Tlb:
    """A per-PCPU Stage-2 TLB: (vmid, gpa_page) -> hpa_page, LRU."""

    def __init__(self, capacity=512):
        if capacity < 1:
            raise ConfigurationError("TLB capacity must be >= 1")
        self.capacity = capacity
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, vmid, gpa_page):
        key = (vmid, gpa_page)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def fill(self, vmid, gpa_page, hpa_page):
        key = (vmid, gpa_page)
        self._entries[key] = hpa_page
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate_page(self, vmid, gpa_page):
        self._entries.pop((vmid, gpa_page), None)

    def invalidate_vmid(self, vmid):
        stale = [key for key in self._entries if key[0] == vmid]
        for key in stale:
            del self._entries[key]

    def __len__(self):
        return len(self._entries)


class TlbShootdownModel:
    """Costs a global page invalidation across ``num_cpus``.

    ARM: one broadcast message (constant cost).
    x86: an IPI round to every *other* CPU plus local invalidation.
    """

    def __init__(self, arch, costs, num_cpus):
        if arch not in ("arm", "x86"):
            raise ConfigurationError("unknown arch %r" % (arch,))
        self.arch = arch
        self.costs = costs
        self.num_cpus = num_cpus

    def invalidate_cycles(self):
        if self.arch == "arm":
            return self.costs.tlb_invalidate_broadcast
        return self.costs.tlb_invalidate_ipi * max(0, self.num_cpus - 1)

    def invalidate_all(self, tlbs, vmid, gpa_page):
        """Perform the invalidation on every TLB; returns the cycle cost."""
        for tlb in tlbs:
            tlb.invalidate_page(vmid, gpa_page)
        return self.invalidate_cycles()
