"""Hardware models: CPUs, interrupt controllers, memory system, devices.

Everything in this package models *mechanism* (what state moves where, who
traps when) with costs drawn from :mod:`repro.hw.costs`, the single home of
calibrated primitive cycle counts.
"""

from repro.hw.platform import Platform, arm_m400, x86_r320

__all__ = ["Platform", "arm_m400", "x86_r320"]
