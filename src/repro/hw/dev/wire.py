"""The 10 GbE wire + switch between two NICs.

The paper used a non-blocking 10 GbE switch so that benchmark traffic is
isolated; we model the path as propagation latency + serialization at
line rate.  (They note 1 GbE made the *network* the bottleneck and hid
virtualization overhead — the bandwidth parameter lets benches show that.)
"""

from repro.errors import ConfigurationError

DEFAULT_BANDWIDTH_BPS = 10e9  # 10 GbE
DEFAULT_LATENCY_NS = 2300  # one-way: cable + switch port-to-port


class Wire:
    """A full-duplex point-to-point link between exactly two NIC ports."""

    def __init__(self, engine, clock, bandwidth_bps=DEFAULT_BANDWIDTH_BPS,
                 latency_ns=DEFAULT_LATENCY_NS):
        if bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.engine = engine
        self.clock = clock
        self.bandwidth_bps = bandwidth_bps
        self.latency_ns = latency_ns
        self._ports = []
        self.carried = 0

    def connect(self, nic):
        if len(self._ports) >= 2:
            raise ConfigurationError("wire already has two ports")
        self._ports.append(nic)

    def other_end(self, nic):
        if nic not in self._ports:
            raise ConfigurationError("NIC %r not on this wire" % (nic.name,))
        for port in self._ports:
            if port is not nic:
                return port
        raise ConfigurationError("wire has no second port yet")

    def transfer_cycles(self, size_bytes):
        """Serialization + propagation delay for one packet, in cycles."""
        serialize_ns = size_bytes * 8 / self.bandwidth_bps * 1e9
        return self.clock.cycles_from_ns(serialize_ns + self.latency_ns)

    def carry(self, packet, sender):
        """Move a packet to the opposite port after the transfer delay."""
        receiver = self.other_end(sender)
        self.carried += 1
        self.engine.schedule(
            self.transfer_cycles(packet.size), lambda: receiver.deliver(packet)
        )
