"""Device models: NIC, network wire, block storage."""

from repro.hw.dev.nic import Nic, Packet
from repro.hw.dev.wire import Wire
from repro.hw.dev.block import BlockDevice

__all__ = ["BlockDevice", "Nic", "Packet", "Wire"]
