"""10 GbE NIC model.

Packets carry a ``stamps`` dict so the measurement framework can do what
the paper did with tcpdump + the synchronized architected counter: record
when a packet crosses each layer (wire, data link / physical driver, VM
driver, application) and decompose latency afterwards (Table V).
"""

import itertools

from repro.errors import ConfigurationError

_packet_ids = itertools.count(1)


class Packet:
    """One network packet with measurement stamps."""

    __slots__ = ("id", "size", "kind", "stamps", "payload")

    def __init__(self, size, kind="data", payload=None):
        if size < 0:
            raise ConfigurationError("packet size must be >= 0")
        self.id = next(_packet_ids)
        self.size = size
        self.kind = kind
        self.stamps = {}
        self.payload = payload

    def stamp(self, probe, time):
        """Record that this packet crossed ``probe`` at ``time`` cycles."""
        self.stamps[probe] = time

    def interval(self, probe_a, probe_b):
        """Cycles between two probes (b - a)."""
        return self.stamps[probe_b] - self.stamps[probe_a]

    def __repr__(self):
        return "Packet(#%d, %dB, %s)" % (self.id, self.size, self.kind)


class Nic:
    """A NIC port: receives from a wire, raises an IRQ; transmits to a wire.

    ``irq`` is the SPI/vector this port asserts; ``on_receive`` is wired
    to the host driver (native) or the hypervisor's physical driver path.
    """

    def __init__(self, engine, name, irq=None):
        self.engine = engine
        self.name = name
        self.irq = irq
        self.wire = None
        self.on_receive = None
        self.rx_packets = 0
        self.tx_packets = 0

    def attach(self, wire):
        self.wire = wire
        wire.connect(self)

    def transmit(self, packet):
        """DMA from memory done; serialize onto the wire."""
        if self.wire is None:
            raise ConfigurationError("NIC %s has no wire attached" % self.name)
        self.tx_packets += 1
        packet.stamp("%s.tx" % self.name, self.engine.now)
        self.wire.carry(packet, sender=self)

    def deliver(self, packet):
        """Called by the wire when a packet arrives at this port."""
        self.rx_packets += 1
        packet.stamp("%s.rx" % self.name, self.engine.now)
        if self.on_receive is not None:
            self.on_receive(packet)

    def __repr__(self):
        return "Nic(%r)" % (self.name,)
