"""Block storage model: SSD-like (m400) or RAID-HD-like (r320) service times.

Only the service-time envelope matters to the benchmarks (kernbench's
source tree reads, MySQL's fsyncs): a request costs a fixed access
latency plus streaming time at the device's throughput.
"""

from repro.errors import ConfigurationError


class BlockDevice:
    """A block device with simple latency/throughput service times."""

    def __init__(self, engine, clock, name, access_latency_us, throughput_mbps):
        if access_latency_us < 0 or throughput_mbps <= 0:
            raise ConfigurationError("invalid block device parameters")
        self.engine = engine
        self.clock = clock
        self.name = name
        self.access_latency_us = access_latency_us
        self.throughput_mbps = throughput_mbps
        self.requests = 0
        self.bytes_moved = 0

    def service_cycles(self, nbytes):
        """Cycles for one request of ``nbytes``."""
        self.requests += 1
        self.bytes_moved += nbytes
        stream_us = nbytes / (self.throughput_mbps * 1e6) * 1e6
        return self.clock.cycles_from_us(self.access_latency_us + stream_us)


def sata_ssd(engine, clock):
    """The m400's 120 GB SATA3 SSD."""
    return BlockDevice(engine, clock, "sata-ssd", access_latency_us=80,
                       throughput_mbps=500)


def raid5_hd(engine, clock):
    """The r320's 4x500 GB 7200 RPM RAID5 array."""
    return BlockDevice(engine, clock, "raid5-hd", access_latency_us=4200,
                       throughput_mbps=350)
