"""x86 APIC model (local APICs + ICR-based IPIs, optional APICv).

The contrast the paper draws: without vAPIC/APICv hardware, the guest's
EOI write *traps* to the hypervisor (Table II: ~1.5k cycles vs ARM's 71);
with vAPIC the completion is hardware-assisted like ARM's.
"""

from repro.errors import HardwareFault

MAX_VECTOR = 256


class LocalApic:
    """Per-CPU local APIC: IRR/ISR vector bitmaps."""

    def __init__(self, index):
        self.index = index
        self.irr = set()  # requested (pending delivery)
        self.isr = set()  # in service (delivered, awaiting EOI)

    def request(self, vector):
        if not 0 <= vector < MAX_VECTOR:
            raise HardwareFault("vector %d out of range" % vector)
        self.irr.add(vector)

    def deliver_highest(self):
        """Move the highest-priority requested vector into service."""
        if not self.irr:
            raise HardwareFault("no vector pending on LAPIC %d" % self.index)
        vector = max(self.irr)
        self.irr.discard(vector)
        self.isr.add(vector)
        return vector

    def eoi(self, vector):
        if vector not in self.isr:
            raise HardwareFault("EOI for vector %d not in service" % vector)
        self.isr.discard(vector)

    def has_pending(self):
        return bool(self.irr)


class Apic:
    """The APIC complex: one LAPIC per CPU + ICR IPI send."""

    def __init__(self, num_cpus):
        self.num_cpus = num_cpus
        self.lapics = [LocalApic(i) for i in range(num_cpus)]

    def lapic(self, cpu_index):
        if not 0 <= cpu_index < self.num_cpus:
            raise HardwareFault("no LAPIC for cpu %d" % cpu_index)
        return self.lapics[cpu_index]

    def send_ipi(self, target_cpu, vector):
        """ICR write: request ``vector`` on the target's LAPIC."""
        self.lapic(target_cpu).request(vector)
