"""ARM Generic Interrupt Controller model with virtualization extensions.

What the paper relies on:

* The distributor is *not* virtualization-aware: guest accesses to it trap
  (Stage-2 abort) and are emulated by the hypervisor — in EL2 for Xen, in
  the EL1 host for KVM.  This asymmetry is the whole Interrupt Controller
  Trap / Virtual IPI story of Table II.
* The CPU interface *is* virtualized: the hypervisor programs list
  registers (LRs) from EL2 to inject virtual interrupts, and the guest
  acknowledges/completes them through the GICV interface **without
  trapping** (paper: 71 cycles for Virtual IRQ Completion).
* The LR/VMCR/APR state is part of what split-mode KVM must save/restore
  on every transition — the 3,250-cycle VGIC save of Table III.
* All physical interrupts are taken to EL2 while a VM runs.

IRQ number spaces follow the GIC convention: SGIs 0-15 (IPIs), PPIs 16-31
(per-CPU, e.g. the virtual timer is PPI 27), SPIs 32+ (devices).
"""

from repro.errors import HardwareFault

SGI_RANGE = range(0, 16)
PPI_RANGE = range(16, 32)
VIRTUAL_TIMER_PPI = 27
MAX_IRQ = 1020
NUM_LIST_REGISTERS = 4


class GicDistributor:
    """Distributor state: enable/pending per IRQ, SGI routing."""

    def __init__(self, num_cpus):
        self.num_cpus = num_cpus
        self.enabled = set()
        #: pending[(cpu, irq)] for banked SGI/PPI, pending[(None, irq)] SPIs
        self._pending = set()
        #: SPI -> target cpu index (affinity routing)
        self.spi_target = {}

    def enable(self, irq):
        self._check(irq)
        self.enabled.add(irq)

    def disable(self, irq):
        self._check(irq)
        self.enabled.discard(irq)

    def is_enabled(self, irq):
        return irq in self.enabled

    def set_spi_target(self, irq, cpu_index):
        if irq in SGI_RANGE or irq in PPI_RANGE:
            raise HardwareFault("irq %d is banked, cannot set affinity" % irq)
        self._check(irq)
        self.spi_target[irq] = cpu_index

    def raise_sgi(self, target_cpu, irq):
        """Send a software-generated interrupt (physical IPI)."""
        if irq not in SGI_RANGE:
            raise HardwareFault("SGI irq must be 0-15, got %d" % irq)
        self._pending.add((target_cpu, irq))

    def raise_ppi(self, cpu_index, irq):
        if irq not in PPI_RANGE:
            raise HardwareFault("PPI irq must be 16-31, got %d" % irq)
        self._pending.add((cpu_index, irq))

    def raise_spi(self, irq):
        if irq in SGI_RANGE or irq in PPI_RANGE:
            raise HardwareFault("irq %d is not an SPI" % irq)
        self._check(irq)
        self._pending.add((None, irq))

    def acknowledge(self, cpu_index, irq):
        """GICC_IAR: claim a pending IRQ on behalf of ``cpu_index``."""
        if (cpu_index, irq) in self._pending:
            self._pending.discard((cpu_index, irq))
        elif (None, irq) in self._pending:
            self._pending.discard((None, irq))
        else:
            raise HardwareFault("irq %d not pending for cpu %d" % (irq, cpu_index))
        return irq

    def pending_for(self, cpu_index):
        """IRQs deliverable to ``cpu_index`` right now."""
        result = []
        for target, irq in sorted(self._pending, key=lambda pair: pair[1]):
            if irq not in self.enabled:
                continue
            if target == cpu_index:
                result.append(irq)
            elif target is None and self.spi_target.get(irq, 0) == cpu_index:
                result.append(irq)
        return result

    def _check(self, irq):
        if not 0 <= irq < MAX_IRQ:
            raise HardwareFault("irq %d out of range" % irq)


class ListRegister:
    """One LR: holds a single virtual interrupt's injection state."""

    __slots__ = ("virq", "state")

    EMPTY, PENDING, ACTIVE = "empty", "pending", "active"

    def __init__(self):
        self.virq = None
        self.state = self.EMPTY


class VirtualCpuInterface:
    """Per-VCPU GIC virtual interface (GICH control + GICV guest view).

    The hypervisor writes LRs (from EL2); the guest acknowledges and
    completes through GICV *without trapping* — the completion directly
    deactivates the LR in hardware.
    """

    def __init__(self, name=""):
        self.name = name
        self.list_registers = [ListRegister() for _ in range(NUM_LIST_REGISTERS)]
        #: virqs that didn't fit in LRs (hypervisor software overflow list)
        self.overflow = []

    def inject(self, virq):
        """Hypervisor (EL2): place ``virq`` in a free LR, else overflow."""
        for lr in self.list_registers:
            if lr.state == ListRegister.EMPTY:
                lr.virq = virq
                lr.state = ListRegister.PENDING
                return True
        self.overflow.append(virq)
        return False

    def guest_acknowledge(self):
        """Guest GICV_IAR read: highest-priority pending virq -> active."""
        for lr in self.list_registers:
            if lr.state == ListRegister.PENDING:
                lr.state = ListRegister.ACTIVE
                return lr.virq
        raise HardwareFault("guest IAR with no pending virtual interrupt")

    def guest_complete(self, virq):
        """Guest GICV EOI+deactivate: hardware completes, no trap."""
        for lr in self.list_registers:
            if lr.virq == virq and lr.state == ListRegister.ACTIVE:
                lr.virq = None
                lr.state = ListRegister.EMPTY
                return
        raise HardwareFault("guest completed virq %r that is not active" % (virq,))

    def refill_from_overflow(self):
        """Hypervisor maintenance: move overflowed virqs into freed LRs."""
        moved = 0
        while self.overflow:
            for lr in self.list_registers:
                if lr.state == ListRegister.EMPTY:
                    lr.virq = self.overflow.pop(0)
                    lr.state = ListRegister.PENDING
                    moved += 1
                    break
            else:
                break
        return moved

    def pending_count(self):
        return sum(1 for lr in self.list_registers if lr.state == ListRegister.PENDING)

    def has_pending(self):
        return self.pending_count() > 0 or bool(self.overflow)

    def snapshot(self):
        """The LR/state image KVM saves on every world switch (Table III)."""
        return {
            "lrs": [(lr.virq, lr.state) for lr in self.list_registers],
            "overflow": list(self.overflow),
        }

    def load(self, image):
        for lr, (virq, state) in zip(self.list_registers, image["lrs"]):
            lr.virq = virq
            lr.state = state
        self.overflow = list(image["overflow"])


class Gic:
    """The whole GIC: distributor + one virtual interface per VCPU slot."""

    def __init__(self, num_cpus):
        self.num_cpus = num_cpus
        self.distributor = GicDistributor(num_cpus)
        self._virtual_interfaces = {}

    def virtual_interface(self, key):
        """The virtual CPU interface for a VCPU key (created on demand).

        Physically there is one virtual interface per PCPU; its state is
        context-switched per-VCPU by the hypervisor, which is equivalent
        to (and simpler as) one logical interface per VCPU.
        """
        if key not in self._virtual_interfaces:
            self._virtual_interfaces[key] = VirtualCpuInterface(name=str(key))
        return self._virtual_interfaces[key]
