"""Interrupt controllers: ARM GIC (+virtual interface), x86 APIC, IPI fabric."""

from repro.hw.irq.gic import Gic, GicDistributor, VirtualCpuInterface
from repro.hw.irq.apic import Apic, LocalApic
from repro.hw.irq.ipi import IpiFabric

__all__ = [
    "Apic",
    "Gic",
    "GicDistributor",
    "IpiFabric",
    "LocalApic",
    "VirtualCpuInterface",
]
