"""Physical inter-processor interrupt fabric.

Delivers a physical IRQ to a target PCPU after the platform's IPI wire
latency.  The receiving PCPU's installed interrupt handler (normally the
hypervisor's — all physical IRQs go to EL2/root mode while a VM runs)
is invoked as a new simulation process.
"""

from repro.errors import ConfigurationError


class IpiFabric:
    """Routes cross-CPU interrupt signals with wire latency."""

    def __init__(self, engine, wire_cycles, metrics=None):
        self.engine = engine
        self.wire_cycles = wire_cycles
        #: statistics: count of IPIs sent, for workload accounting
        self.sent = 0
        #: shared observability counter (see repro.obs), if registered
        self._sent_counter = metrics.counter("hw.ipis_sent") if metrics else None

    def send(self, target_pcpu, irq, payload=None):
        """Raise ``irq`` on ``target_pcpu`` after the wire delay."""
        if target_pcpu is None:
            raise ConfigurationError("IPI needs a target PCPU")
        self.sent += 1
        if self._sent_counter is not None:
            self._sent_counter.inc()
        self.engine.schedule(
            self.wire_cycles, lambda: target_pcpu.raise_physical_irq(irq, payload)
        )
