"""Physical inter-processor interrupt fabric.

Delivers a physical IRQ to a target PCPU after the platform's IPI wire
latency.  The receiving PCPU's installed interrupt handler (normally the
hypervisor's — all physical IRQs go to EL2/root mode while a VM runs)
is invoked as a new simulation process.
"""

from repro.errors import ConfigurationError


class IpiFabric:
    """Routes cross-CPU interrupt signals with wire latency."""

    def __init__(self, engine, wire_cycles):
        self.engine = engine
        self.wire_cycles = wire_cycles
        #: statistics: count of IPIs sent, for workload accounting
        self.sent = 0

    def send(self, target_pcpu, irq, payload=None):
        """Raise ``irq`` on ``target_pcpu`` after the wire delay."""
        if target_pcpu is None:
            raise ConfigurationError("IPI needs a target PCPU")
        self.sent += 1
        self.engine.schedule(
            self.wire_cycles, lambda: target_pcpu.raise_physical_irq(irq, payload)
        )
