"""Platform descriptions and the assembled Machine.

Two platforms mirror the paper's testbeds:

* ``arm_m400``  — HP Moonshot m400: 8-core ARMv8 (APM X-Gene) @ 2.4 GHz
* ``x86_r320``  — Dell PowerEdge r320: 8-core Xeon E5-2450 @ 2.1 GHz

A :class:`Machine` is one booted server: engine + clock + PCPUs +
interrupt hardware + IPI fabric, onto which a hypervisor model installs
itself.
"""

import dataclasses

from repro.errors import ConfigurationError, HardwareFault
from repro.hw.costs import arm_costs, x86_costs
from repro.hw.cpu.arm import ArmCpu
from repro.hw.cpu.counters import CycleCounter
from repro.hw.cpu.x86 import X86Cpu
from repro.hw.irq.apic import Apic
from repro.hw.irq.gic import Gic
from repro.hw.irq.ipi import IpiFabric
from repro.obs import Observability
from repro.sim import Clock, DeterministicRng, Engine, FastLane, Timeout, Tracer

ARM = "arm"
X86 = "x86"


@dataclasses.dataclass
class Platform:
    """Static description of a server platform."""

    name: str
    arch: str
    frequency_hz: float
    num_cores: int
    costs: object
    vhe_capable: bool = False
    vapic_enabled: bool = False

    def __post_init__(self):
        if self.arch not in (ARM, X86):
            raise ConfigurationError("unknown arch %r" % (self.arch,))
        if self.num_cores < 1:
            raise ConfigurationError("need at least one core")


def arm_m400(vhe_capable=False, costs=None):
    """The paper's ARM testbed (optionally ARMv8.1 VHE-capable silicon)."""
    return Platform(
        name="arm_m400",
        arch=ARM,
        frequency_hz=2.4e9,
        num_cores=8,
        costs=costs if costs is not None else arm_costs(),
        vhe_capable=vhe_capable,
    )


def x86_r320(vapic_enabled=False, costs=None):
    """The paper's x86 testbed (optionally with APICv, see Section IV)."""
    return Platform(
        name="x86_r320",
        arch=X86,
        frequency_hz=2.1e9,
        num_cores=8,
        costs=costs if costs is not None else x86_costs(),
        vapic_enabled=vapic_enabled,
    )


class Pcpu:
    """One physical CPU at runtime: arch state + costed execution helper."""

    def __init__(self, machine, index, arch_cpu):
        self.machine = machine
        self.index = index
        self.arch = arch_cpu
        #: installed by the hypervisor: f(pcpu, irq, payload) -> generator
        self.irq_handler = None
        #: what is currently scheduled here (a VCPU, a host thread, ...)
        self.current_context = None

    def op(self, label, cycles, category=""):
        """A costed step: records into the tracer, returns its Timeout.

        Hypervisor paths use ``yield pcpu.op("save_vgic", 3250, "save")``.
        When observability is enabled the step is also recorded as a leaf
        span at the current engine time (see :mod:`repro.obs`).
        """
        self.machine.tracer.record(label, cycles, category, pcpu=self.index)
        spans = self.machine.obs.spans
        if spans.enabled:
            spans.step(label, cycles, category, pcpu=self.index)
        recording = self.machine.fastlane.recording
        if recording is not None:
            recording.append((label, cycles))
        return Timeout(cycles)

    def raise_physical_irq(self, irq, payload=None):
        """Hardware raises ``irq`` here; the installed handler runs."""
        if self.irq_handler is None:
            raise HardwareFault(
                "physical irq %r on pcpu %d with no handler installed" % (irq, self.index)
            )
        self.machine.engine.spawn(
            self.irq_handler(self, irq, payload), name="irq%d@pcpu%d" % (irq, self.index)
        )

    def __repr__(self):
        return "Pcpu(#%d of %s)" % (self.index, self.machine.platform.name)


class Machine:
    """A booted server: the simulation context everything else plugs into."""

    def __init__(self, platform, seed=2016):
        self.platform = platform
        self.engine = Engine()
        self.clock = Clock(platform.frequency_hz)
        self.tracer = Tracer(enabled=False)
        #: structured observability (spans + metrics), disabled by default
        self.obs = Observability(self.engine)
        self.rng = DeterministicRng(seed)
        self.costs = platform.costs
        self.counter = CycleCounter(self.engine)
        if platform.arch == ARM:
            cpus = [
                ArmCpu(i, vhe_capable=platform.vhe_capable)
                for i in range(platform.num_cores)
            ]
            self.gic = Gic(platform.num_cores)
            self.apic = None
        else:
            cpus = [
                X86Cpu(i, vapic_capable=platform.vapic_enabled)
                for i in range(platform.num_cores)
            ]
            self.gic = None
            self.apic = Apic(platform.num_cores)
        self.pcpus = [Pcpu(self, i, cpu) for i, cpu in enumerate(cpus)]
        self.ipi = IpiFabric(
            self.engine, wire_cycles=platform.costs.ipi_wire, metrics=self.obs.metrics
        )
        #: compiled fast lane for hot trap paths (see repro.sim.fastpath)
        self.fastlane = FastLane(self)

    @property
    def is_arm(self):
        return self.platform.arch == ARM

    def pcpu(self, index):
        if not 0 <= index < len(self.pcpus):
            raise ConfigurationError("no pcpu %d on %s" % (index, self.platform.name))
        return self.pcpus[index]

    def run(self, until=None):
        self.engine.run(until)

    def __repr__(self):
        return "Machine(%s, %d cores)" % (self.platform.name, len(self.pcpus))
