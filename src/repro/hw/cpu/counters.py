"""Cycle counters and the architected timer — the measurement instruments.

The paper's methodology: timestamps from cycle counters / ARM architected
counters, synchronized across all PCPUs, VMs, and the hypervisor, with
instruction barriers around each read to defeat out-of-order skew.  In
simulation the engine clock *is* globally synchronized, so we model the
barriers as their (small) cost and expose the same reading discipline.
"""

from repro.sim.events import Timeout

#: Cost of the isb barriers + counter read the paper brackets timestamps with.
TIMESTAMP_READ_CYCLES = 12


class CycleCounter:
    """A per-platform virtual cycle counter (PMCCNTR / TSC analogue)."""

    def __init__(self, engine):
        self.engine = engine

    def read(self):
        """Instantaneous raw read (no barrier cost) — for probes."""
        return self.engine.now

    def read_with_barriers(self):
        """Generator: barriered read as the paper's driver does it.

        Usage: ``stamp = yield from counter.read_with_barriers()``.
        The returned stamp is taken *between* the two barriers.
        """
        yield Timeout(TIMESTAMP_READ_CYCLES // 2)
        stamp = self.engine.now
        yield Timeout(TIMESTAMP_READ_CYCLES - TIMESTAMP_READ_CYCLES // 2)
        return stamp


class ArchTimer:
    """ARM architected timer: programmable virtual timer per VCPU.

    The VM can program it without trapping; expiry raises a *physical*
    interrupt that the hypervisor must translate into a virtual one
    (paper Section II) — callers wire ``on_expiry`` accordingly.
    """

    def __init__(self, engine, name=""):
        self.engine = engine
        self.name = name
        self._deadline = None
        self._generation = 0
        self.on_expiry = None

    @property
    def armed(self):
        return self._deadline is not None

    def program(self, cycles_from_now):
        """Arm the timer (no trap — direct from the VM)."""
        self._generation += 1
        generation = self._generation
        self._deadline = self.engine.now + cycles_from_now
        self.engine.schedule(cycles_from_now, lambda: self._fire(generation))

    def cancel(self):
        self._generation += 1
        self._deadline = None

    def _fire(self, generation):
        if generation != self._generation:
            return  # reprogrammed or cancelled since
        self._deadline = None
        if self.on_expiry is not None:
            self.on_expiry()
