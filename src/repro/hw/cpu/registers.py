"""Architectural register state, organized by the classes of paper Table III.

The world-switch code in the hypervisor models really moves this state
between the CPU register file and per-VCPU memory images, so tests can
assert the *correctness* of a switch (guest state preserved, host state
isolated) independently of its *cost*.
"""

import enum

from repro.errors import HardwareFault


class RegClass(enum.Enum):
    """Register classes context-switched on ARM VM transitions (Table III)."""

    GP = "GP Regs"
    FP = "FP Regs"
    EL1_SYS = "EL1 System Regs"
    VGIC = "VGIC Regs"
    TIMER = "Timer Regs"
    EL2_CONFIG = "EL2 Config Regs"
    EL2_VIRTUAL_MEMORY = "EL2 Virtual Memory Regs"


#: Representative register names per class.  The specific names matter for
#: the VHE register-redirection model (TTBR1_EL1 vs TTBR1_EL2 and friends).
REGISTER_NAMES = {
    RegClass.GP: ["x%d" % i for i in range(31)] + ["sp", "pc", "pstate"],
    RegClass.FP: ["q%d" % i for i in range(32)] + ["fpsr", "fpcr"],
    RegClass.EL1_SYS: [
        "sctlr_el1",
        "ttbr0_el1",
        "ttbr1_el1",
        "tcr_el1",
        "mair_el1",
        "vbar_el1",
        "tpidr_el1",
        "sp_el1",
        "elr_el1",
        "spsr_el1",
        "esr_el1",
        "far_el1",
        "contextidr_el1",
        "csselr_el1",
        "cpacr_el1",
        "par_el1",
        "amair_el1",
        "actlr_el1",
    ],
    RegClass.VGIC: (
        ["gich_hcr", "gich_vmcr", "gich_misr", "gich_eisr", "gich_elrsr", "gich_apr"]
        + ["gich_lr%d" % i for i in range(4)]
    ),
    RegClass.TIMER: ["cntv_ctl_el0", "cntv_cval_el0", "cntkctl_el1"],
    RegClass.EL2_CONFIG: ["hcr_el2", "mdcr_el2", "cptr_el2", "hstr_el2"],
    RegClass.EL2_VIRTUAL_MEMORY: ["vttbr_el2", "vtcr_el2", "vpidr_el2", "vmpidr_el2"],
}


class RegisterBank:
    """Named registers of one class with default-zero values."""

    def __init__(self, reg_class):
        self.reg_class = reg_class
        self._values = {name: 0 for name in REGISTER_NAMES[reg_class]}

    def read(self, name):
        if name not in self._values:
            raise HardwareFault(
                "register %r is not in class %s" % (name, self.reg_class.name)
            )
        return self._values[name]

    def write(self, name, value):
        if name not in self._values:
            raise HardwareFault(
                "register %r is not in class %s" % (name, self.reg_class.name)
            )
        self._values[name] = value

    def names(self):
        return list(self._values)

    def snapshot(self):
        """Copy of all values (a memory image of this bank)."""
        return dict(self._values)

    def load(self, image):
        """Restore all values from a memory image."""
        if set(image) != set(self._values):
            raise HardwareFault(
                "image does not match register class %s" % self.reg_class.name
            )
        self._values.update(image)


class RegisterFile:
    """A full set of banks, one per :class:`RegClass`."""

    def __init__(self, classes=None):
        if classes is None:
            classes = list(RegClass)
        self.banks = {reg_class: RegisterBank(reg_class) for reg_class in classes}

    def bank(self, reg_class):
        if reg_class not in self.banks:
            raise HardwareFault("no bank for class %s" % (reg_class,))
        return self.banks[reg_class]

    def read(self, reg_class, name):
        return self.bank(reg_class).read(name)

    def write(self, reg_class, name, value):
        self.bank(reg_class).write(name, value)

    def snapshot(self, classes=None):
        """Memory image {RegClass: {name: value}} of selected classes."""
        if classes is None:
            classes = list(self.banks)
        return {reg_class: self.bank(reg_class).snapshot() for reg_class in classes}

    def load(self, image):
        for reg_class, bank_image in image.items():
            self.bank(reg_class).load(bank_image)


def fresh_context_image(classes=None):
    """A zeroed saved-context image (what a new VCPU starts from)."""
    return RegisterFile(classes).snapshot()
