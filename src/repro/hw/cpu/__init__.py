"""CPU models: ARMv8 exception levels + VHE, and x86 root/non-root + VMCS."""

from repro.hw.cpu.arm import ArmCpu, ExceptionLevel
from repro.hw.cpu.registers import RegClass, RegisterBank, RegisterFile
from repro.hw.cpu.x86 import Vmcs, X86Cpu

__all__ = [
    "ArmCpu",
    "ExceptionLevel",
    "RegClass",
    "RegisterBank",
    "RegisterFile",
    "Vmcs",
    "X86Cpu",
]
