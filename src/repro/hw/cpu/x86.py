"""x86 CPU model: root/non-root operation and the VMCS.

The architectural contrast the paper draws against ARM:

* root vs non-root mode is *orthogonal* to the privilege rings — the full
  kernel/user functionality exists in both modes, so a hosted hypervisor
  (KVM) maps onto x86 as naturally as a bare-metal one.
* a vmexit/vmentry transfers essentially the whole CPU register state
  to/from the VMCS *in memory*, performed by hardware — fast for what it
  does, but it always moves everything (no software discretion).
"""

from repro.errors import HardwareFault
from repro.hw.cpu.registers import RegClass, RegisterFile

#: Register classes captured in a VMCS guest-state area.  (x86 has no
#: GIC/EL2 banks; we reuse the GP/FP/system/timer classes for the state
#: that the VMCS guest area holds.)
VMCS_GUEST_CLASSES = [RegClass.GP, RegClass.FP, RegClass.EL1_SYS, RegClass.TIMER]


class Vmcs:
    """A VM Control Structure: in-memory guest and host state areas."""

    def __init__(self, name=""):
        self.name = name
        self.guest_state = RegisterFile(VMCS_GUEST_CLASSES).snapshot()
        self.host_state = RegisterFile(VMCS_GUEST_CLASSES).snapshot()
        #: pending event-injection field (interrupt vector or None)
        self.pending_injection = None

    def __repr__(self):
        return "Vmcs(%r)" % (self.name,)


class X86Cpu:
    """One physical x86 core: register file + root-mode flag + loaded VMCS."""

    def __init__(self, index=0, vapic_capable=False):
        self.index = index
        self.vapic_capable = vapic_capable
        self.root_mode = True
        self.regs = RegisterFile(VMCS_GUEST_CLASSES)
        self.loaded_vmcs = None

    def load_vmcs(self, vmcs):
        """vmptrld: make ``vmcs`` current on this core."""
        if not self.root_mode:
            raise HardwareFault("vmptrld is a root-mode operation")
        self.loaded_vmcs = vmcs

    def vmentry(self):
        """Hardware entry to non-root mode: load guest state from the VMCS.

        Host state is stored into the VMCS host area by the same hardware
        operation, and any pending injection is delivered (returned).
        """
        if not self.root_mode:
            raise HardwareFault("vmentry from non-root mode")
        if self.loaded_vmcs is None:
            raise HardwareFault("vmentry with no VMCS loaded")
        self.loaded_vmcs.host_state = self.regs.snapshot(VMCS_GUEST_CLASSES)
        self.regs.load(self.loaded_vmcs.guest_state)
        self.root_mode = False
        injected, self.loaded_vmcs.pending_injection = (
            self.loaded_vmcs.pending_injection,
            None,
        )
        return injected

    def vmexit(self, reason=""):
        """Hardware exit to root mode: guest state to VMCS, host state back."""
        if self.root_mode:
            raise HardwareFault("vmexit from root mode (reason %r)" % reason)
        self.loaded_vmcs.guest_state = self.regs.snapshot(VMCS_GUEST_CLASSES)
        self.regs.load(self.loaded_vmcs.host_state)
        self.root_mode = True
        return reason

    def inject_on_next_entry(self, vector):
        """Queue an interrupt in the VMCS event-injection field."""
        if self.loaded_vmcs is None:
            raise HardwareFault("no VMCS loaded")
        self.loaded_vmcs.pending_injection = vector

    def __repr__(self):
        mode = "root" if self.root_mode else "non-root"
        return "X86Cpu(#%d, %s)" % (self.index, mode)
