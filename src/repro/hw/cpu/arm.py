"""ARMv8 CPU model: exception levels, banked state, traps, and VHE.

Models the architectural mechanisms the paper's analysis rests on:

* EL0/EL1/EL2 privilege levels; EL2 is a *separate mode* with its own
  (small, pre-VHE) register bank — unlike x86's orthogonal root mode.
* Software-managed state: trapping to EL2 switches almost nothing by
  itself; the hypervisor decides what to save/restore (RISC philosophy).
* Virtualization features (HCR_EL2 traps + Stage-2) that a split-mode
  hypervisor must toggle when switching between host and VM.
* ARMv8.1 VHE: the E2H bit, the expanded EL2 register bank, transparent
  redirection of EL1 sysreg encodings to EL2 registers, and the ``_el21``
  encodings a VHE hypervisor uses to touch real EL1 (guest) registers.
"""

import enum

from repro.errors import HardwareFault
from repro.hw.cpu.registers import REGISTER_NAMES, RegClass, RegisterFile


class ExceptionLevel(enum.IntEnum):
    EL0 = 0
    EL1 = 1
    EL2 = 2


#: EL1 system registers that gain an EL2 twin under VHE (TTBR1_EL2 is the
#: canonical example the paper walks through).
_VHE_TWINNED = list(REGISTER_NAMES[RegClass.EL1_SYS])


class ArmCpu:
    """One physical ARMv8 CPU core's architectural state."""

    def __init__(self, index=0, vhe_capable=False):
        self.index = index
        self.vhe_capable = vhe_capable
        self.current_el = ExceptionLevel.EL1
        #: The shared (EL0/EL1-visible) register file: GP/FP/EL1 sysregs,
        #: timer, and the GIC virtual-interface control regs live here.
        self.regs = RegisterFile()
        #: Pre-VHE EL2 has only a small dedicated bank (modeled via the
        #: EL2_CONFIG / EL2_VIRTUAL_MEMORY classes of the main file) plus
        #: its own stack/vector registers, which we fold into those banks.
        #: Under VHE (E2H=1) EL2 additionally gets a twin of every EL1
        #: system register:
        self._el2_extended = {name: 0 for name in _VHE_TWINNED}
        self._e2h = False
        #: Are the EL2 virtualization features (trapping + Stage-2) on?
        self.virt_features_enabled = False
        #: VMID of the currently-installed Stage-2 tables (0 = host/none).
        self.current_vmid = 0

    # --- mode switching ----------------------------------------------------

    def trap_to_el2(self, reason=""):
        """Hardware exception entry into EL2 (hvc, abort, or IRQ)."""
        if self.current_el == ExceptionLevel.EL2:
            raise HardwareFault("already in EL2 (trap reason %r)" % reason)
        self.current_el = ExceptionLevel.EL2
        return self.current_el

    def eret(self, target_el):
        """Exception return from EL2 to EL1 or EL0."""
        if self.current_el != ExceptionLevel.EL2:
            raise HardwareFault("eret requires EL2, currently %s" % self.current_el)
        target_el = ExceptionLevel(target_el)
        if target_el >= ExceptionLevel.EL2:
            raise HardwareFault("eret target must be EL0 or EL1")
        self.current_el = target_el
        return self.current_el

    # --- VHE (ARMv8.1) -------------------------------------------------------

    @property
    def e2h(self):
        return self._e2h

    def set_e2h(self, enabled):
        """Set the E2H bit at boot (requires VHE-capable silicon)."""
        if enabled and not self.vhe_capable:
            raise HardwareFault("E2H requires ARMv8.1 VHE-capable hardware")
        self._e2h = bool(enabled)

    # --- system register access ------------------------------------------------

    def read_sysreg(self, name):
        """Read an EL1-encoded system register, honoring VHE redirection.

        With E2H set and the CPU in EL2, accesses using EL1 encodings are
        transparently rewritten to the EL2 twin — this is what lets an
        unmodified OS kernel run in EL2 (paper Section VI).
        """
        if self._redirects(name):
            return self._el2_extended[name]
        return self.regs.read(RegClass.EL1_SYS, name)

    def write_sysreg(self, name, value):
        if self._redirects(name):
            self._el2_extended[name] = value
        else:
            self.regs.write(RegClass.EL1_SYS, name, value)

    def read_sysreg_el21(self, name):
        """VHE ``mrs x, <reg>_el21``-style access to the *real* EL1 register.

        Only meaningful (and only architecturally defined) from EL2 with
        E2H set; the VHE hypervisor uses it to touch guest state.
        """
        self._require_el21()
        return self.regs.read(RegClass.EL1_SYS, name)

    def write_sysreg_el21(self, name, value):
        self._require_el21()
        self.regs.write(RegClass.EL1_SYS, name, value)

    def _redirects(self, name):
        if name not in self._el2_extended and name not in REGISTER_NAMES[RegClass.EL1_SYS]:
            raise HardwareFault("unknown system register %r" % name)
        return self._e2h and self.current_el == ExceptionLevel.EL2

    def _require_el21(self):
        if not (self._e2h and self.current_el == ExceptionLevel.EL2):
            raise HardwareFault("_el21 encodings require EL2 with E2H set")

    # --- virtualization features --------------------------------------------------

    def enable_virt_features(self, vmid):
        """Turn on EL2 trapping + Stage-2 translation for a VM."""
        self.virt_features_enabled = True
        self.current_vmid = vmid

    def disable_virt_features(self):
        """Turn them off so EL1 software has full hardware access (host)."""
        self.virt_features_enabled = False
        self.current_vmid = 0

    # --- context movement (used by world-switch code) -------------------------------

    def save_context(self, classes):
        """Snapshot the given register classes to a memory image."""
        return self.regs.snapshot(classes)

    def load_context(self, image):
        """Load a memory image back into the register file."""
        self.regs.load(image)

    def __repr__(self):
        return "ArmCpu(#%d, %s%s)" % (
            self.index,
            self.current_el.name,
            ", E2H" if self._e2h else "",
        )
