"""Application workload models for the Figure 4 benchmarks (Table IV)."""

from repro.workloads.base import (
    CpuWorkloadModel,
    ServerWorkloadModel,
    WorkloadResult,
)
from repro.workloads.kernbench import Kernbench
from repro.workloads.hackbench import Hackbench
from repro.workloads.specjvm import SpecJvm2008
from repro.workloads.netperf import NetperfRR, NetperfStream, NetperfMaerts
from repro.workloads.apache import Apache
from repro.workloads.memcached import Memcached
from repro.workloads.mysql import MySql

#: Figure 4's x-axis, in order.
FIGURE4_WORKLOADS = [
    Kernbench(),
    Hackbench(),
    SpecJvm2008(),
    NetperfRR(),
    NetperfStream(),
    NetperfMaerts(),
    Apache(),
    Memcached(),
    MySql(),
]

__all__ = [
    "Apache",
    "CpuWorkloadModel",
    "FIGURE4_WORKLOADS",
    "Hackbench",
    "Kernbench",
    "Memcached",
    "MySql",
    "NetperfMaerts",
    "NetperfRR",
    "NetperfStream",
    "ServerWorkloadModel",
    "SpecJvm2008",
    "WorkloadResult",
]
