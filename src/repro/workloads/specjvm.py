"""SPECjvm2008 (Linaro AArch64 OpenJDK port, per Table IV).

JIT-compiled CPU work with a garbage collector: modest TLB pressure from
the moving heap, GC-driven Stage-2 exits, and little else — the paper
groups it with the CPU-intensive workloads where all hypervisors are
within a few percent of native.
"""

from repro.workloads.base import CpuWorkloadModel


class SpecJvm2008(CpuWorkloadModel):
    name = "SPECjvm2008"
    native_gcycles = 600.0
    #: JIT code + large heap: moderate TLB walk pressure
    tlb_misses_per_kcycle = 0.35
    timer_irqs_per_gcycle = 110.0
    resched_ipis_per_gcycle = 150.0
    #: GC heap growth / card-table faults exiting to the hypervisor
    stage2_exits_per_gcycle = 1200.0
    disk_irqs_per_gcycle = 0.0
