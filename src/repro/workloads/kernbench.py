"""Kernbench: Linux 3.17 allnoconfig compile (paper Table IV).

A compile is CPU-bound with heavy process churn: the virtualization tax
is the nested-paging walk on TLB misses, timer ticks that now need
virtual-interrupt delivery, rescheduling IPIs between VCPUs, Stage-2
fixup exits from fork/exec page-table churn, and a trickle of block I/O
completions for source reads and object writes.
"""

from repro.workloads.base import CpuWorkloadModel


class Kernbench(CpuWorkloadModel):
    name = "Kernbench"
    #: ~25 s of busy compile across 4 cores at ~2.4 GHz
    native_gcycles = 240.0
    #: compilers thrash the TLB: ~0.5 walked misses per kcycle
    tlb_misses_per_kcycle = 0.5
    #: 250 Hz ticks x 4 VCPUs, scaled per Gcycle of 4-core execution
    timer_irqs_per_gcycle = 110.0
    #: make -j spawns/reaps constantly: cross-VCPU wakeups
    resched_ipis_per_gcycle = 900.0
    #: fork/exec page-table churn that exits to the hypervisor
    stage2_exits_per_gcycle = 1000.0
    #: source tree reads / object writes via the paravirtual disk
    disk_irqs_per_gcycle = 500.0
