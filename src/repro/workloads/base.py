"""Workload model machinery for the Figure 4 application benchmarks.

Each workload converts the *measured* per-operation costs of a platform
(:class:`repro.core.derived.DerivedOpCosts`) plus its own event mix into
a normalized overhead (1.0 = native).  Two reusable shapes cover the
paper's workloads:

* :class:`CpuWorkloadModel` — CPU-bound work whose virtualization cost is
  a stream of hypervisor-mediated events (TLB walks, timer ticks,
  rescheduling IPIs) diluted into a large compute time.

* :class:`ServerWorkloadModel` — request/response servers whose
  bottleneck under virtualization is Section V's finding: all virtual
  interrupts funnel to VCPU0, and the delivery cost plus the guest-side
  interrupt processing saturates that one PCPU long before the others.

Both leave the platform differences entirely to the measured operation
costs — the same workload parameters are used for every hypervisor.
"""

import dataclasses

from repro.errors import ConfigurationError

VM_VCPUS = 4  # the paper's 4-way SMP VM configuration


@dataclasses.dataclass
class WorkloadResult:
    workload: str
    key: str
    native_metric: float
    virt_metric: float
    #: normalized performance, 1.0 = native, higher = more overhead
    normalized: float
    #: what saturated first (reported for analysis): 'cpu', 'vcpu0',
    #: 'backend', 'wire', or 'latency'
    bottleneck: str = "cpu"


class Workload:
    """Base: a named workload producing a WorkloadResult per platform."""

    name = "workload"

    def run(self, derived, context):
        """Return a WorkloadResult.

        ``derived`` is the platform's DerivedOpCosts; ``context`` is an
        AppBenchContext with clocks/netstack/kernel models and the IRQ
        affinity setting under test.
        """
        raise NotImplementedError


class CpuWorkloadModel(Workload):
    """CPU-bound workload: overhead = diluted event costs.

    Event rates are per *billion cycles* of native work, so the model is
    platform-frequency independent.
    """

    name = "cpu-workload"
    #: native busy time, in billions of cycles (all VCPUs combined)
    native_gcycles = 10.0
    #: hardware-walked TLB misses per thousand cycles (Stage-2 doubles
    #: the walk depth — the classic nested-paging tax)
    tlb_misses_per_kcycle = 0.0
    #: timer interrupts per billion cycles (250 Hz x 4 VCPUs at 2.4GHz
    #: is ~417 per Gcycle)
    timer_irqs_per_gcycle = 0.0
    #: rescheduling IPIs between VCPUs per billion cycles
    resched_ipis_per_gcycle = 0.0
    #: guest page faults that exit to the hypervisor (Stage-2 fixups,
    #: swap-backed COW) per billion cycles
    stage2_exits_per_gcycle = 0.0
    #: block I/O completions (virtual disk interrupts) per billion cycles
    disk_irqs_per_gcycle = 0.0

    def run(self, derived, context):
        costs = context.costs
        native_cycles = self.native_gcycles * 1e9
        walk_extra = 3 * costs.stage2_walk_per_level  # 2D walk: extra levels
        per_gcycle = (
            self.tlb_misses_per_kcycle * 1e6 * walk_extra
            + self.timer_irqs_per_gcycle
            * (derived.io_notify_running + derived.virq_complete)
            + self.resched_ipis_per_gcycle
            * (derived.virtual_ipi + derived.virq_complete - context.native_ipi_cycles)
            + self.stage2_exits_per_gcycle * derived.hypercall
            + self.disk_irqs_per_gcycle * derived.block_io_overhead
        )
        overhead_cycles = per_gcycle * self.native_gcycles
        virt_cycles = native_cycles + overhead_cycles
        return WorkloadResult(
            workload=self.name,
            key=derived.key,
            native_metric=native_cycles,
            virt_metric=virt_cycles,
            normalized=virt_cycles / native_cycles,
            bottleneck="cpu",
        )


class ServerWorkloadModel(Workload):
    """Request/response server with the VCPU0 interrupt bottleneck.

    Throughput is the minimum over four stages:

    * app:     VM_VCPUS / per-request CPU work (app work spreads)
    * vcpu0:   1 / (vcpu0's app share + ALL interrupt work when virtual
               IRQs target a single VCPU — the Section V bottleneck)
    * backend: 1 / backend CPU per request (vhost worker or Dom0 netback,
               a single thread; includes Xen's grant copies)
    * wire:    10 GbE line rate

    Normalized overhead = native throughput / virtualized throughput.
    """

    name = "server-workload"
    #: native CPU per request across all cores, microseconds
    request_cpu_us = 300.0
    #: response size determines packet counts
    response_packets = 28
    request_packets = 1
    #: virtual interrupt deliveries per request: the guest driver's
    #: coalescing behavior (virtio event-idx coalesces well; xen-netfront
    #: takes an upcall per ring batch)
    deliveries_kvm = 6.0
    deliveries_xen = 29.0
    #: guest-side per-delivery work beyond the stack's own rx processing
    guest_per_delivery_us = 0.55
    #: override for Xen guests (netfront's upcall is heavier); None = same
    guest_per_delivery_xen_us = None
    #: virtio/PV doorbells per request (tx path)
    kicks_per_request = 3.0
    #: backend (vhost/netback) base CPU per request, microseconds
    backend_base_us = 12.0
    #: bytes moved per request (for Xen's grant copies + wire limit)
    response_bytes = 41 * 1024

    def deliveries(self, derived):
        return self.deliveries_xen if derived.key.startswith("xen") else self.deliveries_kvm

    def guest_per_delivery(self, derived):
        if derived.key.startswith("xen") and self.guest_per_delivery_xen_us is not None:
            return self.guest_per_delivery_xen_us
        return self.guest_per_delivery_us

    def run(self, derived, context):
        if context.irq_vcpus < 1:
            raise ConfigurationError("need at least one IRQ-handling VCPU")
        us = derived.us
        deliveries = self.deliveries(derived)
        # --- spreadable per-request work added by virtualization
        kick_us = self.kicks_per_request * us(derived.io_kick)
        delivery_us = deliveries * (
            us(derived.delivery_occupancy) + self.guest_per_delivery(derived)
        )
        request_virt_us = self.request_cpu_us + kick_us + delivery_us
        # --- stage capacities (requests per second)
        cap_app = VM_VCPUS / request_virt_us * 1e6
        # vcpu0 carries its 1/N share of the spreadable work plus the
        # fraction of interrupt work that is not spread to other VCPUs.
        irq_share = 1.0 / min(context.irq_vcpus, VM_VCPUS)
        vcpu0_us = (request_virt_us - delivery_us) / VM_VCPUS + delivery_us * irq_share
        cap_vcpu0 = 1e6 / vcpu0_us
        backend_us = self.backend_base_us + self._backend_copy_us(derived)
        cap_backend = 1e6 / backend_us
        total_bytes = self.response_bytes + self.request_packets * 1500
        cap_wire = context.wire_bps / 8.0 / total_bytes
        caps = {
            "cpu": cap_app,
            "vcpu0": cap_vcpu0,
            "backend": cap_backend,
            "wire": cap_wire,
        }
        bottleneck = min(caps, key=caps.get)
        virt_rps = caps[bottleneck]
        native_rps = min(VM_VCPUS / self.request_cpu_us * 1e6, cap_wire)
        return WorkloadResult(
            workload=self.name,
            key=derived.key,
            native_metric=native_rps,
            virt_metric=virt_rps,
            normalized=native_rps / virt_rps,
            bottleneck=bottleneck,
        )

    def _backend_copy_us(self, derived):
        if derived.grant_copy_page == 0:
            return 0.0  # zero copy (KVM/vhost)
        pages = max(1, self.response_bytes // 4096)
        return derived.us(derived.grant_copy_page) * pages
