"""Hackbench: 100 process groups x 500 loops over Unix domain sockets.

The paper's scheduler stress test: "lots of threads that are sleeping and
waking up, requiring frequent IPIs for rescheduling."  Its virtualization
cost is dominated by virtual IPI delivery — which is why Xen ARM, with
its ~2x faster virtual IPIs, posts its biggest win over KVM ARM here
(and why the paper notes even that win is only ~5% of native).
"""

from repro.workloads.base import CpuWorkloadModel


class Hackbench(CpuWorkloadModel):
    name = "Hackbench"
    #: ~4 s across 4 cores
    native_gcycles = 40.0
    tlb_misses_per_kcycle = 0.3
    timer_irqs_per_gcycle = 110.0
    #: the defining rate: cross-VCPU rescheduling IPIs from the constant
    #: sleep/wake churn of 100 x 20 communicating tasks
    resched_ipis_per_gcycle = 9500.0
    stage2_exits_per_gcycle = 200.0
    disk_irqs_per_gcycle = 0.0
