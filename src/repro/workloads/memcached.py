"""Memcached under memtier with default parameters (Table IV).

High request rate, tiny responses: the interrupt machinery coalesces
aggressively (fractional deliveries per request), so the single-VCPU
bottleneck is milder than Apache's — the paper measures 26% (KVM) / 32%
(Xen) dropping to 8% / 9% when virtual IRQs are distributed.
"""

from repro.workloads.base import ServerWorkloadModel


class Memcached(ServerWorkloadModel):
    name = "Memcached"
    #: ~100k ops/s native on 4 cores
    request_cpu_us = 40.0
    response_bytes = 1024
    response_packets = 1
    request_packets = 1
    #: heavy NAPI/event-idx coalescing at memcached rates
    deliveries_kvm = 0.6
    deliveries_xen = 1.3
    guest_per_delivery_us = 0.55
    guest_per_delivery_xen_us = 1.10
    kicks_per_request = 0.4
    backend_base_us = 5.0
