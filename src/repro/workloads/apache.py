"""Apache 2.4 serving the 41 KB GCC manual index at 100-way concurrency.

The paper's headline interrupt-bottleneck case (Section V): with all
virtual interrupts on VCPU0 the overhead is 35% (KVM ARM) / 84% (Xen
ARM); distributing them drops it to 14% / 16%.  The gap between the
hypervisors comes from delivery cost times delivery *count*: virtio's
event-index coalescing keeps KVM's deliveries per request low, while
xen-netfront takes an upcall per ring batch — roughly one per packet of
the 28-packet response.
"""

from repro.workloads.base import ServerWorkloadModel


class Apache(ServerWorkloadModel):
    name = "Apache"
    #: native: ~13.3k req/s on 4 cores serving 41 KB responses
    request_cpu_us = 300.0
    response_bytes = 41 * 1024
    response_packets = 28
    request_packets = 1
    deliveries_kvm = 6.0
    deliveries_xen = 29.0
    guest_per_delivery_us = 0.55
    #: xen-netfront's per-upcall work: evtchn scan + grant bookkeeping
    guest_per_delivery_xen_us = 1.10
    kicks_per_request = 3.0
    backend_base_us = 12.0
