"""Netperf workloads: TCP_RR, TCP_STREAM, TCP_MAERTS (Table IV).

* TCP_RR is a latency benchmark: its Figure 4 bar is the ratio of the
  packet-level simulation's time-per-transaction (Table V machinery) to
  native — no separate model.
* TCP_STREAM (client -> VM) and TCP_MAERTS (VM -> client) are throughput
  pipelines: each stage (host/Dom0 backend, guest stack) has a measured
  per-segment CPU cost, and throughput is the minimum of the wire rate
  and each stage's capacity.  The paper's findings encoded here:
  - KVM's zero-copy rings keep both directions wire-limited
    ("almost no overhead" on TCP_STREAM);
  - Xen's receive path grant-copies every MTU packet in Dom0 — the
    ">250% overhead" result;
  - Xen's transmit path is crippled by the Linux 4.0-rc1 TSO-autosizing
    regression, which shrinks xen-netfront's effective segments (the
    ``tso_autosizing_fixed`` knob reproduces the paper's observation
    that tuning the guest's TCP configuration recovers the loss).
"""

from repro.workloads.base import Workload, WorkloadResult

SEGMENT_BYTES = 64 * 1024
MTU_BYTES = 1500
#: TCP goodput achievable on the 10 GbE link
WIRE_GOODPUT_BPS = 9.41e9
#: netback per-packet ring work beyond the grant copy itself (us)
NETBACK_PER_PACKET_US = 0.75
#: xen-netfront per-packet grant bookkeeping in the guest (us)
NETFRONT_PER_PACKET_US = 1.45
#: virtio guest driver per-segment work (us)
VIRTIO_PER_SEGMENT_US = 1.2
#: effective xen-netfront segment size under the TSO autosizing bug
XEN_BUGGED_SEGMENT_BYTES = 4096


class NetperfRR(Workload):
    """TCP_RR: 1-byte ping-pong; the bar is latency-normalized."""

    name = "TCP_RR"

    def run(self, derived, context):
        native_us, virt_us = context.rr_times_us(derived.key)
        return WorkloadResult(
            workload=self.name,
            key=derived.key,
            native_metric=native_us,
            virt_metric=virt_us,
            normalized=virt_us / native_us,
            bottleneck="latency",
        )


class _ThroughputPipeline(Workload):
    """Shared machinery: throughput = min(wire, stages).

    The wire goodput scales with the context's link speed — the paper's
    Section III observation that over 1 GbE "many benchmarks were
    unaffected by virtualization ... because the network itself became
    the bottleneck" falls out of this.
    """

    GOODPUT_FRACTION = WIRE_GOODPUT_BPS / 10e9  # TCP efficiency

    def _result(self, derived, context, stage_caps_bps):
        wire_goodput = context.wire_bps * self.GOODPUT_FRACTION
        native_bps = wire_goodput  # native is wire-limited at both speeds
        caps = dict(stage_caps_bps)
        caps["wire"] = wire_goodput
        bottleneck = min(caps, key=caps.get)
        virt_bps = caps[bottleneck]
        return WorkloadResult(
            workload=self.name,
            key=derived.key,
            native_metric=native_bps,
            virt_metric=virt_bps,
            normalized=native_bps / virt_bps,
            bottleneck=bottleneck,
        )

    @staticmethod
    def _cap(segment_bytes, stage_us):
        return segment_bytes * 8 / (stage_us / 1e6)


class NetperfStream(_ThroughputPipeline):
    """TCP_STREAM: bulk data *into* the VM (the receive path)."""

    name = "TCP_STREAM"

    def run(self, derived, context):
        us = derived.us
        bulk = context.bulk_segment_us
        packets = SEGMENT_BYTES // MTU_BYTES + 1
        if derived.grant_copy_page == 0:
            # KVM: GRO'd segments flow through vhost zero-copy; one
            # coalesced interrupt per segment.
            host_us = bulk + us(context.costs.vhost_dequeue) + 0.5
            guest_us = bulk + VIRTIO_PER_SEGMENT_US + us(
                derived.delivery_occupancy + derived.virq_complete
            )
            stages = {
                "backend": self._cap(SEGMENT_BYTES, host_us),
                "vcpu0": self._cap(SEGMENT_BYTES, guest_us),
            }
        else:
            # Xen: GRO does not survive the bridge->vif boundary; netback
            # grant-copies every MTU packet into DomU memory.
            dom0_us = bulk + packets * (
                us(derived.grant_copy_mtu_batched) + NETBACK_PER_PACKET_US
            )
            guest_us = bulk + packets * NETFRONT_PER_PACKET_US + us(
                derived.delivery_occupancy + derived.virq_complete
            )
            stages = {
                "backend": self._cap(SEGMENT_BYTES, dom0_us),
                "vcpu0": self._cap(SEGMENT_BYTES, guest_us),
            }
        return self._result(derived, context, stages)


class NetperfMaerts(_ThroughputPipeline):
    """TCP_MAERTS: bulk data *out of* the VM (the transmit path)."""

    name = "TCP_MAERTS"

    def run(self, derived, context):
        us = derived.us
        bulk = context.bulk_segment_us
        if derived.grant_copy_page == 0:
            segment = SEGMENT_BYTES
            guest_us = (
                bulk
                + VIRTIO_PER_SEGMENT_US
                + us(derived.io_kick)
                + us(derived.delivery_occupancy)  # tx-completion interrupt
            )
            stages = {"vcpu0": self._cap(segment, guest_us)}
        else:
            segment = (
                SEGMENT_BYTES
                if context.tso_autosizing_fixed
                else XEN_BUGGED_SEGMENT_BYTES
            )
            scale = segment / SEGMENT_BYTES
            pages = max(1, segment // 4096)
            guest_us = bulk * scale + NETFRONT_PER_PACKET_US + us(derived.io_kick)
            dom0_us = (
                bulk * scale
                + pages * us(derived.grant_copy_page_batched)
                + NETBACK_PER_PACKET_US
            )
            stages = {
                "vcpu0": self._cap(segment, guest_us),
                "backend": self._cap(segment, dom0_us),
            }
        return self._result(derived, context, stages)
