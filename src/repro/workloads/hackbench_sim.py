"""Process-level hackbench: sender/receiver pairs ping-ponging messages
across VCPUs on the discrete-event engine.

This cross-validates the closed-form :class:`repro.workloads.Hackbench`
model: instead of multiplying an IPI rate by an IPI cost, it *runs* the
message pattern — each cross-VCPU wakeup charges the platform's measured
IPI sender path on the sending VCPU, crosses the IPI wire, and charges
the delivery path on the receiving VCPU, with all queueing (messages
serializing behind interrupt work on a busy VCPU) emerging from the
simulation.

Per-message kernel work (socket write + copy + socket read) comes from
the kernel cost model and is identical across configurations; only the
wakeup machinery differs — exactly the paper's explanation for why Xen
ARM posts its biggest (yet still small) win here.
"""

import dataclasses

from repro.os.procsim import ExecutorPool

#: socket write syscall + 100-byte copy + queue bookkeeping (ns)
SEND_WORK_NS = 1900.0
#: socket read + copy + loop bookkeeping (ns)
RECV_WORK_NS = 1700.0
#: native: sending a rescheduling IPI from the wake_up path (ns)
NATIVE_IPI_SEND_NS = 300.0
#: native: taking the rescheduling IPI + scheduling the wakee (ns)
NATIVE_IPI_RECV_NS = 550.0
#: per-message application/loop compute between socket operations (ns)
COMPUTE_NS = 6000.0
#: fraction of messages that find the receiver asleep and need a
#: cross-CPU rescheduling IPI (the rest find it already runnable —
#: hackbench's senders run far ahead of receivers most of the time)
IPI_FRACTION = 0.4


@dataclasses.dataclass
class HackbenchSimResult:
    config: str
    total_cycles: int
    messages: int
    cpu_busy_cycles: int

    def normalized_to(self, native):
        return self.total_cycles / native.total_cycles


class HackbenchSimulation:
    """Runs pairs x loops messages over ``num_cpus`` executors."""

    def __init__(self, testbed, derived=None, pairs=40, loops=40, num_cpus=4):
        self.testbed = testbed
        self.derived = derived
        self.pairs = pairs
        self.loops = loops
        self.num_cpus = num_cpus
        self.engine = testbed.engine
        self.clock = testbed.clock

    # --- per-platform wakeup costs ------------------------------------------

    def _wakeup_costs(self):
        """(sender_extra, wire, receiver_extra) in cycles."""
        if self.derived is None:  # native
            return (
                self.clock.cycles_from_ns(NATIVE_IPI_SEND_NS),
                self.testbed.machine.costs.ipi_wire,
                self.clock.cycles_from_ns(NATIVE_IPI_RECV_NS),
            )
        derived = self.derived
        wire = self.testbed.machine.costs.ipi_wire
        receiver = derived.delivery_occupancy
        sender = max(0, derived.virtual_ipi - receiver - wire)
        return sender, wire, receiver

    # --- the simulation -------------------------------------------------------

    @staticmethod
    def _needs_ipi(loop):
        """Deterministic 40% of messages pay the cross-CPU wakeup."""
        return (loop * 2) % 5 < 2

    def run(self):
        sender_extra, wire, receiver_extra = self._wakeup_costs()
        send_work = self.clock.cycles_from_ns(SEND_WORK_NS + COMPUTE_NS)
        recv_work = self.clock.cycles_from_ns(RECV_WORK_NS)
        pool = ExecutorPool(self.engine, self.num_cpus, prefix="vcpu")
        finished = self.engine.event("hackbench-finished")
        state = {"done_pairs": 0, "messages": 0}

        def start_pair(pair):
            sender_cpu = pool[pair]
            receiver_cpu = pool[pair + 1]  # force cross-CPU wakeups

            def send(loop):
                sent = self.engine.event()
                ipi = self._needs_ipi(loop)
                cost = send_work + (sender_extra if ipi else 0)
                sender_cpu.submit(cost, sent)
                sent.on_fire(
                    lambda _value: self.engine.schedule(wire, lambda: receive(loop))
                )

            def receive(loop):
                received = self.engine.event()
                cost = recv_work + (receiver_extra if self._needs_ipi(loop) else 0)
                receiver_cpu.submit(cost, received)
                received.on_fire(lambda _value: next_loop(loop))

            def next_loop(loop):
                state["messages"] += 1
                if loop + 1 < self.loops:
                    send(loop + 1)
                else:
                    state["done_pairs"] += 1
                    if state["done_pairs"] == self.pairs:
                        finished.fire(self.engine.now)

            send(0)

        start = self.engine.now
        for pair in range(self.pairs):
            start_pair(pair)
        self.engine.run_until_fired(finished, deadline=int(1e15))
        return HackbenchSimResult(
            config=self.testbed.key,
            total_cycles=self.engine.now - start,
            messages=state["messages"],
            cpu_busy_cycles=pool.total_busy_cycles(),
        )


def run_hackbench_comparison(pairs=40, loops=40):
    """Native vs KVM ARM vs Xen ARM, process-level."""
    from repro.core.derived import measure_derived_costs
    from repro.core.testbed import build_testbed, native_testbed

    results = {}
    results["native"] = HackbenchSimulation(
        native_testbed("arm"), derived=None, pairs=pairs, loops=loops
    ).run()
    for key in ("kvm-arm", "xen-arm"):
        results[key] = HackbenchSimulation(
            build_testbed(key),
            derived=measure_derived_costs(key),
            pairs=pairs,
            loops=loops,
        ).run()
    return results
