"""MySQL 5.5 under SysBench, 200 parallel transactions (Table IV).

OLTP mixes CPU (query execution), paravirtual disk I/O (log flushes and
data pages), and light network chatter with the SysBench client.  Figure
4 shows moderate overhead everywhere, Xen slightly worse than KVM on ARM
because every disk and network completion runs the Dom0 signaling path.
"""

from repro.workloads.base import CpuWorkloadModel


class MySql(CpuWorkloadModel):
    name = "MySQL"
    native_gcycles = 120.0
    tlb_misses_per_kcycle = 0.3
    timer_irqs_per_gcycle = 110.0
    resched_ipis_per_gcycle = 600.0
    stage2_exits_per_gcycle = 300.0
    #: the defining rate: fsync-heavy OLTP drives constant virtual disk
    #: kicks and completion interrupts
    disk_irqs_per_gcycle = 2000.0
