"""Testbed construction: the paper's Section III experimental setup.

Each benchmarked configuration is a 4-VCPU / 12 GB VM on an 8-core server,
every VCPU pinned to its own PCPU, host/Dom0 work kept on a disjoint set
of PCPUs:

* KVM: host owns PCPUs 0-3 (device IRQs + vhost there), VM on PCPUs 4-7.
* Xen: Dom0 (4 VCPUs, 4 GB) on PCPUs 0-3, DomU on PCPUs 4-7.

A second VM pinned to the *same* PCPUs as the first supports the VM
Switch microbenchmark (oversubscription scenario).
"""

import dataclasses

from repro.errors import ConfigurationError
from repro.hv import build_hypervisor
from repro.hv.blockio import BlockIoPath
from repro.hw.dev.block import raid5_hd, sata_ssd
from repro.hw.dev.nic import Nic
from repro.hw.dev.wire import Wire
from repro.hw.platform import Machine, arm_m400, x86_r320
from repro.os.drivers.virtio_net import VirtioNetFrontend
from repro.os.drivers.xen_netfront import XenNetfront
from repro.os.kernel import KernelModel
from repro.os.netstack import NetstackModel

#: The paper's four platform columns, plus the ARMv8.1 VHE projection.
PLATFORM_KEYS = ["kvm-arm", "xen-arm", "kvm-x86", "xen-x86"]
ALL_KEYS = PLATFORM_KEYS + ["kvm-vhe-arm"]

VM_PCPUS = [4, 5, 6, 7]
HOST_PCPUS = [0, 1, 2, 3]
#: paper Section III: each VM is configured with 12 GB of RAM
VM_MEMORY_MB = 12288
#: physical IRQ line the server NIC raises (SPI number on the GIC)
SERVER_NIC_IRQ = 64


@dataclasses.dataclass
class Testbed:
    """One booted, configured server + hypervisor + VM(s) + network."""

    key: str
    machine: object
    hypervisor: object
    vm: object
    vm2: object
    netstack: object
    kernel: object
    frontend: object
    server_nic: object
    client_nic: object
    wire: object
    block_device: object = None
    block_path: object = None

    @property
    def clock(self):
        return self.machine.clock

    @property
    def engine(self):
        return self.machine.engine


def parse_key(key):
    """'kvm-arm' -> (hv_kind, arch, vhe)."""
    if key == "kvm-vhe-arm":
        return "kvm", "arm", True
    parts = key.rsplit("-", 1)
    if len(parts) != 2 or parts[0] not in ("kvm", "xen") or parts[1] not in ("arm", "x86"):
        raise ConfigurationError("unknown platform key %r" % (key,))
    return parts[0], parts[1], False


def build_testbed(key, seed=2016, vapic=False, costs=None):
    """Build the full testbed for one platform column of Table II."""
    hv_kind, arch, vhe = parse_key(key)
    if arch == "arm":
        platform = arm_m400(vhe_capable=vhe, costs=costs)
    else:
        platform = x86_r320(vapic_enabled=vapic, costs=costs)
    machine = Machine(platform, seed=seed)
    hypervisor = build_hypervisor(hv_kind, machine, vhe=vhe)

    if hv_kind == "xen":
        hypervisor.boot_dom0(num_vcpus=4, pcpu_indices=HOST_PCPUS)
    vm = hypervisor.create_vm("vm0", 4, VM_PCPUS, memory_mb=VM_MEMORY_MB)
    vm2 = hypervisor.create_vm("vm1", 4, VM_PCPUS, memory_mb=VM_MEMORY_MB)

    netstack = NetstackModel(machine.clock)
    kernel = KernelModel(machine.clock)
    frontend = (
        XenNetfront(machine.clock) if hv_kind == "xen" else VirtioNetFrontend(machine.clock)
    )

    server_nic = Nic(machine.engine, "server", irq=SERVER_NIC_IRQ)
    client_nic = Nic(machine.engine, "client")
    wire = Wire(machine.engine, machine.clock)
    server_nic.attach(wire)
    client_nic.attach(wire)
    hypervisor.attach_network(server_nic, netstack)

    # The paper's storage: SATA SSD on the m400, RAID5 HDs on the r320.
    block_device = (
        sata_ssd(machine.engine, machine.clock)
        if arch == "arm"
        else raid5_hd(machine.engine, machine.clock)
    )
    block_path = BlockIoPath(hypervisor, block_device)

    return Testbed(
        key=key,
        machine=machine,
        hypervisor=hypervisor,
        vm=vm,
        vm2=vm2,
        netstack=netstack,
        kernel=kernel,
        frontend=frontend,
        server_nic=server_nic,
        client_nic=client_nic,
        wire=wire,
        block_device=block_device,
        block_path=block_path,
    )


def native_testbed(arch, seed=2016):
    """A machine with no hypervisor — the native baseline runs here."""
    platform = arm_m400() if arch == "arm" else x86_r320()
    machine = Machine(platform, seed=seed)
    netstack = NetstackModel(machine.clock)
    kernel = KernelModel(machine.clock)
    server_nic = Nic(machine.engine, "server", irq=SERVER_NIC_IRQ)
    client_nic = Nic(machine.engine, "client")
    wire = Wire(machine.engine, machine.clock)
    server_nic.attach(wire)
    client_nic.attach(wire)
    return Testbed(
        key="native-%s" % arch,
        machine=machine,
        hypervisor=None,
        vm=None,
        vm2=None,
        netstack=netstack,
        kernel=kernel,
        frontend=None,
        server_nic=server_nic,
        client_nic=client_nic,
        wire=wire,
        block_device=(
            sata_ssd(machine.engine, machine.clock)
            if arch == "arm"
            else raid5_hd(machine.engine, machine.clock)
        ),
    )
