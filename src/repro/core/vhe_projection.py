"""Section VI: what the Virtualization Host Extensions buy KVM ARM.

The paper could not run VHE on hardware (ARMv8.1 silicon did not exist);
it projects from the measurements that VHE should improve Hypercall and
I/O Latency Out by more than an order of magnitude and realistic I/O
workloads by 10-20%.  Our simulator *can* run the VHE configuration —
the same KVM model with E2H set and the EL1 state switch gone — so this
module produces both the microbenchmark and application comparisons.
"""

import dataclasses

from repro.core.appbench import run_figure4
from repro.core.microbench import MicrobenchmarkSuite
from repro.core.testbed import build_testbed


@dataclasses.dataclass
class VheComparison:
    microbench: dict  # {name: (split_cycles, vhe_cycles, speedup)}
    applications: dict  # {workload: (split_norm, vhe_norm, improvement_pts)}

    def microbench_speedup(self, name):
        return self.microbench[name][2]

    def app_improvement(self, workload):
        return self.applications[workload][2]


#: the I/O-bound workloads the 10-20% projection speaks to
IO_WORKLOADS = ["TCP_RR", "Apache", "Memcached"]


def run_vhe_comparison(app_workloads=None):
    split = MicrobenchmarkSuite(build_testbed("kvm-arm")).run_all()
    vhe = MicrobenchmarkSuite(build_testbed("kvm-vhe-arm")).run_all()
    microbench = {
        name: (split[name], vhe[name], split[name] / vhe[name]) for name in split
    }
    grid = run_figure4(["kvm-arm", "kvm-vhe-arm"], workloads=app_workloads)
    applications = {}
    for workload, row in grid.items():
        split_norm = row["kvm-arm"].normalized
        vhe_norm = row["kvm-vhe-arm"].normalized
        applications[workload] = (
            split_norm,
            vhe_norm,
            (split_norm - vhe_norm) * 100.0,
        )
    return VheComparison(microbench=microbench, applications=applications)
