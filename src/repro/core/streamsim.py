"""Bulk-stream simulation: TCP_STREAM as a windowed pipeline on the DES.

The Figure 4 TCP_STREAM/TCP_MAERTS bars come from a closed-form
``min(wire, stages)`` pipeline.  This module cross-validates it by
*running* the stream: segments flow through a chain of work queues
(wire serialization, backend CPU, guest CPU) under a TCP-like in-flight
window, and throughput is measured from delivered bytes over simulated
time.  Saturation of the slowest stage — and the idle gaps everywhere
else — emerge from the event engine.
"""

import dataclasses

from repro.errors import ConfigurationError
from repro.os.procsim import VcpuExecutor

SEGMENT_BYTES = 64 * 1024
MTU_BYTES = 1500


@dataclasses.dataclass
class StreamStage:
    """One pipeline stage: a name + per-segment CPU/wire cycles."""

    name: str
    cycles_per_segment: int


@dataclasses.dataclass
class StreamSimResult:
    key: str
    segments: int
    total_cycles: int
    throughput_bps: float
    bottleneck: str
    stage_utilization: dict

    def normalized_to(self, native):
        return native.throughput_bps / self.throughput_bps


class StreamSimulation:
    """Runs ``segments`` through the stage chain under a window."""

    def __init__(self, testbed, stages, segments=300, window=16,
                 segment_bytes=SEGMENT_BYTES):
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if not stages:
            raise ConfigurationError("need at least one stage")
        self.testbed = testbed
        self.stages = stages
        self.segments = segments
        self.window = window
        self.segment_bytes = segment_bytes
        self.engine = testbed.engine

    def run(self):
        executors = [
            VcpuExecutor(self.engine, stage.name) for stage in self.stages
        ]
        finished = self.engine.event("stream-finished")
        state = {"sent": 0, "delivered": 0}

        def send_segment():
            if state["sent"] >= self.segments:
                return
            state["sent"] += 1
            advance(0)

        def advance(stage_index):
            done = self.engine.event()
            executors[stage_index].submit(
                self.stages[stage_index].cycles_per_segment, done
            )
            if stage_index + 1 < len(self.stages):
                done.on_fire(lambda _value: advance(stage_index + 1))
            else:
                done.on_fire(complete)

        def complete(_value):
            state["delivered"] += 1
            if state["delivered"] >= self.segments:
                if not finished.fired:
                    finished.fire(self.engine.now)
            else:
                send_segment()  # window slot freed

        start = self.engine.now
        for _slot in range(min(self.window, self.segments)):
            send_segment()
        self.engine.run_until_fired(finished, deadline=int(1e15))
        total = self.engine.now - start
        frequency = self.testbed.machine.platform.frequency_hz
        utilization = {
            stage.name: executor.busy_cycles / total
            for stage, executor in zip(self.stages, executors)
        }
        bottleneck = max(utilization, key=utilization.get)
        return StreamSimResult(
            key=self.testbed.key,
            segments=state["delivered"],
            total_cycles=total,
            throughput_bps=state["delivered"] * self.segment_bytes * 8
            / (total / frequency),
            bottleneck=bottleneck,
            stage_utilization=utilization,
        )


def build_stream_stages(testbed, derived=None):
    """The TCP_STREAM receive-path stages for one configuration.

    Per-segment costs mirror :class:`repro.workloads.netperf.NetperfStream`
    so the DES run validates the closed form.
    """
    from repro.workloads.netperf import (
        NETBACK_PER_PACKET_US,
        NETFRONT_PER_PACKET_US,
        VIRTIO_PER_SEGMENT_US,
    )

    clock = testbed.clock
    wire_cycles = testbed.wire.transfer_cycles(SEGMENT_BYTES)
    bulk = testbed.netstack.bulk_segment_cycles()
    stages = [StreamStage("wire", wire_cycles)]
    if derived is None:  # native receive path
        stages.append(StreamStage("host", bulk))
        return stages
    packets = SEGMENT_BYTES // MTU_BYTES + 1
    if derived.grant_copy_page == 0:  # KVM
        host = bulk + testbed.machine.costs.vhost_dequeue + clock.cycles_from_us(0.5)
        guest = (
            bulk
            + clock.cycles_from_us(VIRTIO_PER_SEGMENT_US)
            + derived.delivery_occupancy
            + derived.virq_complete
        )
    else:  # Xen
        host = bulk + packets * (
            derived.grant_copy_mtu_batched
            + clock.cycles_from_us(NETBACK_PER_PACKET_US)
        )
        guest = (
            bulk
            + packets * clock.cycles_from_us(NETFRONT_PER_PACKET_US)
            + derived.delivery_occupancy
            + derived.virq_complete
        )
    stages.append(StreamStage("backend", host))
    stages.append(StreamStage("vcpu0", guest))
    return stages


def run_stream_comparison(segments=200):
    """Native vs KVM ARM vs Xen ARM TCP_STREAM, packet level."""
    from repro.core.derived import measure_derived_costs
    from repro.core.testbed import build_testbed, native_testbed

    results = {}
    native_tb = native_testbed("arm")
    results["native"] = StreamSimulation(
        native_tb, build_stream_stages(native_tb), segments
    ).run()
    for key in ("kvm-arm", "xen-arm"):
        testbed = build_testbed(key)
        derived = measure_derived_costs(key)
        results[key] = StreamSimulation(
            testbed, build_stream_stages(testbed, derived), segments
        ).run()
    return results
