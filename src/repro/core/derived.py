"""Derived per-operation costs: what the application models consume.

Every number here is *measured by running the simulated hypervisor paths*
(fresh testbed per probe), so the application benchmark results inherit
their platform differences from the same mechanism the microbenchmarks
measure — the paper's core argument made executable.
"""

import dataclasses

from repro.core.microbench import MicrobenchmarkSuite
from repro.core.testbed import build_testbed
from repro.hv.base import PAGE_SIZE
from repro.hv.blockio import native_block_cycles
from repro.hw.mem.grant import grant_copy_cycles

MTU_BYTES = 1500
TSO_SEGMENT_BYTES = 64 * 1024
#: netback batches grant-unmap TLB flushes over this many slots
GRANT_BATCH = 16


@dataclasses.dataclass
class DerivedOpCosts:
    """Per-operation costs (cycles) for one platform configuration."""

    key: str
    frequency_hz: float
    hypercall: int
    intc_trap: int
    virtual_ipi: int
    virq_complete: int
    vm_switch: int
    io_kick: int
    io_notify_blocked: int
    io_notify_running: int
    #: cycles the *target VCPU's* PCPU is occupied per delivery to a
    #: running VM (the Section V interrupt-bottleneck quantity)
    delivery_occupancy: int
    #: one grant copy of an MTU packet (Xen only; 0 for KVM)
    grant_copy_mtu: int
    grant_copy_page: int
    #: grant copies with the TLB invalidation amortized over a netback
    #: ring batch (the bulk-transfer path batches flushes)
    grant_copy_mtu_batched: int
    grant_copy_page_batched: int
    #: extra cycles of one 4 KB paravirtual block round trip vs native
    block_io_overhead: int = 0

    def us(self, cycles):
        return cycles * 1e6 / self.frequency_hz


def measure_derived_costs(key, seed=2016):
    """Measure all derived costs for one platform key."""
    testbed = build_testbed(key, seed=seed)
    suite = MicrobenchmarkSuite(testbed)
    micro = suite.run_all()
    notify_running, occupancy = _measure_notify_running(build_testbed(key, seed=seed))
    costs = testbed.machine.costs
    if testbed.hypervisor.design == "type1":
        shootdown = testbed.hypervisor.shootdown
        grant_mtu = grant_copy_cycles(costs, shootdown, MTU_BYTES)
        grant_page = grant_copy_cycles(costs, shootdown, PAGE_SIZE)
        amortized = shootdown.invalidate_cycles() * (GRANT_BATCH - 1) // GRANT_BATCH
        grant_mtu_batched = grant_mtu - amortized
        grant_page_batched = grant_page - amortized
    else:
        grant_mtu = grant_page = 0
        grant_mtu_batched = grant_page_batched = 0
    return DerivedOpCosts(
        key=key,
        frequency_hz=testbed.machine.platform.frequency_hz,
        hypercall=micro["Hypercall"],
        intc_trap=micro["Interrupt Controller Trap"],
        virtual_ipi=micro["Virtual IPI"],
        virq_complete=micro["Virtual IRQ Completion"],
        vm_switch=micro["VM Switch"],
        io_kick=micro["I/O Latency Out"],
        io_notify_blocked=micro["I/O Latency In"],
        io_notify_running=notify_running,
        delivery_occupancy=occupancy,
        grant_copy_mtu=grant_mtu,
        grant_copy_page=grant_page,
        grant_copy_mtu_batched=grant_mtu_batched,
        grant_copy_page_batched=grant_page_batched,
        block_io_overhead=_measure_block_io(build_testbed(key, seed=seed)),
    )


def _measure_block_io(testbed):
    """One 4 KB read through the paravirtual block path, vs native."""
    hv = testbed.hypervisor
    vm = testbed.vm
    hv.install_guest(vm.vcpu(0))
    if hv.design == "type1":
        hv.park_vcpu(hv.dom0.vcpu(0))  # Dom0 idles between requests
    engine = testbed.engine
    start = engine.now
    done = testbed.block_path.submit(vm.vcpu(0), PAGE_SIZE)
    finished = engine.run_until_fired(done)
    engine.run()
    virtualized = finished - start
    native = native_block_cycles(testbed.block_device, PAGE_SIZE, testbed.kernel)
    return max(0, virtualized - native)


def _measure_notify_running(testbed):
    """Notify a VM that is busy executing (the loaded-server case)."""
    hv = testbed.hypervisor
    machine = testbed.machine
    vm = testbed.vm
    if hv.design == "type1":
        hv.install_guest(hv.dom0.vcpu(0))
    hv.install_guest(vm.vcpu(0))
    machine.tracer.enabled = True
    machine.tracer.begin("notify-running")
    start = machine.engine.now
    done = hv.notify_guest(vm)
    fired_at = machine.engine.run_until_fired(done)
    machine.run()
    trace = machine.tracer.end()
    machine.tracer.enabled = False
    total = fired_at - start
    # Everything charged to the target VCPU's PCPU is serialized behind
    # its virtual interrupt handling (delivery + completion included).
    occupancy = trace.cycles_on_pcpu(vm.vcpu(0).pcpu.index)
    return total, occupancy


def measure_all(keys, seed=2016):
    return {key: measure_derived_costs(key, seed=seed) for key in keys}
