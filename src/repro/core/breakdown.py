"""Table III: the KVM ARM hypercall cost breakdown, from execution traces.

The paper instruments KVM ARM's world switch to attribute the Hypercall
microbenchmark's cycles to register-class save/restore work.  Here the
breakdown is reconstructed from the *step trace* of the simulated path —
if the hypervisor model stopped saving the VGIC, the table would change,
which is the point.
"""

import dataclasses

from repro.core.microbench import MicrobenchmarkSuite
from repro.core.testbed import build_testbed
from repro.hw.cpu.registers import RegClass


@dataclasses.dataclass
class BreakdownRow:
    register_state: str
    save_cycles: int
    restore_cycles: int


@dataclasses.dataclass
class HypercallBreakdown:
    rows: list
    other_cycles: int
    total_cycles: int

    def row(self, register_state):
        for entry in self.rows:
            if entry.register_state == register_state:
                return entry
        raise KeyError(register_state)

    @property
    def save_total(self):
        return sum(entry.save_cycles for entry in self.rows)

    @property
    def restore_total(self):
        return sum(entry.restore_cycles for entry in self.rows)


def hypercall_breakdown(testbed=None):
    """Run the Hypercall microbenchmark traced; return the Table III rows.

    ``testbed`` defaults to a fresh KVM ARM testbed (the configuration the
    paper analyzes); pass another to compare (e.g. 'kvm-vhe-arm' to see
    the state switching disappear).
    """
    if testbed is None:
        testbed = build_testbed("kvm-arm")
    machine = testbed.machine
    suite = MicrobenchmarkSuite(testbed, iterations=1)
    machine.tracer.enabled = True
    machine.tracer.begin("hypercall")
    result = suite.hypercall()
    trace = machine.tracer.end()
    machine.tracer.enabled = False

    per_label = trace.by_label()
    rows = []
    attributed = 0
    for reg_class in RegClass:
        suffix = reg_class.name.lower()
        save = per_label.get("save_%s" % suffix, 0)
        restore = per_label.get("restore_%s" % suffix, 0)
        attributed += save + restore
        rows.append(BreakdownRow(reg_class.value, save, restore))
    return HypercallBreakdown(
        rows=rows,
        other_cycles=result.cycles - attributed,
        total_cycles=result.cycles,
    )
