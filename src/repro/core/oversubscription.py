"""Oversubscription analysis: what VM switches cost at consolidation.

Table I motivates the VM Switch microbenchmark as "a central cost when
oversubscribing physical CPUs".  This experiment quantifies it: two VMs
share the same physical cores under a timeslice scheduler, and the
fraction of CPU lost to switching is simulated for a sweep of timeslice
lengths, per platform — turning the Table II VM Switch cycle counts into
the consolidation-density story an operator would actually use.
"""

import dataclasses

from repro.core.testbed import build_testbed
from repro.errors import ConfigurationError
from repro.sim import Timeout


@dataclasses.dataclass
class OversubscriptionPoint:
    key: str
    timeslice_us: float
    switches: int
    switch_cycles: int
    total_cycles: int

    @property
    def efficiency(self):
        """Fraction of CPU that still does guest work."""
        return 1.0 - self.switch_cycles / self.total_cycles


class OversubscriptionExperiment:
    """Ping-pong two VMs on one core for a simulated interval."""

    def __init__(self, key, timeslice_us, interval_ms=5.0):
        if timeslice_us <= 0:
            raise ConfigurationError("timeslice must be positive")
        self.testbed = build_testbed(key)
        self.timeslice_us = timeslice_us
        self.interval_ms = interval_ms

    def run(self):
        testbed = self.testbed
        hv = testbed.hypervisor
        engine = testbed.engine
        clock = testbed.clock
        a = testbed.vm.vcpu(0)
        b = testbed.vm2.vcpu(0)
        hv.install_guest(a)
        hv.park_vcpu(b)
        timeslice = clock.cycles_from_us(self.timeslice_us)
        horizon = engine.now + clock.cycles_from_us(self.interval_ms * 1000.0)
        stats = {"switches": 0, "switch_cycles": 0}
        pair = [a, b]

        def scheduler():
            index = 0
            while engine.now < horizon:
                yield Timeout(timeslice)  # the guest runs its slice
                if engine.now >= horizon:
                    break
                before = engine.now
                yield from hv.switch_vm(pair[index % 2], pair[(index + 1) % 2])
                stats["switches"] += 1
                stats["switch_cycles"] += engine.now - before
                index += 1

        start = engine.now
        engine.spawn(scheduler(), "timeslice-scheduler")
        engine.run()
        return OversubscriptionPoint(
            key=testbed.key,
            timeslice_us=self.timeslice_us,
            switches=stats["switches"],
            switch_cycles=stats["switch_cycles"],
            total_cycles=engine.now - start,
        )


def sweep(keys, timeslices_us=(100.0, 500.0, 1000.0, 4000.0)):
    """{key: [OversubscriptionPoint, ...]} across timeslice lengths."""
    return {
        key: [OversubscriptionExperiment(key, ts).run() for ts in timeslices_us]
        for key in keys
    }
