"""Rendering: the paper's tables and figures as text, plus architecture
descriptions (Figures 1-3 and 5 as ASCII art)."""

from repro.paperdata import PLATFORM_ORDER, TABLE2, TABLE3, TABLE5, FIGURE4


def _rule(widths):
    return "+".join("-" * width for width in widths)


def render_table(headers, rows, title=""):
    """Plain-text table with right-aligned numeric columns."""
    widths = [len(str(header)) for header in headers]
    formatted = []
    for row in rows:
        cells = [str(cell) for cell in row]
        widths = [max(width, len(cell)) for width, cell in zip(widths, cells)]
        formatted.append(cells)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for cells in formatted:
        lines.append(
            " | ".join(
                cell.rjust(w) if _numeric(cell) else cell.ljust(w)
                for cell, w in zip(cells, widths)
            )
        )
    return "\n".join(lines)


def _numeric(cell):
    return cell.replace(".", "").replace(",", "").replace("-", "").replace("%", "").replace("+", "").isdigit()


def render_table2(measured):
    """measured: {key: {benchmark: cycles}} -> side-by-side with paper."""
    headers = ["Microbenchmark"]
    for key in PLATFORM_ORDER:
        headers += ["%s sim" % key, "paper", "err%"]
    rows = []
    for name in TABLE2:
        row = [name]
        for key in PLATFORM_ORDER:
            sim = measured[key][name]
            paper = TABLE2[name][key]
            row += ["%d" % sim, "%d" % paper, "%+.1f" % ((sim - paper) / paper * 100)]
        rows.append(row)
    return render_table(headers, rows, title="Table II: Microbenchmark Measurements (cycle counts)")


def render_table3(breakdown):
    headers = ["Register State", "Save", "(paper)", "Restore", "(paper)"]
    rows = []
    for entry in breakdown.rows:
        paper = TABLE3[entry.register_state]
        rows.append(
            [
                entry.register_state,
                "%d" % entry.save_cycles,
                "%d" % paper["save"],
                "%d" % entry.restore_cycles,
                "%d" % paper["restore"],
            ]
        )
    rows.append(["(other: traps/dispatch)", "%d" % breakdown.other_cycles, "-", "", ""])
    return render_table(headers, rows, title="Table III: KVM ARM Hypercall Analysis (cycle counts)")


def render_table5(results):
    headers = ["", "Native", "KVM", "Xen", "paper N/K/X"]
    native_time = results["native"].time_per_trans_us
    order = [
        ("Trans/s", "%.0f"),
        ("Time/trans", "%.1f"),
        ("Overhead", "%.1f"),
        ("send to recv", "%.1f"),
        ("recv to send", "%.1f"),
        ("recv to VM recv", "%.1f"),
        ("VM recv to VM send", "%.1f"),
        ("VM send to send", "%.1f"),
    ]
    rows = []
    for name, fmt in order:
        row = [name]
        for config in ("native", "kvm", "xen"):
            if name == "Overhead":
                value = (
                    None
                    if config == "native"
                    else results[config].time_per_trans_us - native_time
                )
            else:
                value = results[config].as_dict()[name]
            row.append(fmt % value if value else "-")
        paper = TABLE5[name]
        row.append(
            "/".join(
                str(paper[config]) if paper[config] is not None else "-"
                for config in ("native", "kvm", "xen")
            )
        )
        rows.append(row)
    return render_table(headers, rows, title="Table V: Netperf TCP_RR Analysis on ARM (us)")


def render_figure4(grid, keys=None):
    keys = keys or PLATFORM_ORDER
    headers = ["Workload"] + ["%s (paper)" % key for key in keys]
    rows = []
    for workload, row in grid.items():
        cells = [workload]
        for key in keys:
            result = row.get(key)
            paper_point = FIGURE4.get(workload, {}).get(key)
            paper = "%.2f" % paper_point.value if paper_point else "n/a"
            cells.append("%.2f (%s)" % (result.normalized, paper) if result else "-")
        rows.append(cells)
    return render_table(
        headers, rows, title="Figure 4: Application Benchmark Performance (normalized, 1.0 = native)"
    )


def render_ablation(results):
    """results: {(key, workload): AblationPoint} -> Section V table."""
    headers = ["Workload", "Platform", "Single-VCPU IRQs", "Distributed", "Drop (pts)"]
    rows = [
        [
            point.workload,
            point.key,
            "%.1f%%" % point.single_overhead_pct,
            "%.1f%%" % point.distributed_overhead_pct,
            "%.1f" % point.improvement_pct,
        ]
        for point in results.values()
    ]
    return render_table(
        headers, rows, title="Section V ablation: virtual interrupt distribution"
    )


def render_vhe(comparison):
    """comparison: VheComparison -> the two Section VI tables."""
    headers = ["Microbenchmark", "split-mode", "VHE", "speedup"]
    rows = [
        [name, "%d" % split, "%d" % vhe, "%.1fx" % speedup]
        for name, (split, vhe, speedup) in comparison.microbench.items()
    ]
    micro = render_table(
        headers, rows, title="Section VI: KVM ARM with VHE (microbenchmarks, cycles)"
    )
    headers = ["Workload", "split-mode", "VHE", "improvement (pts)"]
    rows = [
        [name, "%.2f" % split, "%.2f" % vhe, "%.1f" % pts]
        for name, (split, vhe, pts) in comparison.applications.items()
    ]
    apps = render_table(
        headers, rows, title="Section VI: application overhead, split-mode vs VHE"
    )
    return micro + "\n\n" + apps


#: Figures 1-3 and 5 rendered as architecture descriptions.
ARCHITECTURE_FIGURES = {
    "figure1": """\
Figure 1: Hypervisor Design
    Native            Type 1                Type 2
  +---------+      +----------+        +--------------+
  | App App |      |  VM  VM  |        | VM  VM | App |
  +---------+      +----------+        +--------------+
  | Kernel  |      |Hypervisor|        | Host OS + HV |
  +---------+      +----------+        +--------------+
  |   HW    |      |    HW    |        |      HW      |
  +---------+      +----------+        +--------------+""",
    "figure2": """\
Figure 2: Xen ARM Architecture
  EL0 |  Dom0 userspace        |  VM userspace
  EL1 |  Dom0 kernel (backend) |  VM kernel (frontend)
      |        ^~~~~ Xen PV I/O + grant copies ~~~~^
  EL2 |  Xen hypervisor: scheduler, vGIC, timers""",
    "figure3": """\
Figure 3: KVM ARM Architecture (split mode, pre-VHE)
  EL0 |  Host userspace (QEMU)  |  VM userspace
  EL1 |  Host kernel + KVM      |  VM kernel (virtio drivers)
      |      ^~~~ Virtio I/O (vhost, zero copy) ~~~^
  EL2 |  KVM lowvisor: world switch trampoline only""",
    "figure5": """\
Figure 5: Virtualization Host Extensions (VHE)
  Type 1 (E2H clear)            Type 2 (E2H set)
  EL0: apps / VM user           EL0: apps / VM user  --(syscalls & traps
  EL1: VM kernel                EL1: VM kernel          go straight to EL2)
  EL2: Xen hypervisor           EL2: Host kernel + KVM, unmodified""",
}


def describe_architecture(name):
    return ARCHITECTURE_FIGURES[name]
