"""Table V: Netperf TCP_RR latency decomposition on ARM.

Reproduces the paper's methodology: run request/response transactions
against the server (native, KVM, or Xen), timestamp each packet at the
data-link layer and inside the VM using the globally-synchronized counter,
and decompose the per-transaction time into:

    send to recv        server tx -> next request at the server driver
                        (wire + client turnaround + pre-driver delay)
    recv to send        server-side driver rx -> driver tx
    recv to VM recv     driver rx -> packet delivered in the VM
    VM recv to VM send  VM-internal processing
    VM send to send     VM tx kick -> physical driver tx

The client, wire, guest processing, hypervisor paths, and backends all
execute on the discrete-event engine; the stamps fall out of the packet
flow.
"""

import dataclasses

from repro.hw.dev.nic import Packet

RR_PACKET_SIZE = 64  # 1-byte payload + headers


@dataclasses.dataclass
class Transaction:
    request: Packet
    response: Packet


@dataclasses.dataclass
class TcpRrResult:
    """Table V column, times in microseconds."""

    config: str
    trans_per_sec: float
    time_per_trans_us: float
    send_to_recv_us: float
    recv_to_send_us: float
    recv_to_vm_recv_us: float
    vm_recv_to_vm_send_us: float
    vm_send_to_send_us: float

    def overhead_us(self, native):
        return self.time_per_trans_us - native.time_per_trans_us

    def as_dict(self):
        return {
            "Trans/s": self.trans_per_sec,
            "Time/trans": self.time_per_trans_us,
            "send to recv": self.send_to_recv_us,
            "recv to send": self.recv_to_send_us,
            "recv to VM recv": self.recv_to_vm_recv_us,
            "VM recv to VM send": self.vm_recv_to_vm_send_us,
            "VM send to send": self.vm_send_to_send_us,
        }


class TcpRrBenchmark:
    """Drives netperf TCP_RR transactions through one testbed."""

    def __init__(self, testbed, transactions=40):
        self.testbed = testbed
        self.transactions = transactions
        self.machine = testbed.machine
        self.engine = testbed.engine
        self._done = []
        self._pending_response = {}
        self._finished = None

    @property
    def virtualized(self):
        return self.testbed.hypervisor is not None

    # --- driving the transaction loop ----------------------------------------

    def run(self):
        hv = self.testbed.hypervisor
        if self.virtualized:
            self.testbed.vm.irq_affinity = [0]
            if hv.design == "type1":
                hv.install_guest(hv.dom0.vcpu(0))
                hv.park_vcpu(hv.dom0.vcpu(0))
            hv.park_vcpu(self.testbed.vm.vcpu(0))
            self.testbed.server_nic.on_receive = hv._on_physical_receive
            self._hook_vm_delivery()
        else:
            self.testbed.server_nic.on_receive = self._native_receive
        self.testbed.client_nic.on_receive = self._client_receive
        self._finished = self.engine.event("rr-finished")
        self._send_request()
        self.engine.run_until_fired(self._finished, deadline=int(1e12))
        self.engine.run()
        return self._collect()

    def _send_request(self):
        request = Packet(RR_PACKET_SIZE, kind="rr-request")
        request.stamp("client.send", self.engine.now)
        self.testbed.client_nic.transmit(request)

    def _client_receive(self, response):
        request = self._pending_response.pop(response.id)
        self._done.append(Transaction(request, response))
        if self.virtualized:
            # The server side quiesces between transactions: the VM blocks
            # in the idle loop and (for Xen) Dom0 goes back to the idle
            # domain — the paper's steady-state RR behavior.
            hv = self.testbed.hypervisor
            hv.park_vcpu(self.testbed.vm.vcpu(0))
            if hv.design == "type1":
                hv.park_vcpu(hv.dom0.vcpu(0))
        if len(self._done) >= self.transactions:
            self._finished.fire()
        else:
            self.engine.schedule(
                self.testbed.netstack.client_turnaround_cycles(), self._send_request
            )

    # --- native server path ------------------------------------------------------

    def _native_receive(self, request):
        self.engine.spawn(self._native_server(request), "native-server")

    def _native_server(self, request):
        netstack = self.testbed.netstack
        pcpu = self.machine.pcpu(4)  # the server runs on the benchmark cores
        request.stamp("host.rx_driver", self.engine.now)
        yield pcpu.op("rx_stack", netstack.host_rx_cycles(), "net")
        yield pcpu.op("app", netstack.app_turnaround_cycles(), "app")
        yield pcpu.op("tx_stack", netstack.host_tx_cycles(), "net")
        response = Packet(RR_PACKET_SIZE, kind="rr-response")
        response.stamp("host.tx", self.engine.now)
        self._pending_response[response.id] = request
        self.testbed.server_nic.transmit(response)

    # --- virtualized guest path ----------------------------------------------------

    def _hook_vm_delivery(self):
        """Arrange for guest-side processing when the VM receives a packet."""
        hv = self.testbed.hypervisor
        original_notify = hv.notify_guest

        def notify_and_process(vm, virq=None, packet=None, **kwargs):
            if virq is None:
                done = original_notify(vm, packet=packet, **kwargs)
            else:
                done = original_notify(vm, virq, packet=packet, **kwargs)
            if packet is not None and packet.kind == "rr-request":
                done.on_fire(lambda _value: self._vm_got_packet(packet))
            return done

        hv.notify_guest = notify_and_process

    def _vm_got_packet(self, request):
        request.stamp("vm.recv", self.engine.now)
        self.engine.spawn(self._guest_server(request), "guest-server")

    def _guest_server(self, request):
        testbed = self.testbed
        netstack, frontend = testbed.netstack, testbed.frontend
        vcpu = testbed.vm.vcpu(0)
        pcpu = vcpu.pcpu
        yield pcpu.op("guest_driver_rx", frontend.rx_cycles(), "guest")
        yield pcpu.op("guest_rx_stack", netstack.guest_rx_cycles(), "guest")
        yield pcpu.op("app", netstack.app_turnaround_cycles(), "app")
        yield pcpu.op("guest_tx_stack", netstack.guest_tx_cycles(), "guest")
        yield pcpu.op("guest_driver_tx", frontend.tx_cycles(), "guest")
        response = Packet(RR_PACKET_SIZE, kind="rr-response")
        response.stamp("vm.send", self.engine.now)
        self._pending_response[response.id] = request
        testbed.hypervisor.kick_backend(vcpu, packet=response)

    # --- decomposition ---------------------------------------------------------------

    def _collect(self):
        clock = self.machine.clock
        # Skip the first transaction (cold start) like the real benchmark's
        # warmup; average the rest.
        steady = self._done[1:]
        us = clock.us_from_cycles

        def mean(values):
            values = list(values)
            return sum(values) / len(values) if values else 0.0

        time_per_trans = mean(
            us(b.request.stamps["client.send"] - a.request.stamps["client.send"])
            for a, b in zip(self._done, self._done[1:])
        )
        send_to_recv = mean(
            us(b.request.stamps["host.rx_driver"] - a.response.stamps["host.tx"])
            for a, b in zip(self._done, self._done[1:])
        )
        recv_to_send = mean(
            us(t.response.stamps["host.tx"] - t.request.stamps["host.rx_driver"])
            for t in steady
        )
        if self.virtualized:
            recv_to_vm_recv = mean(
                us(t.request.stamps["vm.recv"] - t.request.stamps["host.rx_driver"])
                for t in steady
            )
            vm_recv_to_vm_send = mean(
                us(t.response.stamps["vm.send"] - t.request.stamps["vm.recv"])
                for t in steady
            )
            vm_send_to_send = mean(
                us(t.response.stamps["host.tx"] - t.response.stamps["vm.send"])
                for t in steady
            )
        else:
            recv_to_vm_recv = vm_recv_to_vm_send = vm_send_to_send = 0.0
        return TcpRrResult(
            config=self.testbed.key,
            trans_per_sec=1e6 / time_per_trans if time_per_trans else 0.0,
            time_per_trans_us=time_per_trans,
            send_to_recv_us=send_to_recv,
            recv_to_send_us=recv_to_send,
            recv_to_vm_recv_us=recv_to_vm_recv,
            vm_recv_to_vm_send_us=vm_recv_to_vm_send,
            vm_send_to_send_us=vm_send_to_send,
        )


def run_table5(transactions=40, seed=2016):
    """The full Table V: native, KVM, Xen on the ARM platform."""
    from repro.core.testbed import build_testbed, native_testbed

    results = {}
    results["native"] = TcpRrBenchmark(
        native_testbed("arm", seed=seed), transactions
    ).run()
    results["kvm"] = TcpRrBenchmark(build_testbed("kvm-arm", seed=seed), transactions).run()
    results["xen"] = TcpRrBenchmark(build_testbed("xen-arm", seed=seed), transactions).run()
    return results
