"""Figure 4: application benchmark performance, normalized to native.

For each platform column the runner:

1. measures the per-operation costs by executing the simulated
   hypervisor paths (:mod:`repro.core.derived`),
2. runs the packet-level TCP_RR simulation for the latency bar,
3. feeds both into the workload models' event mixes.

Normalized values use the paper's convention: 1.0 = native, higher =
worse.
"""

import dataclasses

from repro.core.derived import measure_derived_costs
from repro.core.netanalysis import TcpRrBenchmark
from repro.core.testbed import build_testbed, native_testbed, parse_key
from repro.os.kernel import KernelModel
from repro.os.netstack import NetstackModel
from repro.sim import Clock
from repro.workloads import FIGURE4_WORKLOADS


@dataclasses.dataclass
class AppBenchContext:
    """Everything a workload model may consult besides derived op costs."""

    costs: object  # the platform's primitive cost model
    clock: Clock
    netstack: NetstackModel
    kernel: KernelModel
    #: how many VCPUs receive virtual device interrupts (Section V: 1 by
    #: default; 4 for the distributed-IRQ ablation)
    irq_vcpus: int = 1
    wire_bps: float = 10e9
    #: whether the guest's TCP autosizing regression has been tuned away
    tso_autosizing_fixed: bool = False
    _rr_cache: dict = dataclasses.field(default_factory=dict)
    rr_transactions: int = 12

    @property
    def bulk_segment_us(self):
        return self.clock.us_from_cycles(self.netstack.bulk_segment_cycles())

    @property
    def native_ipi_cycles(self):
        return self.kernel.resched_ipi_cycles() + self.kernel.local_wakeup_cycles()

    def rr_times_us(self, key):
        """(native, virtualized) time-per-transaction for this platform."""
        if key not in self._rr_cache:
            _hv_kind, arch, _vhe = parse_key(key)
            native = TcpRrBenchmark(
                native_testbed(arch), transactions=self.rr_transactions
            ).run()
            virt = TcpRrBenchmark(
                build_testbed(key), transactions=self.rr_transactions
            ).run()
            self._rr_cache[key] = (native.time_per_trans_us, virt.time_per_trans_us)
        return self._rr_cache[key]


def make_context(key, irq_vcpus=1, tso_autosizing_fixed=False):
    """Build the model context for one platform key."""
    testbed = build_testbed(key)
    return AppBenchContext(
        costs=testbed.machine.costs,
        clock=testbed.machine.clock,
        netstack=testbed.netstack,
        kernel=testbed.kernel,
        irq_vcpus=irq_vcpus,
        tso_autosizing_fixed=tso_autosizing_fixed,
    )


def run_workload(workload, key, irq_vcpus=1, tso_autosizing_fixed=False, derived=None):
    """Run one workload model on one platform."""
    if derived is None:
        derived = measure_derived_costs(key)
    context = make_context(key, irq_vcpus, tso_autosizing_fixed)
    return workload.run(derived, context)


def run_figure4(keys, irq_vcpus=1, workloads=None):
    """The full Figure 4 grid: {workload name: {key: WorkloadResult}}."""
    if workloads is None:
        workloads = FIGURE4_WORKLOADS
    derived = {key: measure_derived_costs(key) for key in keys}
    contexts = {key: make_context(key, irq_vcpus) for key in keys}
    grid = {}
    for workload in workloads:
        grid[workload.name] = {
            key: workload.run(derived[key], contexts[key]) for key in keys
        }
    return grid
