"""One-call entry points: the whole paper, experiment by experiment.

>>> from repro.core import suite
>>> print(suite.table2_report())          # microbenchmarks, 4 platforms
>>> print(suite.table3_report())          # KVM ARM hypercall breakdown
>>> print(suite.table5_report())          # TCP_RR decomposition
>>> print(suite.figure4_report())         # application benchmarks
>>> print(suite.ablation_report())        # Section V IRQ distribution
>>> print(suite.vhe_report())             # Section VI VHE comparison

Each ``*_report`` renderer has a ``*_data`` twin returning the same
results as JSON-serializable structures (``python -m repro table2
--emit-json out.json`` on the command line).

Every entry point routes through :mod:`repro.runner`: the suite is
sharded into independent cells, deduplicated (Table II and the VHE
comparison share their KVM ARM microbenchmark cell), optionally fanned
out over worker processes and served from the content-addressed result
cache, then merged back deterministically — the output stays
byte-identical to the pre-runner serial path (the differential test
harness holds it to that).  ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``
configure the default plan; ``full_report`` also takes ``jobs`` /
``cache_dir`` directly, and ``python -m repro bench`` exposes the whole
grid with per-cell timing.
"""

import dataclasses

from repro import runner
from repro.core import reporting
from repro.paperdata import PLATFORM_ORDER
from repro.runner import cells, merge


def _run(specs):
    return runner.run_plan(specs)


def run_table2(keys=None):
    keys = keys or PLATFORM_ORDER
    return merge.table2_results(_run(cells.table2_cells(keys)), keys)


def table2_report():
    return reporting.render_table2(run_table2())


def table2_data(keys=None):
    return {key: dict(results) for key, results in run_table2(keys).items()}


def _table3_breakdown():
    return merge.breakdown_result(_run(cells.table3_cells()))


def table3_report():
    return reporting.render_table3(_table3_breakdown())


def table3_data():
    breakdown = _table3_breakdown()
    return {
        "rows": [dataclasses.asdict(row) for row in breakdown.rows],
        "save_total": breakdown.save_total,
        "restore_total": breakdown.restore_total,
        "other_cycles": breakdown.other_cycles,
        "total_cycles": breakdown.total_cycles,
    }


def run_table5(transactions=cells.DEFAULT_RR_TRANSACTIONS):
    return merge.table5_results(_run(cells.table5_cells(transactions)), transactions)


def table5_report(transactions=cells.DEFAULT_RR_TRANSACTIONS):
    return reporting.render_table5(run_table5(transactions))


def table5_data(transactions=cells.DEFAULT_RR_TRANSACTIONS):
    return {
        config: result.as_dict() for config, result in run_table5(transactions).items()
    }


def _figure4_grid(keys):
    return merge.figure4_grid(_run(cells.figure4_cells(keys)), keys)


def figure4_report(keys=None):
    keys = keys or PLATFORM_ORDER
    return reporting.render_figure4(_figure4_grid(keys), keys)


def figure4_data(keys=None):
    keys = keys or PLATFORM_ORDER
    return {
        workload: {key: dataclasses.asdict(result) for key, result in row.items()}
        for workload, row in _figure4_grid(keys).items()
    }


def _ablation_grid():
    return merge.ablation_grid(_run(cells.ablation_cells()))


def ablation_report():
    return reporting.render_ablation(_ablation_grid())


def ablation_data():
    return {
        "%s/%s" % (key, workload): dict(
            dataclasses.asdict(point), improvement_pct=point.improvement_pct
        )
        for (key, workload), point in _ablation_grid().items()
    }


def _vhe_comparison():
    return merge.vhe_comparison(_run(cells.vhe_cells()))


def vhe_report():
    return reporting.render_vhe(_vhe_comparison())


def vhe_data():
    comparison = _vhe_comparison()
    return {
        "microbench": {
            name: {"split_cycles": split, "vhe_cycles": vhe, "speedup": speedup}
            for name, (split, vhe, speedup) in comparison.microbench.items()
        },
        "applications": {
            name: {"split_normalized": split, "vhe_normalized": vhe, "improvement_pts": pts}
            for name, (split, vhe, pts) in comparison.applications.items()
        },
    }


def oversubscription_data(keys=None, timeslices_us=cells.OVERSUB_TIMESLICES_US):
    """The consolidation sweep: {key: [per-timeslice point dicts]}."""
    keys = keys or PLATFORM_ORDER
    results = _run(cells.oversubscription_cells(keys, timeslices_us))
    return merge.oversubscription_grid(results, keys, timeslices_us)


def full_report(jobs=None, cache_dir=None):
    """Everything, in paper order — one deduplicated cell-grid run."""
    results = runner.run_plan(
        cells.full_report_cells(), jobs=jobs, cache_dir=cache_dir
    )
    return merge.full_report_text(results)
