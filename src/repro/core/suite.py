"""One-call entry points: the whole paper, experiment by experiment.

>>> from repro.core import suite
>>> print(suite.table2_report())          # microbenchmarks, 4 platforms
>>> print(suite.table3_report())          # KVM ARM hypercall breakdown
>>> print(suite.table5_report())          # TCP_RR decomposition
>>> print(suite.figure4_report())         # application benchmarks
>>> print(suite.ablation_report())        # Section V IRQ distribution
>>> print(suite.vhe_report())             # Section VI VHE comparison

Each ``*_report`` renderer has a ``*_data`` twin returning the same
results as JSON-serializable structures (``python -m repro table2
--emit-json out.json`` on the command line).
"""

import dataclasses

from repro.core import reporting
from repro.core.breakdown import hypercall_breakdown
from repro.core.irqbalance import run_irq_distribution_ablation
from repro.core.microbench import MicrobenchmarkSuite
from repro.core.netanalysis import run_table5
from repro.core.appbench import run_figure4
from repro.core.testbed import build_testbed
from repro.core.vhe_projection import run_vhe_comparison
from repro.paperdata import PLATFORM_ORDER


def run_table2(keys=None):
    keys = keys or PLATFORM_ORDER
    return {key: MicrobenchmarkSuite(build_testbed(key)).run_all() for key in keys}


def table2_report():
    return reporting.render_table2(run_table2())


def table2_data(keys=None):
    return {key: dict(results) for key, results in run_table2(keys).items()}


def table3_report():
    return reporting.render_table3(hypercall_breakdown())


def table3_data():
    breakdown = hypercall_breakdown()
    return {
        "rows": [dataclasses.asdict(row) for row in breakdown.rows],
        "save_total": breakdown.save_total,
        "restore_total": breakdown.restore_total,
        "other_cycles": breakdown.other_cycles,
        "total_cycles": breakdown.total_cycles,
    }


def table5_report(transactions=40):
    return reporting.render_table5(run_table5(transactions))


def table5_data(transactions=40):
    return {
        config: result.as_dict()
        for config, result in run_table5(transactions).items()
    }


def figure4_report(keys=None):
    keys = keys or PLATFORM_ORDER
    return reporting.render_figure4(run_figure4(keys), keys)


def figure4_data(keys=None):
    keys = keys or PLATFORM_ORDER
    return {
        workload: {key: dataclasses.asdict(result) for key, result in row.items()}
        for workload, row in run_figure4(keys).items()
    }


def ablation_report():
    results = run_irq_distribution_ablation()
    headers = ["Workload", "Platform", "Single-VCPU IRQs", "Distributed", "Drop (pts)"]
    rows = [
        [
            point.workload,
            point.key,
            "%.1f%%" % point.single_overhead_pct,
            "%.1f%%" % point.distributed_overhead_pct,
            "%.1f" % point.improvement_pct,
        ]
        for point in results.values()
    ]
    return reporting.render_table(
        headers, rows, title="Section V ablation: virtual interrupt distribution"
    )


def ablation_data():
    return {
        "%s/%s" % (key, workload): dict(
            dataclasses.asdict(point), improvement_pct=point.improvement_pct
        )
        for (key, workload), point in run_irq_distribution_ablation().items()
    }


def vhe_report():
    comparison = run_vhe_comparison()
    headers = ["Microbenchmark", "split-mode", "VHE", "speedup"]
    rows = [
        [name, "%d" % split, "%d" % vhe, "%.1fx" % speedup]
        for name, (split, vhe, speedup) in comparison.microbench.items()
    ]
    micro = reporting.render_table(
        headers, rows, title="Section VI: KVM ARM with VHE (microbenchmarks, cycles)"
    )
    headers = ["Workload", "split-mode", "VHE", "improvement (pts)"]
    rows = [
        [name, "%.2f" % split, "%.2f" % vhe, "%.1f" % pts]
        for name, (split, vhe, pts) in comparison.applications.items()
    ]
    apps = reporting.render_table(
        headers, rows, title="Section VI: application overhead, split-mode vs VHE"
    )
    return micro + "\n\n" + apps


def vhe_data():
    comparison = run_vhe_comparison()
    return {
        "microbench": {
            name: {"split_cycles": split, "vhe_cycles": vhe, "speedup": speedup}
            for name, (split, vhe, speedup) in comparison.microbench.items()
        },
        "applications": {
            name: {"split_normalized": split, "vhe_normalized": vhe, "improvement_pts": pts}
            for name, (split, vhe, pts) in comparison.applications.items()
        },
    }


def full_report():
    """Everything, in paper order."""
    sections = [
        table2_report(),
        table3_report(),
        table5_report(),
        figure4_report(),
        ablation_report(),
        vhe_report(),
    ]
    return "\n\n".join(sections)
