"""The seven microbenchmarks of paper Table I, run on simulated testbeds.

Methodology mirrors the paper's custom kernel driver: each operation is
measured from inside the VM with synchronized cycle counters, VCPUs
pinned, and all other virtual interrupts kept off the measured VCPUs.
Because the simulator is deterministic, repeated iterations must agree
exactly — the suite verifies this instead of averaging away noise.
"""

import dataclasses

from repro.errors import SimulationError
from repro.hv.base import VIRQ_VIRTIO_NET

#: Table I, reproduced as data: name -> description.
MICROBENCHMARKS = {
    "Hypercall": (
        "Transition from VM to hypervisor and return to VM without doing "
        "any work in the hypervisor. Measures bidirectional base "
        "transition cost of hypervisor operations."
    ),
    "Interrupt Controller Trap": (
        "Trap from VM to emulated interrupt controller then return to VM. "
        "Measures a frequent operation for many device drivers and "
        "baseline for accessing I/O devices emulated in the hypervisor."
    ),
    "Virtual IPI": (
        "Issue a virtual IPI from a VCPU to another VCPU running on a "
        "different PCPU, both PCPUs executing VM code. Measures time "
        "between sending the virtual IPI until the receiving VCPU handles "
        "it, a frequent operation in multi-core OSes."
    ),
    "Virtual IRQ Completion": (
        "VM acknowledging and completing a virtual interrupt. Measures a "
        "frequent operation that happens for every injected virtual "
        "interrupt."
    ),
    "VM Switch": (
        "Switch from one VM to another on the same physical core. "
        "Measures a central cost when oversubscribing physical CPUs."
    ),
    "I/O Latency Out": (
        "Measures latency between a driver in the VM signaling the "
        "virtual I/O device in the hypervisor and the virtual I/O device "
        "receiving the signal."
    ),
    "I/O Latency In": (
        "Measures latency between the virtual I/O device in the "
        "hypervisor signaling the VM and the VM receiving the "
        "corresponding virtual interrupt."
    ),
}

#: Row order of paper Table II.
TABLE2_ROWS = list(MICROBENCHMARKS)


@dataclasses.dataclass
class MicrobenchResult:
    name: str
    cycles: int
    iterations: int


class MicrobenchmarkSuite:
    """Runs the Table I microbenchmarks on one testbed."""

    def __init__(self, testbed, iterations=3):
        self.testbed = testbed
        self.hv = testbed.hypervisor
        self.machine = testbed.machine
        self.engine = testbed.engine
        self.iterations = iterations

    # --- harness machinery ------------------------------------------------

    def _measure_process(self, make_generator):
        """Time a round-trip operation (generator completion)."""
        samples = []
        for _ in range(self.iterations):
            start = self.engine.now
            self.engine.spawn(make_generator(), name="microbench")
            self.engine.run()
            samples.append(self.engine.now - start)
        return self._collapse(samples)

    def _measure_event(self, fire_op, cleanup=None):
        """Time an operation whose endpoint is a SimEvent firing."""
        samples = []
        for _ in range(self.iterations):
            start = self.engine.now
            event = fire_op()
            value = self.engine.run_until_fired(event)
            samples.append(value - start)
            self.engine.run()  # drain trailing work (re-entries etc.)
            if cleanup is not None:
                cleanup()
        return self._collapse(samples)

    def _collapse(self, samples):
        if len(set(samples)) != 1:
            raise SimulationError(
                "non-deterministic microbenchmark samples: %r" % (samples,)
            )
        return samples[0]

    def _install_vm(self, vm):
        for vcpu in vm.vcpus:
            self.hv.install_guest(vcpu)

    def _drain_and_complete(self, vcpu):
        """Complete any virq left active by a measurement iteration."""
        if self.machine.is_arm:
            vif = vcpu.vif
            active = [lr.virq for lr in vif.list_registers if lr.state == "active"]
            for virq in active:
                self.engine.spawn(self.hv.complete_virq(vcpu, virq), "cleanup")
                self.engine.run()
        else:
            lapic = self.machine.apic.lapic(vcpu.pcpu.index)
            for virq in sorted(lapic.isr):
                self.engine.spawn(self.hv.complete_virq(vcpu, virq), "cleanup")
                self.engine.run()

    # --- the seven benchmarks ------------------------------------------------

    def hypercall(self):
        vcpu = self.testbed.vm.vcpu(0)
        self.hv.install_guest(vcpu)
        cycles = self._measure_process(lambda: self.hv.run_hypercall(vcpu))
        return MicrobenchResult("Hypercall", cycles, self.iterations)

    def interrupt_controller_trap(self):
        vcpu = self.testbed.vm.vcpu(0)
        self.hv.install_guest(vcpu)
        cycles = self._measure_process(lambda: self.hv.run_intc_trap(vcpu))
        return MicrobenchResult("Interrupt Controller Trap", cycles, self.iterations)

    def virtual_ipi(self):
        src = self.testbed.vm.vcpu(0)
        dst = self.testbed.vm.vcpu(1)
        self.hv.install_guest(src)
        self.hv.install_guest(dst)
        cycles = self._measure_event(
            lambda: self.hv.send_virtual_ipi(src, dst),
            cleanup=lambda: self._drain_and_complete(dst),
        )
        return MicrobenchResult("Virtual IPI", cycles, self.iterations)

    def virtual_irq_completion(self):
        vcpu = self.testbed.vm.vcpu(0)
        self.hv.install_guest(vcpu)
        samples = []
        for _ in range(self.iterations):
            virq = self._prepare_active_virq(vcpu)
            start = self.engine.now
            self.engine.spawn(self.hv.complete_virq(vcpu, virq), "complete")
            self.engine.run()
            samples.append(self.engine.now - start)
        return MicrobenchResult(
            "Virtual IRQ Completion", self._collapse(samples), self.iterations
        )

    def _prepare_active_virq(self, vcpu):
        """Setup (unmeasured): inject + acknowledge one virtual interrupt."""
        virq = VIRQ_VIRTIO_NET
        if self.machine.is_arm:
            vcpu.vif.inject(virq)
            vcpu.vif.guest_acknowledge()
        else:
            lapic = self.machine.apic.lapic(vcpu.pcpu.index)
            lapic.request(virq)
            lapic.deliver_highest()
        return virq

    def vm_switch(self):
        a = self.testbed.vm.vcpu(0)
        b = self.testbed.vm2.vcpu(0)
        self.hv.install_guest(a)
        self.hv.park_vcpu(b)
        # Alternate the switch direction, as the real benchmark ping-pongs.
        pair = [a, b]
        samples = []
        for i in range(self.iterations * 2):
            out, into = pair[i % 2], pair[(i + 1) % 2]
            start = self.engine.now
            self.engine.spawn(self.hv.switch_vm(out, into), "switch")
            self.engine.run()
            samples.append(self.engine.now - start)
        return MicrobenchResult("VM Switch", self._collapse(samples), self.iterations)

    def io_latency_out(self):
        vcpu = self.testbed.vm.vcpu(0)
        self.hv.install_guest(vcpu)

        def setup_and_fire():
            if self.hv.design == "type1":
                # Dom0 idles between I/O requests (the paper's scenario:
                # Xen parks it in the idle domain, making the DomU pay a
                # VM switch to signal it).
                self.hv.park_vcpu(self.hv.dom0.vcpu(0))
            return self.hv.kick_backend(vcpu)

        cycles = self._measure_event(setup_and_fire)
        return MicrobenchResult("I/O Latency Out", cycles, self.iterations)

    def io_latency_in(self):
        vm = self.testbed.vm
        if self.hv.design == "type1":
            self.hv.install_guest(self.hv.dom0.vcpu(0))

        def setup_and_fire():
            self.hv.park_vcpu(vm.vcpu(0))  # the VM idles, waiting for I/O
            return self.hv.notify_guest(vm)

        cycles = self._measure_event(
            setup_and_fire, cleanup=lambda: self._drain_and_complete(vm.vcpu(0))
        )
        return MicrobenchResult("I/O Latency In", cycles, self.iterations)

    # --- whole-suite entry point ----------------------------------------------

    def run_all(self):
        """All seven, in Table II row order; returns {name: cycles}."""
        results = [
            self.hypercall(),
            self.interrupt_controller_trap(),
            self.virtual_ipi(),
            self.virtual_irq_completion(),
            self.vm_switch(),
            self.io_latency_out(),
            self.io_latency_in(),
        ]
        return {result.name: result.cycles for result in results}
