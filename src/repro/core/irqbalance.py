"""Section V ablation: distributing virtual interrupts across VCPUs.

The paper verified the interrupt bottleneck by spreading virtual
interrupts over all VCPUs and watching the overhead collapse (Apache:
KVM 35%->14%, Xen 84%->16%; Memcached: KVM 26%->8%, Xen 32%->9%).
This module reruns the affected workload models with the IRQ affinity
widened from one VCPU to all four.
"""

import dataclasses

from repro.core.appbench import run_workload
from repro.core.derived import measure_derived_costs
from repro.workloads import Apache, Memcached


@dataclasses.dataclass
class AblationPoint:
    workload: str
    key: str
    single_overhead_pct: float
    distributed_overhead_pct: float
    single_bottleneck: str
    distributed_bottleneck: str

    @property
    def improvement_pct(self):
        return self.single_overhead_pct - self.distributed_overhead_pct


def run_irq_distribution_ablation(keys=("kvm-arm", "xen-arm"), workloads=None):
    """Returns {(key, workload): AblationPoint}."""
    if workloads is None:
        workloads = [Apache(), Memcached()]
    results = {}
    for key in keys:
        derived = measure_derived_costs(key)
        for workload in workloads:
            single = run_workload(workload, key, irq_vcpus=1, derived=derived)
            distributed = run_workload(workload, key, irq_vcpus=4, derived=derived)
            results[(key, workload.name)] = AblationPoint(
                workload=workload.name,
                key=key,
                single_overhead_pct=(single.normalized - 1.0) * 100.0,
                distributed_overhead_pct=(distributed.normalized - 1.0) * 100.0,
                single_bottleneck=single.bottleneck,
                distributed_bottleneck=distributed.bottleneck,
            )
    return results
