"""Request-level server simulation: the Section V bottleneck, emergent.

The Figure 4 server model computes the single-VCPU interrupt bottleneck
in closed form.  This module *runs* it: a closed-loop client population
drives requests through per-VCPU work queues (executors) plus a backend
executor, with virtual-interrupt delivery work placed on whichever VCPU
the VM's IRQ affinity selects.  When all interrupts target VCPU0, its
queue saturates and throughput caps — no formula involved.

Costs come from the same measured sources as the closed-form model
(derived operation costs + the netstack model), so agreement between the
two is a meaningful cross-check, exercised by
``benchmarks/test_server_queueing_sim.py``.
"""

import dataclasses

from repro.errors import ConfigurationError
from repro.os.procsim import VcpuExecutor

VM_VCPUS = 4


@dataclasses.dataclass
class ServerSimResult:
    key: str
    requests: int
    total_cycles: int
    requests_per_second: float
    irq_vcpu_utilization: float

    def normalized_to(self, native):
        return native.requests_per_second / self.requests_per_second


class ServerLoadSimulation:
    """Closed-loop request/response load against one testbed."""

    def __init__(
        self,
        testbed,
        derived=None,
        concurrency=16,
        requests=400,
        irq_vcpus=1,
        request_cpu_us=300.0,  # one request's CPU work (Apache-like)
        deliveries_per_request=6,
        guest_per_delivery_us=0.55,
        kicks_per_request=3,
    ):
        if concurrency < 1 or requests < concurrency:
            raise ConfigurationError("need requests >= concurrency >= 1")
        self.testbed = testbed
        self.derived = derived
        self.concurrency = concurrency
        self.requests = requests
        self.irq_vcpus = irq_vcpus
        self.request_cpu_us = request_cpu_us
        self.deliveries = deliveries_per_request
        self.guest_per_delivery_us = guest_per_delivery_us
        self.kicks = kicks_per_request
        self.engine = testbed.engine
        self.clock = testbed.clock

    def _costs(self):
        """Per-request (irq_cycles, app_cycles, backend_cycles).

        A request's application work runs in one worker process on one
        VCPU (Apache's process-per-connection model); requests fan out
        across VCPUs, interrupts go wherever the affinity says.
        """
        clock = self.clock
        app = clock.cycles_from_us(self.request_cpu_us)
        if self.derived is None:  # native
            irq = clock.cycles_from_us(0.3) * self.deliveries  # phys IRQs
            backend = 0
            return irq, app, backend
        derived = self.derived
        per_delivery = derived.delivery_occupancy + clock.cycles_from_us(
            self.guest_per_delivery_us
        )
        irq = per_delivery * self.deliveries
        kick = derived.io_kick * self.kicks  # runs on an app VCPU
        backend = clock.cycles_from_us(12.0)
        if derived.grant_copy_page:
            backend += derived.grant_copy_page_batched * 10  # 41KB response
        return irq, app + kick, backend

    def run(self):
        irq_cycles, app_cycles, backend_cycles = self._costs()
        vcpus = [
            VcpuExecutor(self.engine, "vcpu%d" % index) for index in range(VM_VCPUS)
        ]
        backend = VcpuExecutor(self.engine, "backend")
        finished = self.engine.event("server-sim-finished")
        state = {"completed": 0, "issued": 0, "rr_app": 0, "rr_irq": 0}

        def issue_request():
            if state["issued"] >= self.requests:
                return
            state["issued"] += 1
            # 1. backend ingests the request (host rx / Dom0 / netback)
            ingested = self.engine.event()
            backend.submit(backend_cycles, ingested)
            ingested.on_fire(deliver)

        def deliver(_value):
            # 2. interrupt work on the affinity VCPU set
            irq_vcpu = vcpus[state["rr_irq"] % max(1, self.irq_vcpus)]
            state["rr_irq"] += 1
            delivered = self.engine.event()
            irq_vcpu.submit(irq_cycles, delivered)
            delivered.on_fire(process)

        def process(_value):
            # 3. application work: one worker on one VCPU per request
            app_vcpu = vcpus[state["rr_app"] % VM_VCPUS]
            state["rr_app"] += 1
            processed = self.engine.event()
            app_vcpu.submit(app_cycles, processed)
            processed.on_fire(complete)

        def complete(_value):
            state["completed"] += 1
            if state["completed"] >= self.requests:
                if not finished.fired:
                    finished.fire(self.engine.now)
            else:
                issue_request()  # closed loop: next request from this client

        start = self.engine.now
        for _client in range(self.concurrency):
            issue_request()
        self.engine.run_until_fired(finished, deadline=int(1e15))
        total = self.engine.now - start
        irq_busy = sum(v.busy_cycles for v in vcpus[: max(1, self.irq_vcpus)])
        return ServerSimResult(
            key=self.testbed.key,
            requests=state["completed"],
            total_cycles=total,
            requests_per_second=state["completed"]
            / (total / self.testbed.machine.platform.frequency_hz),
            irq_vcpu_utilization=irq_busy
            / (total * max(1, self.irq_vcpus)),
        )


def run_server_comparison(irq_vcpus=1, requests=400, xen_deliveries=29):
    """Native vs KVM ARM vs Xen ARM under Apache-like load."""
    from repro.core.derived import measure_derived_costs
    from repro.core.testbed import build_testbed, native_testbed

    results = {}
    results["native"] = ServerLoadSimulation(
        native_testbed("arm"), requests=requests, irq_vcpus=irq_vcpus
    ).run()
    for key in ("kvm-arm", "xen-arm"):
        derived = measure_derived_costs(key)
        deliveries = xen_deliveries if key.startswith("xen") else 6
        per_delivery = 1.10 if key.startswith("xen") else 0.55
        results[key] = ServerLoadSimulation(
            build_testbed(key),
            derived=derived,
            requests=requests,
            irq_vcpus=irq_vcpus,
            deliveries_per_request=deliveries,
            guest_per_delivery_us=per_delivery,
        ).run()
    return results
