"""The paper's measurement framework and analyses.

* :mod:`repro.core.testbed` — builds the paper's Section III configurations
* :mod:`repro.core.microbench` — the seven Table I microbenchmarks
* :mod:`repro.core.breakdown` — the Table III save/restore breakdown
* :mod:`repro.core.netanalysis` — the Table V TCP_RR decomposition
* :mod:`repro.core.appbench` — the Figure 4 application benchmarks
* :mod:`repro.core.irqbalance` — the Section V interrupt-distribution ablation
* :mod:`repro.core.vhe_projection` — the Section VI VHE analysis
* :mod:`repro.core.reporting` — table/figure rendering
* :mod:`repro.core.suite` — one-call entry points
"""

from repro.core.testbed import Testbed, build_testbed, PLATFORM_KEYS
from repro.core.microbench import MicrobenchmarkSuite, MICROBENCHMARKS

__all__ = [
    "MICROBENCHMARKS",
    "MicrobenchmarkSuite",
    "PLATFORM_KEYS",
    "Testbed",
    "build_testbed",
]
