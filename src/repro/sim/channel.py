"""Unbounded FIFO message channel between simulation processes."""

from collections import deque

from repro.errors import SimulationError


class Channel:
    """A FIFO of messages with blocking ``get``.

    ``put`` never blocks (the channel is unbounded — backpressure in the
    modeled systems is expressed by the protocols built on top, e.g.
    virtio ring sizes).  ``get`` is a generator to be used as
    ``msg = yield from channel.get()``.
    """

    def __init__(self, engine, name=""):
        self.engine = engine
        self.name = name
        self._items = deque()
        self._getters = deque()

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Append ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            event = self._getters.popleft()
            event.fire(item)
        else:
            self._items.append(item)

    def get(self):
        """Generator: yield until an item is available, return it."""
        if self._items:
            return self._items.popleft()
        event = self.engine.event("%s.get" % self.name)
        self._getters.append(event)
        item = yield event
        return item

    def get_nowait(self):
        """Pop an item immediately; raises if the channel is empty."""
        if not self._items:
            raise SimulationError("channel %r is empty" % (self.name,))
        return self._items.popleft()

    def peek(self):
        if not self._items:
            raise SimulationError("channel %r is empty" % (self.name,))
        return self._items[0]
