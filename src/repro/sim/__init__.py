"""Discrete-event simulation kernel.

Time is measured in integer CPU *cycles* of the simulated machine.  All
components of one simulated machine (CPUs, interrupt controller, devices)
share a single :class:`~repro.sim.engine.Engine`.  Processes are Python
generators that yield *commands* (:class:`Timeout`, :class:`SimEvent`,
:class:`AllOf`, :class:`AnyOf`) back to the engine.

The kernel is deliberately small and deterministic: given identical inputs
it always produces identical event orderings (ties broken by scheduling
sequence number), which the measurement framework relies on.
"""

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, SimEvent, Timeout
from repro.sim.fastpath import FastLane, FastSite, fastpath_enabled
from repro.sim.process import Process
from repro.sim.channel import Channel
from repro.sim.clock import Clock
from repro.sim.rng import DeterministicRng
from repro.sim.trace import Step, StepTrace, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Clock",
    "DeterministicRng",
    "Engine",
    "FastLane",
    "FastSite",
    "Process",
    "SimEvent",
    "Step",
    "StepTrace",
    "Timeout",
    "Tracer",
    "fastpath_enabled",
]
