"""Waitable events and command objects understood by the engine."""

from repro.errors import SimulationError


class Timeout:
    """Command: suspend the yielding process for ``delay`` cycles.

    ``delay`` must be a non-negative integer; zero is allowed and yields
    control back to the engine without advancing time (useful to let other
    same-time events run).
    """

    __slots__ = ("delay",)

    def __init__(self, delay):
        if not isinstance(delay, int):
            raise SimulationError("Timeout delay must be an int, got %r" % (delay,))
        if delay < 0:
            raise SimulationError("Timeout delay must be >= 0, got %d" % delay)
        self.delay = delay

    def __repr__(self):
        return "Timeout(%d)" % self.delay


class SimEvent:
    """A one-shot waitable event carrying an optional value.

    Processes wait on an event by yielding it.  Firing an event wakes all
    waiters at the current simulation time.  Events may fire at most once;
    ``reset()`` re-arms a fired event with no waiters.
    """

    __slots__ = ("engine", "name", "_fired", "_value", "_waiters", "_callbacks")

    def __init__(self, engine, name=""):
        self.engine = engine
        self.name = name
        self._fired = False
        self._value = None
        self._waiters = []
        self._callbacks = []

    @property
    def fired(self):
        return self._fired

    @property
    def value(self):
        if not self._fired:
            raise SimulationError("event %r has not fired" % (self.name,))
        return self._value

    def fire(self, value=None):
        """Fire the event, waking all current waiters this cycle."""
        if self._fired:
            raise SimulationError("event %r fired twice" % (self.name,))
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        callbacks, self._callbacks = self._callbacks, []
        for process in waiters:
            self.engine.wake(process, value)
        for callback in callbacks:
            callback(value)

    def reset(self):
        """Re-arm a fired event so it can fire again.

        Resetting with waiters or ``on_fire`` callbacks still pending is an
        error: a stale combinator callback surviving a reset would run on
        the *next* fire and wake its process with the wrong value/index.
        (Firing clears both lists, so a normal fire -> reset -> fire reuse
        cycle never trips this.)
        """
        if self._waiters:
            raise SimulationError("cannot reset event %r with waiters" % (self.name,))
        if self._callbacks:
            raise SimulationError(
                "cannot reset event %r with on_fire callbacks pending" % (self.name,)
            )
        self._fired = False
        self._value = None

    def add_waiter(self, process):
        if self._fired:
            self.engine.wake(process, self._value)
        else:
            self._waiters.append(process)

    def on_fire(self, callback):
        """Register ``callback(value)`` to run when the event fires."""
        if self._fired:
            callback(self._value)
        else:
            self._callbacks.append(callback)

    def cancel_on_fire(self, callback):
        """Unregister a pending ``on_fire`` callback.

        Combinators use this to prune losing registrations once their
        race is decided, so an event that lost an ``AnyOf`` can still be
        ``reset()`` and does not accumulate stale callbacks across
        repeated waits.  Cancelling a callback that already ran (or was
        cleared by ``fire``) is a no-op.
        """
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def __repr__(self):
        state = "fired" if self._fired else "pending"
        return "SimEvent(%r, %s)" % (self.name, state)


class _Combinator:
    """Base for AllOf / AnyOf: composite waits over several events."""

    __slots__ = ("events",)

    def __init__(self, events):
        self.events = list(events)
        if not self.events:
            raise SimulationError("%s needs at least one event" % type(self).__name__)


class AllOf(_Combinator):
    """Command: wait until every member event has fired.

    The waiting process resumes with the list of event values in the order
    the events were given.
    """


class AnyOf(_Combinator):
    """Command: wait until any member event fires.

    The waiting process resumes with ``(index, value)`` of the first event
    to fire (ties broken by member order).
    """
