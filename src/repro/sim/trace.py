"""Step tracing: the instrumentation behind paper Table III.

Hypervisor transition paths execute as sequences of named, costed steps.
A :class:`Tracer` collects them, so a breakdown like "VGIC Regs: save
3,250 cycles" falls out of the simulated path rather than being asserted.

Traces nest explicitly: ``begin`` pushes onto a stack, ``end`` pops, and
steps are recorded into the innermost open trace.  For wall-position
spans (start/end at engine ``now``, parent/child attribution) see the
structured layer in :mod:`repro.obs`.
"""

from collections import OrderedDict

from repro.errors import SimulationError


class Step:
    """One named, costed step of a hypervisor/hardware path."""

    __slots__ = ("label", "cycles", "category", "pcpu")

    def __init__(self, label, cycles, category="", pcpu=None):
        self.label = label
        self.cycles = cycles
        self.category = category
        self.pcpu = pcpu

    def __repr__(self):
        return "Step(%r, %d, %r, pcpu=%r)" % (self.label, self.cycles, self.category, self.pcpu)


class StepTrace:
    """An ordered record of executed steps with aggregation helpers."""

    def __init__(self, name=""):
        self.name = name
        self.steps = []

    def add(self, step):
        self.steps.append(step)

    @property
    def total_cycles(self):
        return sum(step.cycles for step in self.steps)

    def by_label(self):
        """Ordered {label: total cycles} over all steps."""
        totals = OrderedDict()
        for step in self.steps:
            totals[step.label] = totals.get(step.label, 0) + step.cycles
        return totals

    def by_category(self):
        """Ordered {category: total cycles}; uncategorized steps under ''."""
        totals = OrderedDict()
        for step in self.steps:
            totals[step.category] = totals.get(step.category, 0) + step.cycles
        return totals

    def by_pcpu(self):
        """Ordered {pcpu index: total cycles} — occupancy attribution."""
        totals = OrderedDict()
        for step in self.steps:
            totals[step.pcpu] = totals.get(step.pcpu, 0) + step.cycles
        return totals

    def cycles_on_pcpu(self, index):
        return sum(step.cycles for step in self.steps if step.pcpu == index)

    def labels(self):
        return [step.label for step in self.steps]

    def __len__(self):
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)


class Tracer:
    """Collects step traces; tracing can be toggled without touching paths.

    When disabled (the default for bulk workload simulation), ``record``
    is a no-op so the only per-step cost is the engine Timeout.
    """

    def __init__(self, enabled=False):
        self.enabled = enabled
        self.traces = []
        self._stack = []

    @property
    def depth(self):
        """Number of currently open (begun, not ended) traces."""
        return len(self._stack)

    def begin(self, name):
        """Start a new trace; subsequent records attach to it.

        Nesting is explicit: a ``begin`` while another trace is open
        pushes onto a stack instead of silently discarding the open
        trace; the matching ``end`` resumes recording into the outer one.
        """
        trace = StepTrace(name)
        self.traces.append(trace)
        self._stack.append(trace)
        return trace

    def end(self):
        """Finish the innermost open trace and return it."""
        if not self._stack:
            raise SimulationError("Tracer.end() with no trace begun")
        return self._stack.pop()

    def record(self, label, cycles, category="", pcpu=None):
        if self.enabled and self._stack:
            self._stack[-1].add(Step(label, cycles, category, pcpu))

    @property
    def last(self):
        if not self.traces:
            return None
        return self.traces[-1]
