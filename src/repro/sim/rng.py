"""Deterministic random streams for workload models.

Each consumer gets its own named stream so adding a new random draw in one
model never perturbs another model's sequence (important for comparing
native vs virtualized runs of the same workload).
"""

import random
import zlib


class DeterministicRng:
    """A family of independent, reproducible random streams.

    Stream seeds are derived with CRC32 (stable across interpreter runs,
    unlike built-in ``hash`` which is randomized by PYTHONHASHSEED).
    """

    def __init__(self, seed=2016):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """Return (creating if needed) the named random stream."""
        if name not in self._streams:
            derived = zlib.crc32(("%s/%s" % (self.seed, name)).encode("utf-8"))
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def uniform(self, name, low, high):
        return self.stream(name).uniform(low, high)

    def expovariate(self, name, rate):
        return self.stream(name).expovariate(rate)

    def randint(self, name, low, high):
        return self.stream(name).randint(low, high)
