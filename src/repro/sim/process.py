"""Generator-based simulation processes."""

from repro.errors import SimulationError


class Process:
    """A coroutine process driven by the engine.

    Wraps a generator that yields commands (Timeout, SimEvent, AllOf,
    AnyOf, or another Process to join on).  When the generator returns,
    the process is *done* and joiners are woken with its return value.
    """

    __slots__ = ("engine", "name", "_generator", "_done", "_result", "_joiners")

    def __init__(self, engine, generator, name=""):
        self.engine = engine
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._done = False
        self._result = None
        self._joiners = []

    @property
    def done(self):
        return self._done

    @property
    def result(self):
        if not self._done:
            raise SimulationError("process %r has not finished" % (self.name,))
        return self._result

    def resume(self, value):
        """Advance the generator with ``value``; dispatch the next command."""
        if self._done:
            return
        observer = self.engine.observer
        if observer is not None:
            observer.process_resumed(self)
        try:
            command = self._generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self.engine.dispatch(self, command)

    def add_join_waiter(self, process):
        if self._done:
            self.engine.wake(process, self._result)
        else:
            self._joiners.append(process)

    def _finish(self, result):
        self._done = True
        self._result = result
        joiners, self._joiners = self._joiners, []
        for joiner in joiners:
            self.engine.wake(joiner, result)

    def __repr__(self):
        state = "done" if self._done else "running"
        return "Process(%r, %s)" % (self.name, state)
