"""The discrete-event engine: a deterministic cycle-granular event loop."""

import heapq

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, SimEvent, Timeout
from repro.sim.process import Process


class Engine:
    """Deterministic discrete-event engine with integer cycle time.

    Events scheduled for the same cycle run in scheduling order (FIFO),
    making every simulation fully reproducible.
    """

    #: optional class-wide construction hook, called with each new engine.
    #: The suite runner (repro.runner) uses it to account the engines a
    #: cell builds and the cycles they simulate; it must never schedule
    #: events or otherwise feed back into the simulation.
    created_hook = None

    #: optional class-wide sanitizer (see repro.sanitize.SimSan).  When
    #: set, it supplies the equal-time ordering key pushed into the heap
    #: (which is how the tie-break can be deterministically inverted) and
    #: observes every schedule/fire for provenance.  When ``None`` — the
    #: default — the hot paths do nothing beyond one identity check, so
    #: reports stay byte-identical with the sanitizer absent.
    sanitizer = None

    def __init__(self):
        self._now = 0
        self._queue = []  # heap of (time, seq, callable)
        self._seq = 0
        self._processes = []
        #: absolute stop time of the innermost active run()/run_until_fired()
        #: loop; fast_advance must never jump the clock past it.
        self._horizon = None
        #: optional observability hook (see repro.obs): when set, its
        #: ``process_resumed(process)`` is called on every process resume.
        self.observer = None
        if Engine.created_hook is not None:
            Engine.created_hook(self)

    @property
    def now(self):
        """Current simulation time in cycles."""
        return self._now

    def event(self, name=""):
        """Create a new :class:`SimEvent` bound to this engine."""
        return SimEvent(self, name)

    def schedule(self, delay, callback):
        """Run ``callback()`` after ``delay`` cycles (a non-negative int)."""
        if not isinstance(delay, int):
            # Float delays would silently break the integer-cycle
            # determinism contract Timeout already enforces.
            raise SimulationError(
                "delay must be an integer cycle count, got %r" % (delay,)
            )
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%d)" % delay)
        self._seq += 1
        if Engine.sanitizer is None:
            key = self._seq
        else:
            key = Engine.sanitizer.on_schedule(
                self, self._now + delay, self._seq, callback
            )
        heapq.heappush(self._queue, (self._now + delay, key, callback))

    def spawn(self, generator, name=""):
        """Start a new process from a generator; returns the Process."""
        process = Process(self, generator, name)
        self._processes.append(process)
        self.schedule(0, lambda: process.resume(None))
        return process

    def wake(self, process, value):
        """Schedule ``process`` to resume with ``value`` this cycle."""
        self.schedule(0, lambda: process.resume(value))

    def dispatch(self, process, command):
        """Suspend ``process`` according to the yielded ``command``."""
        if isinstance(command, Timeout):
            self.schedule(command.delay, lambda: process.resume(None))
        elif isinstance(command, SimEvent):
            command.add_waiter(process)
        elif isinstance(command, AllOf):
            self._wait_all(process, command.events)
        elif isinstance(command, AnyOf):
            self._wait_any(process, command.events)
        elif isinstance(command, Process):
            command.add_join_waiter(process)
        else:
            raise SimulationError(
                "process %r yielded unsupported command %r" % (process.name, command)
            )

    def _wait_all(self, process, events):
        pending = [event for event in events if not event.fired]
        remaining = len(pending)
        if not remaining:
            self.wake(process, [event.value for event in events])
            return
        state = {"remaining": remaining}

        def make_callback():
            def callback(_value):
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    self.wake(process, [event.value for event in events])

            return callback

        for event in pending:
            event.on_fire(make_callback())

    def _wait_any(self, process, events):
        for index, event in enumerate(events):
            if event.fired:
                self.wake(process, (index, event.value))
                return

        # Losing registrations must be cancelled when the race completes:
        # a stale callback left in a loser's ``_callbacks`` would block a
        # later ``reset()`` and accumulate without bound across repeated
        # AnyOf waits over long-lived events.
        state = {"registered": []}

        def make_callback(index):
            def callback(value):
                registered = state["registered"]
                if registered is None:
                    # A duplicate membership of the winning event: the
                    # first copy already decided the race and cancelled
                    # everything (fire() had snapshotted this callback
                    # before the cancellation could remove it).
                    return
                state["registered"] = None
                for event, losing_callback in registered:
                    if losing_callback is not callback:
                        event.cancel_on_fire(losing_callback)
                self.wake(process, (index, value))

            return callback

        for index, event in enumerate(events):
            callback = make_callback(index)
            state["registered"].append((event, callback))
            event.on_fire(callback)

    def run(self, until=None):
        """Run the event loop.

        Stops when the queue is empty, or when simulation time would pass
        ``until`` (the clock then rests exactly at ``until``).
        """
        try:
            self._horizon = until
            while self._queue:
                time, key, callback = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    return
                heapq.heappop(self._queue)
                if time < self._now:
                    raise SimulationError(
                        "time went backwards: %d < %d" % (time, self._now)
                    )
                self._now = time
                if Engine.sanitizer is not None:
                    Engine.sanitizer.on_fire(self, time, key)
                callback()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._horizon = None

    def run_until_fired(self, event, deadline=None, limit=None):
        """Run until ``event`` fires; returns its value.

        ``deadline`` is an *absolute* simulation time: once the next queued
        event lies strictly past it, a :class:`SimulationError` is raised
        (the queue stays intact so the caller can recover or inspect).  It
        is not a relative cycle budget — an engine whose ``now`` is already
        at 1e9 needs a deadline past 1e9, not a small count.

        ``limit`` is a deprecated alias for ``deadline`` kept for older
        callers (it always had these absolute semantics despite being
        documented as a relative cycle count); passing both is an error.
        """
        if deadline is None:
            deadline = limit
        elif limit is not None:
            raise SimulationError("pass either deadline= or limit=, not both")
        try:
            self._horizon = deadline
            while self._queue and not event.fired:
                time, key, callback = self._queue[0]
                if deadline is not None and time > deadline:
                    # Peek, don't pop: the queue must stay intact so the
                    # caller can recover (or inspect) after the deadline.
                    raise SimulationError(
                        "event %r did not fire by absolute deadline %d (now=%d)"
                        % (event.name, deadline, self._now)
                    )
                if time < self._now:
                    raise SimulationError(
                        "time went backwards: %d < %d" % (time, self._now)
                    )
                heapq.heappop(self._queue)
                self._now = time
                if Engine.sanitizer is not None:
                    Engine.sanitizer.on_fire(self, time, key)
                callback()
        finally:
            self._horizon = None
        if not event.fired:
            raise SimulationError("deadlock: queue drained before %r fired" % (event.name,))
        return event.value

    # --- compiled fast lane (see repro.sim.fastpath) ----------------------

    def can_fast_advance(self, delta):
        """True when the clock may jump ``delta`` cycles without dispatching.

        The jump is only sound when no queued event would have run inside
        the window (strictly: any event at or before ``now + delta`` must
        run first — an equal-time foreign event could interleave with the
        replayed path under interpretation) and when the jump cannot
        overshoot an active ``run(until=)``/``run_until_fired(deadline=)``
        horizon.
        """
        target = self._now + delta
        if self._queue and self._queue[0][0] <= target:
            return False
        if self._horizon is not None and target > self._horizon:
            return False
        return True

    def fast_advance(self, delta):
        """Atomically advance the clock by a compiled ``delta`` of cycles."""
        if not isinstance(delta, int) or delta < 0:
            raise SimulationError(
                "fast_advance delta must be a non-negative int, got %r" % (delta,)
            )
        if not self.can_fast_advance(delta):
            raise SimulationError(
                "fast_advance(%d) would cross a queued event or the run horizon"
                % delta
            )
        self._now += delta
