"""The discrete-event engine: a deterministic cycle-granular event loop."""

import heapq

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, SimEvent, Timeout
from repro.sim.process import Process


class Engine:
    """Deterministic discrete-event engine with integer cycle time.

    Events scheduled for the same cycle run in scheduling order (FIFO),
    making every simulation fully reproducible.
    """

    #: optional class-wide construction hook, called with each new engine.
    #: The suite runner (repro.runner) uses it to account the engines a
    #: cell builds and the cycles they simulate; it must never schedule
    #: events or otherwise feed back into the simulation.
    created_hook = None

    #: optional class-wide sanitizer (see repro.sanitize.SimSan).  When
    #: set, it supplies the equal-time ordering key pushed into the heap
    #: (which is how the tie-break can be deterministically inverted) and
    #: observes every schedule/fire for provenance.  When ``None`` — the
    #: default — the hot paths do nothing beyond one identity check, so
    #: reports stay byte-identical with the sanitizer absent.
    sanitizer = None

    def __init__(self):
        self._now = 0
        self._queue = []  # heap of (time, seq, callable)
        self._seq = 0
        self._processes = []
        #: optional observability hook (see repro.obs): when set, its
        #: ``process_resumed(process)`` is called on every process resume.
        self.observer = None
        if Engine.created_hook is not None:
            Engine.created_hook(self)

    @property
    def now(self):
        """Current simulation time in cycles."""
        return self._now

    def event(self, name=""):
        """Create a new :class:`SimEvent` bound to this engine."""
        return SimEvent(self, name)

    def schedule(self, delay, callback):
        """Run ``callback()`` after ``delay`` cycles (a non-negative int)."""
        if not isinstance(delay, int):
            # Float delays would silently break the integer-cycle
            # determinism contract Timeout already enforces.
            raise SimulationError(
                "delay must be an integer cycle count, got %r" % (delay,)
            )
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%d)" % delay)
        self._seq += 1
        if Engine.sanitizer is None:
            key = self._seq
        else:
            key = Engine.sanitizer.on_schedule(
                self, self._now + delay, self._seq, callback
            )
        heapq.heappush(self._queue, (self._now + delay, key, callback))

    def spawn(self, generator, name=""):
        """Start a new process from a generator; returns the Process."""
        process = Process(self, generator, name)
        self._processes.append(process)
        self.schedule(0, lambda: process.resume(None))
        return process

    def wake(self, process, value):
        """Schedule ``process`` to resume with ``value`` this cycle."""
        self.schedule(0, lambda: process.resume(value))

    def dispatch(self, process, command):
        """Suspend ``process`` according to the yielded ``command``."""
        if isinstance(command, Timeout):
            self.schedule(command.delay, lambda: process.resume(None))
        elif isinstance(command, SimEvent):
            command.add_waiter(process)
        elif isinstance(command, AllOf):
            self._wait_all(process, command.events)
        elif isinstance(command, AnyOf):
            self._wait_any(process, command.events)
        elif isinstance(command, Process):
            command.add_join_waiter(process)
        else:
            raise SimulationError(
                "process %r yielded unsupported command %r" % (process.name, command)
            )

    def _wait_all(self, process, events):
        pending = [event for event in events if not event.fired]
        remaining = len(pending)
        if not remaining:
            self.wake(process, [event.value for event in events])
            return
        state = {"remaining": remaining}

        def make_callback():
            def callback(_value):
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    self.wake(process, [event.value for event in events])

            return callback

        for event in pending:
            event.on_fire(make_callback())

    def _wait_any(self, process, events):
        state = {"done": False}

        def make_callback(index):
            def callback(value):
                if not state["done"]:
                    state["done"] = True
                    self.wake(process, (index, value))

            return callback

        for index, event in enumerate(events):
            if event.fired:
                make_callback(index)(event.value)
                return
        for index, event in enumerate(events):
            event.on_fire(make_callback(index))

    def run(self, until=None):
        """Run the event loop.

        Stops when the queue is empty, or when simulation time would pass
        ``until`` (the clock then rests exactly at ``until``).
        """
        while self._queue:
            time, key, callback = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return
            heapq.heappop(self._queue)
            if time < self._now:
                raise SimulationError("time went backwards: %d < %d" % (time, self._now))
            self._now = time
            if Engine.sanitizer is not None:
                Engine.sanitizer.on_fire(self, time, key)
            callback()
        if until is not None and until > self._now:
            self._now = until

    def run_until_fired(self, event, limit=None):
        """Run until ``event`` fires; returns its value.

        ``limit`` (cycles) guards against livelock; exceeding it raises
        :class:`SimulationError`.
        """
        while self._queue and not event.fired:
            time, key, callback = self._queue[0]
            if limit is not None and time > limit:
                # Peek, don't pop: the queue must stay intact so the
                # caller can recover (or inspect) after the limit error.
                raise SimulationError(
                    "event %r did not fire within %d cycles" % (event.name, limit)
                )
            if time < self._now:
                raise SimulationError("time went backwards: %d < %d" % (time, self._now))
            heapq.heappop(self._queue)
            self._now = time
            if Engine.sanitizer is not None:
                Engine.sanitizer.on_fire(self, time, key)
            callback()
        if not event.fired:
            raise SimulationError("deadlock: queue drained before %r fired" % (event.name,))
        return event.value
