"""Cycle/time conversion for a simulated machine.

The engine counts cycles; real-world quantities (wire latencies, packet
serialization times, microsecond reports like paper Table V) are converted
through the platform's CPU frequency.
"""

from repro.errors import ConfigurationError


class Clock:
    """Converts between cycles and wall-clock time at a fixed frequency."""

    def __init__(self, frequency_hz):
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive, got %r" % frequency_hz)
        self.frequency_hz = frequency_hz

    def cycles_from_ns(self, nanoseconds):
        """Nanoseconds -> cycles, rounded to the nearest cycle (min 0)."""
        return max(0, round(nanoseconds * self.frequency_hz / 1e9))

    def cycles_from_us(self, microseconds):
        return self.cycles_from_ns(microseconds * 1e3)

    def ns_from_cycles(self, cycles):
        """Cycles -> nanoseconds (float)."""
        return cycles * 1e9 / self.frequency_hz

    def us_from_cycles(self, cycles):
        """Cycles -> microseconds (float)."""
        return cycles * 1e6 / self.frequency_hz

    def __repr__(self):
        return "Clock(%.2f GHz)" % (self.frequency_hz / 1e9)
