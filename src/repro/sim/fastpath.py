"""Compiled fast lane for hot world-switch/trap paths.

The paper's Table I operations are tiny, fixed sequences of costed steps
replayed thousands of times per benchmark cell.  Interpreting them step
by step through the DES costs a generator resume, a heap push and a heap
pop *per step*.  This module compiles such a path once — by recording a
real interpreted execution and validating it against the committed
PathSpec goldens (``specs/*.json``) — and replays later executions as a
single atomic clock jump (:meth:`Engine.fast_advance`) plus the path's
metric-counter deltas.

Safety model (byte-identical reports on vs off):

* A path is only compiled from a **pure** recorded run: the generator
  body touched nothing on the engine (no spawns/schedules), every yield
  was the ``Timeout`` of exactly one costed ``pcpu.op``, no foreign
  event ran inside the window, the world state (vcpu/pcpu/arch/vm) came
  back to a value-identical fixed point, and the only metric movement
  was counter increments.  Anything else refuses to compile and the
  path interprets forever after ``MAX_RECORD_FAILURES`` attempts.
* The recorded step sequence must match the **committed spec goldens**
  for the site's chain of functions, including the cycle value of every
  cost reference (SPEC001-style drift ⇒ refuse-to-compile, fall back).
* Replay re-resolves every cost reference **live** from the machine's
  cost table, so monkeypatched costs are honored without invalidation.
* The clock jump only happens when no queued event lies at or inside
  the window (strictly: the queue head must be *past* ``now + total``
  — an equal-time foreign event could interleave under interpretation)
  and when it cannot overshoot an active run horizon.
* The lane is unusable — pass-through interpretation — whenever the
  sanitizer, the tracer, or span recording is active, so every
  observability and SimSan mode sees the unmodified interpreter.

Every ``REVALIDATE_EVERY`` hits an entry is dropped and re-recorded
(re-recording *is* interpretation, so timing is identical either way).
"""

import json
import os
import pathlib

from repro.sim.engine import Engine

#: drop + re-record a compiled entry after this many replays
REVALIDATE_EVERY = 256
#: after this many refused recordings a vcpu's site interprets forever
MAX_RECORD_FAILURES = 3


def fastpath_enabled():
    """Process-wide default from ``REPRO_FASTPATH`` (on unless 0/off)."""
    return os.environ.get("REPRO_FASTPATH", "1").lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def _default_spec_dir():
    override = os.environ.get("REPRO_SPEC_DIR")
    if override:
        return pathlib.Path(override)
    # src/repro/sim/fastpath.py -> sim -> repro -> src -> repo root
    return pathlib.Path(__file__).resolve().parents[3] / "specs"


_SPEC_CACHE = {}


def load_committed_specs(spec_dir=None):
    """{spec_id: spec} over every committed ``specs/*.json`` golden.

    Missing or unreadable goldens yield an empty mapping — the lane then
    refuses to compile anything and every path interprets (never crash).
    """
    spec_dir = pathlib.Path(spec_dir) if spec_dir is not None else _default_spec_dir()
    key = str(spec_dir)
    cached = _SPEC_CACHE.get(key)
    if cached is not None:
        return cached
    committed = {}
    if spec_dir.is_dir():
        for path in sorted(spec_dir.glob("*.json")):
            try:
                document = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            for spec in document.get("specs", []):
                spec_id = spec.get("id")
                if spec_id:
                    committed[spec_id] = spec
    _SPEC_CACHE[key] = committed
    return committed


def _freeze(value):
    """Immutable, value-comparable image of recorded world state.

    Containers freeze recursively; unknown objects freeze by identity
    (e.g. the Vcpu in ``pcpu.current_context`` — the *same* object must
    be back in place, not an equal one).
    """
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    if isinstance(value, dict):
        return ("d",) + tuple(
            (_freeze(k), _freeze(v)) for k, v in value.items()
        )
    if isinstance(value, (list, tuple)):
        return ("l",) + tuple(_freeze(v) for v in value)
    return ("obj", id(value))


def _path_guard(vcpu):
    """The cheap per-replay precondition a compiled entry was keyed on."""
    pcpu = vcpu.pcpu
    arch = pcpu.arch
    base = (
        vcpu.state,
        pcpu.current_context is vcpu,
        len(vcpu.pending_virqs),
    )
    if vcpu.vmcs is not None:
        return base + (
            arch.root_mode,
            arch.loaded_vmcs is vcpu.vmcs,
            vcpu.vmcs.pending_injection,
        )
    return base + (
        arch.current_el,
        arch._e2h,
        arch.virt_features_enabled,
        arch.current_vmid,
    )


def _world_image(vcpu):
    """Deep value-freeze of everything a wrapped path may touch.

    Compared before/after a recording: a compiled path must be a strict
    fixed point of the world, because replay restores *nothing*.
    """
    pcpu = vcpu.pcpu
    arch = pcpu.arch
    vm = vcpu.vm
    items = [
        _freeze(vcpu.state),
        _freeze(list(vcpu.pending_virqs)),
        _freeze(vcpu.saved_context),
        _freeze(pcpu.current_context),
        _freeze(getattr(pcpu, "host_context", None)),
        _freeze(getattr(pcpu, "xen_idle_context", None)),
        vm.vmid,
        vm._irq_rr,
        _freeze(tuple(vm.irq_affinity)),
    ]
    if vcpu.vif is not None:
        items.append(_freeze(vcpu.vif.snapshot()))
    if vcpu.vmcs is not None:
        items.append(_freeze(vcpu.vmcs.guest_state))
        items.append(_freeze(vcpu.vmcs.host_state))
        items.append(_freeze(vcpu.vmcs.pending_injection))
    if vcpu.vmcs is not None or not hasattr(arch, "current_el"):
        items.append(
            (
                arch.root_mode,
                ("obj", id(arch.loaded_vmcs)),
                _freeze(arch.regs.snapshot()),
            )
        )
    else:
        items.append(
            (
                arch.current_el,
                arch._e2h,
                arch.virt_features_enabled,
                arch.current_vmid,
                _freeze(arch.regs.snapshot()),
                _freeze(dict(arch._el2_extended)),
            )
        )
    return tuple(items)


def _metric_images(metrics):
    """(counters, others) value images over every registered instrument."""
    counters = []
    others = []
    for instrument in metrics:
        kind = getattr(instrument, "kind", None)
        if kind == "counter":
            counters.append((instrument, instrument.value))
        elif kind == "gauge":
            others.append((instrument, instrument.value))
        else:
            others.append((instrument, getattr(instrument, "count", None)))
    return counters, others


def _match_chain(committed, chain, steps, costs):
    """Validate recorded ``(label, cycles)`` steps against the committed
    specs of the site's function chain.

    Returns the list of live cost references (resolved again on every
    replay) or ``None`` on any mismatch: unknown spec id, op/step
    disagreement, or a cycle value drifting from the cost the spec
    declares (the SPEC001 contract).  Only ``fall`` paths participate —
    raise-terminated paths carry no steps and must never match.
    """
    chain_paths = []
    for spec_id in chain:
        spec = committed.get(spec_id)
        if spec is None:
            return None
        fall_paths = [
            path.get("steps", [])
            for path in spec.get("paths", [])
            if path.get("terminator") == "fall"
        ]
        if not fall_paths:
            return None
        chain_paths.append(fall_paths)

    def match_path(spec_steps, index):
        refs = []
        for spec_step in spec_steps:
            if "arch" in spec_step:
                continue  # architectural effect, not a costed step
            cost_kind = spec_step.get("cost_kind")
            cost_name = spec_step.get("cost")
            if cost_kind == "field":
                if index >= len(steps):
                    return None
                label, cycles = steps[index]
                expected = getattr(costs, cost_name, None)
                if label != spec_step.get("op"):
                    return None
                if not isinstance(expected, int) or cycles != expected:
                    return None
                refs.append(("field", cost_name, None))
                index += 1
            elif cost_kind == "table":
                op = spec_step.get("op", "")
                if not op.endswith("*"):
                    return None
                prefix = op[:-1]
                table = getattr(costs, cost_name, None)
                if not isinstance(table, dict):
                    return None
                # Resolve register classes from the table's own keys so
                # the sim layer never imports hw enums.
                by_suffix = {
                    getattr(reg_class, "name", str(reg_class)).lower(): reg_class
                    for reg_class in table
                }
                matched = 0
                while index < len(steps):
                    label, cycles = steps[index]
                    if not label.startswith(prefix):
                        break
                    reg_class = by_suffix.get(label[len(prefix):])
                    if reg_class is None:
                        break
                    if table[reg_class] != cycles:
                        return None
                    refs.append(("table", cost_name, reg_class))
                    index += 1
                    matched += 1
                if matched == 0:
                    return None
            else:
                # method/external/literal costs have no stable live
                # reference to re-resolve at replay: refuse.
                return None
        return refs, index

    def match_from(chain_index, step_index):
        if chain_index == len(chain_paths):
            return [] if step_index == len(steps) else None
        for spec_steps in chain_paths[chain_index]:
            result = match_path(spec_steps, step_index)
            if result is None:
                continue
            refs, next_index = result
            rest = match_from(chain_index + 1, next_index)
            if rest is not None:
                return refs + rest
        return None

    return match_from(0, 0)


class _CompiledPath:
    """One vcpu's compiled execution of one site."""

    __slots__ = ("guard", "refs", "counter_deltas", "value", "hits")

    def __init__(self, guard, refs, counter_deltas, value):
        self.guard = guard
        self.refs = refs
        self.counter_deltas = counter_deltas
        self.value = value
        self.hits = 0


class FastSite:
    """One wrapped operation (e.g. KVM's hypercall round trip).

    ``chain`` is the ordered tuple of committed-spec ids whose ``fall``
    paths, concatenated, must exactly produce the recorded steps.
    """

    __slots__ = ("lane", "name", "chain", "entries", "failures")

    def __init__(self, lane, name, chain):
        self.lane = lane
        self.name = name
        self.chain = tuple(chain)
        self.entries = {}
        self.failures = {}

    def run(self, vcpu, factory):
        """Replay the compiled path for ``vcpu`` or fall back to the
        interpreted generator ``factory(vcpu)``.

        A successful replay returns before its first yield, so the whole
        operation completes synchronously inside one process resume.
        """
        lane = self.lane
        if not lane.usable():
            return (yield from factory(vcpu))
        entry = self.entries.get(vcpu)
        if entry is not None:
            total = self._replay_total(entry, vcpu)
            if total is not None:
                lane.counters["hits"] += 1
                engine = lane.machine.engine
                engine.fast_advance(total)
                for counter, delta in entry.counter_deltas:
                    counter.value += delta
                entry.hits += 1
                if entry.hits % REVALIDATE_EVERY == 0:
                    # periodic re-validation: force a fresh record pass
                    del self.entries[vcpu]
                return entry.value
            # Transient miss (guard change, queued event inside the
            # window, cost drift): interpret this one, keep the entry.
            lane.counters["misses"] += 1
            return (yield from factory(vcpu))
        if self.failures.get(vcpu, 0) >= MAX_RECORD_FAILURES:
            return (yield from factory(vcpu))
        return (yield from self._record(vcpu, factory))

    def _replay_total(self, entry, vcpu):
        """Live cycle total for a replay, or None if it must interpret."""
        if entry.guard != _path_guard(vcpu):
            return None
        costs = self.lane.machine.costs
        total = 0
        for kind, cost_name, reg_class in entry.refs:
            resolved = getattr(costs, cost_name, None)
            if kind == "table":
                resolved = (
                    resolved.get(reg_class) if isinstance(resolved, dict) else None
                )
            if not isinstance(resolved, int):
                return None
            total += resolved
        if not self.lane.machine.engine.can_fast_advance(total):
            return None
        return total

    def _record(self, vcpu, factory):
        """Pass-through interpretation that also records and, when every
        purity check holds, compiles the path.

        The wrapped generator runs with *identical* timing to plain
        interpretation — each of its yields is forwarded unchanged — so
        a refused recording is indistinguishable from a normal run.
        """
        lane = self.lane
        engine = lane.machine.engine
        metrics = lane.machine.obs.metrics
        guard = _path_guard(vcpu)
        pre_world = _world_image(vcpu)
        pre_counters, pre_others = _metric_images(metrics)
        steps = []
        lane.recording = steps
        pure = True
        try:
            generator = factory(vcpu)
            send_value = None
            while True:
                now_before = engine._now
                seq_before = engine._seq
                qlen_before = len(engine._queue)
                steps_before = len(steps)
                try:
                    command = generator.send(send_value)
                except StopIteration as stop:
                    value = stop.value
                    break
                # The body between yields must be pure simulation-wise:
                # no time movement, no schedules, exactly one recorded
                # op whose Timeout is the command being yielded.
                if (
                    engine._now != now_before
                    or engine._seq != seq_before
                    or len(engine._queue) != qlen_before
                    or len(steps) != steps_before + 1
                    or type(command).__name__ != "Timeout"
                    or steps[-1][1] != command.delay
                ):
                    pure = False
                send_value = yield command
                # Across the yield only our own resume may have run: one
                # new schedule (seq +1), the queue back to its pre-yield
                # depth (a foreign pop without a push would shrink it),
                # and the clock advanced by exactly the step's cost.
                if (
                    engine._seq != seq_before + 1
                    or len(engine._queue) != qlen_before
                    or engine._now != now_before + command.delay
                ):
                    pure = False
        finally:
            lane.recording = None
        if pure and value is None and _world_image(vcpu) == pre_world:
            post_counters, post_others = _metric_images(metrics)
            deltas = None
            if len(post_counters) == len(pre_counters) and len(post_others) == len(
                pre_others
            ):
                same_instruments = all(
                    post is pre
                    for (post, _), (pre, _) in zip(post_counters, pre_counters)
                ) and all(
                    post is pre and post_value == pre_value
                    for (post, post_value), (pre, pre_value) in zip(
                        post_others, pre_others
                    )
                )
                if same_instruments:
                    deltas = [
                        (counter, value_after - value_before)
                        for (counter, value_after), (_, value_before) in zip(
                            post_counters, pre_counters
                        )
                        if value_after != value_before
                    ]
            if deltas is not None:
                refs = _match_chain(
                    lane.committed_specs(), self.chain, steps, lane.machine.costs
                )
                if refs is not None:
                    self.entries[vcpu] = _CompiledPath(guard, refs, deltas, value)
                    lane.counters["recordings"] += 1
                    return value
        self.failures[vcpu] = self.failures.get(vcpu, 0) + 1
        lane.counters["rejects"] += 1
        return value


class FastLane:
    """Per-machine fast-lane state: enablement, sites, and counters."""

    def __init__(self, machine, enabled=None):
        self.machine = machine
        self.enabled = fastpath_enabled() if enabled is None else enabled
        #: the live recording list a pass-through record run appends
        #: ``(label, cycles)`` into from ``Pcpu.op`` (None when idle)
        self.recording = None
        self.counters = {
            "hits": 0,
            "misses": 0,
            "recordings": 0,
            "rejects": 0,
        }
        self.sites = []
        self._committed = None
        # Backref for the runner's per-engine accounting (pool.py reads
        # ``engine.fastlane.counters`` when aggregating a cell).
        machine.engine.fastlane = self

    def usable(self):
        """May a site replay (or record) right now?

        Any observer that watches individual steps — SimSan, the step
        tracer, span recording — forces pass-through interpretation, as
        does a recording already in flight (no nested recording).
        """
        return (
            self.enabled
            and Engine.sanitizer is None
            and not self.machine.tracer.enabled
            and not self.machine.obs.spans.enabled
            and self.recording is None
        )

    def committed_specs(self):
        if self._committed is None:
            self._committed = load_committed_specs()
        return self._committed

    def site(self, name, chain):
        """Register a wrapped operation; returns its :class:`FastSite`."""
        site = FastSite(self, name, chain)
        self.sites.append(site)
        return site

    def snapshot(self):
        """Plain-data counter snapshot for bench/pool accounting."""
        return dict(self.counters)
