"""Service clients: sync (``http.client``) and async (asyncio streams).

The sync client backs ``python -m repro query`` and thread-based tests;
the async client lets one thread hold many concurrent queries open —
the shape the coalescing burst tests and the loadgen need.  Both raise
:class:`ServiceError` for any non-ok response, carrying the server's
stable error document verbatim.

**Retry discipline** (the ``query`` helper only — ``request`` and
``query_raw`` are always single-attempt, so tests can count exact
server-side rejects): queries are idempotent by construction (the
simulation is deterministic and results are content-addressed), so a
connection reset or a 503 shed (``overloaded`` during a burst,
``shutting-down`` during a drain) is retried up to
:class:`RetryConfig.retries` times with bounded exponential backoff.
The 503 path honors the server's advised ``retry_after``; the jitter is
a deterministic hash of (pid, attempt), so two client processes
desynchronize without any wall-clock or RNG entropy.  ``retries=0``
(the ``--no-retry`` flag / ``REPRO_CLIENT_RETRIES=0``) restores strict
single-attempt behavior.
"""

import asyncio
import dataclasses
import hashlib
import http.client
import json
import os
import time

from repro.errors import ConfigurationError, ReproError
from repro.service import protocol

#: attempts after the first (``REPRO_CLIENT_RETRIES`` overrides)
DEFAULT_RETRIES = 2
ENV_RETRIES = "REPRO_CLIENT_RETRIES"

#: the 503 codes a retry can help with (anything else is the caller's)
RETRYABLE_CODES = (protocol.OVERLOADED, protocol.SHUTTING_DOWN)


class ServiceError(ReproError):
    """A non-ok service response; carries the full error document."""

    def __init__(self, status, document):
        error = (document or {}).get("error") or {}
        self.status = status
        self.document = document or {}
        self.code = error.get("code", protocol.INTERNAL)
        super().__init__(
            "service error %s (HTTP %d): %s"
            % (self.code, status, error.get("message", "no message"))
        )


def _default_port():
    text = os.environ.get("REPRO_SERVE_PORT")
    return int(text) if text else protocol.DEFAULT_PORT


@dataclasses.dataclass
class RetryConfig:
    """Bounded, jittered retry for idempotent queries."""

    retries: int = DEFAULT_RETRIES
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0

    @classmethod
    def from_env(cls, environ=None, **overrides):
        environ = os.environ if environ is None else environ
        text = environ.get(ENV_RETRIES)
        retries = DEFAULT_RETRIES
        if text:
            try:
                retries = int(text)
            except ValueError:
                raise ConfigurationError(
                    "%s=%r is not an integer" % (ENV_RETRIES, text)
                )
            if retries < 0:
                raise ConfigurationError("%s must be >= 0" % ENV_RETRIES)
        config = cls(retries=retries)
        for name, value in overrides.items():
            if value is not None:
                setattr(config, name, value)
        return config

    def backoff_s(self, attempt):
        """Deterministically jittered bounded exponential backoff.

        The jitter fraction lies in [0.5, 1.0) and is a hash of
        (pid, attempt) — stable within a process (testable), different
        across processes (no retry stampede after a mass shed).
        """
        delay = min(
            self.backoff_base_s * (self.backoff_factor ** attempt),
            self.backoff_max_s,
        )
        seed = hashlib.sha256(
            ("%d:%d" % (os.getpid(), attempt)).encode("utf-8")
        ).digest()
        return delay * (0.5 + (seed[0] / 256.0) * 0.5)

    def retry_delay(self, attempt, document):
        """The wait before retry ``attempt``, honoring ``retry_after``.

        Returns None when this response must not be retried (wrong
        code, or the budget is spent).
        """
        if attempt >= self.retries:
            return None
        error = (document or {}).get("error") or {}
        if error.get("code") not in RETRYABLE_CODES:
            return None
        retry_after = error.get("retry_after")
        if retry_after is not None:
            try:
                return float(retry_after)
            except (TypeError, ValueError):
                pass
        return self.backoff_s(attempt)


def _query_payload(target, params, costs, budget_cells, deadline_ms):
    payload = {"target": target}
    if params:
        payload["params"] = params
    if costs:
        payload["costs"] = costs
    if budget_cells is not None:
        payload["budget_cells"] = budget_cells
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return payload


def _checked(status, document):
    if status != 200 or not document.get("ok"):
        raise ServiceError(status, document)
    return document


class ServiceClient:
    """Blocking client: one HTTP connection per call, stdlib only."""

    #: test seam: retry waits route through here.  Suppressing at the
    #: alias definition waives every call routed through the seam.
    # repro-lint: ignore[CON001] — ServiceClient is the *blocking* surface
    # (CLI, threads, loadgen workers); loop callers use AsyncServiceClient.
    # The event-loop context is the fuzzy `query`/`request` name collision
    # with the async twin's coroutines.
    _sleep = staticmethod(time.sleep)

    def __init__(self, host="127.0.0.1", port=None, timeout=120.0, retry=None):
        self.host = host
        self.port = port if port is not None else _default_port()
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryConfig.from_env()

    def request(self, method, path, payload=None):
        """Raw round trip; returns ``(status, document)`` unchecked."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = json.dumps(payload) if payload is not None else None
            connection.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"},
            )
            # repro-lint: ignore[CON001] — blocking by contract: this is
            # the sync client (see the class-level note above _sleep).
            response = connection.getresponse()
            text = response.read().decode("utf-8")
            status = response.status
        finally:
            connection.close()
        document = json.loads(text) if text.strip() else {}
        return status, document

    def query(
        self,
        target,
        params=None,
        costs=None,
        budget_cells=None,
        deadline_ms=None,
    ):
        """Submit one what-if query; returns the full success document.

        Retries on connection reset and retryable 503s per
        ``self.retry`` (queries are idempotent — see module docstring).
        """
        payload = _query_payload(target, params, costs, budget_cells, deadline_ms)
        attempt = 0
        while True:
            try:
                status, document = self.request("POST", "/v1/query", payload)
            except (ConnectionError, http.client.HTTPException, OSError):
                if attempt >= self.retry.retries:
                    raise
                self._sleep(self.retry.backoff_s(attempt))
                attempt += 1
                continue
            delay = self.retry.retry_delay(attempt, document)
            if status == 503 and delay is not None:
                self._sleep(delay)
                attempt += 1
                continue
            return _checked(status, document)

    def query_raw(self, payload):
        """Submit an arbitrary body; returns ``(status, document)``.

        Single-attempt by contract — the raw seam never retries.
        """
        return self.request("POST", "/v1/query", payload)

    def health(self):
        """True if the server answers ``/healthz`` with ok."""
        try:
            status, document = self.request("GET", "/healthz")
        except (OSError, ValueError):
            return False
        return status == 200 and bool(document.get("ok"))

    def metrics(self):
        return _checked(*self.request("GET", "/v1/metrics"))

    def targets(self):
        return _checked(*self.request("GET", "/v1/targets"))


class AsyncServiceClient:
    """Non-blocking client for concurrent queries from one event loop."""

    #: test seam: retry waits route through here
    _sleep = staticmethod(asyncio.sleep)

    def __init__(self, host="127.0.0.1", port=None, retry=None):
        self.host = host
        self.port = port if port is not None else _default_port()
        self.retry = retry if retry is not None else RetryConfig.from_env()

    async def request(self, method, path, payload=None):
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(
                protocol.format_request(
                    method, path, "%s:%d" % (self.host, self.port), payload
                )
            )
            await writer.drain()
            status, document = await protocol.read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return status, document

    async def query(
        self,
        target,
        params=None,
        costs=None,
        budget_cells=None,
        deadline_ms=None,
    ):
        """Like :meth:`ServiceClient.query`, with the same retry rules."""
        payload = _query_payload(target, params, costs, budget_cells, deadline_ms)
        attempt = 0
        while True:
            try:
                status, document = await self.request("POST", "/v1/query", payload)
            except (ConnectionError, OSError):
                if attempt >= self.retry.retries:
                    raise
                await self._sleep(self.retry.backoff_s(attempt))
                attempt += 1
                continue
            delay = self.retry.retry_delay(attempt, document)
            if status == 503 and delay is not None:
                await self._sleep(delay)
                attempt += 1
                continue
            return _checked(status, document)

    async def query_raw(self, payload):
        """Single-attempt by contract — the raw seam never retries."""
        return await self.request("POST", "/v1/query", payload)

    async def metrics(self):
        return _checked(*await self.request("GET", "/v1/metrics"))
