"""Service clients: sync (``http.client``) and async (asyncio streams).

The sync client backs ``python -m repro query`` and thread-based tests;
the async client lets one thread hold many concurrent queries open —
the shape the coalescing burst tests and the loadgen need.  Both raise
:class:`ServiceError` for any non-ok response, carrying the server's
stable error document verbatim.
"""

import asyncio
import http.client
import json
import os

from repro.errors import ReproError
from repro.service import protocol


class ServiceError(ReproError):
    """A non-ok service response; carries the full error document."""

    def __init__(self, status, document):
        error = (document or {}).get("error") or {}
        self.status = status
        self.document = document or {}
        self.code = error.get("code", protocol.INTERNAL)
        super().__init__(
            "service error %s (HTTP %d): %s"
            % (self.code, status, error.get("message", "no message"))
        )


def _default_port():
    text = os.environ.get("REPRO_SERVE_PORT")
    return int(text) if text else protocol.DEFAULT_PORT


def _query_payload(target, params, costs, budget_cells, deadline_ms):
    payload = {"target": target}
    if params:
        payload["params"] = params
    if costs:
        payload["costs"] = costs
    if budget_cells is not None:
        payload["budget_cells"] = budget_cells
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return payload


def _checked(status, document):
    if status != 200 or not document.get("ok"):
        raise ServiceError(status, document)
    return document


class ServiceClient:
    """Blocking client: one HTTP connection per call, stdlib only."""

    def __init__(self, host="127.0.0.1", port=None, timeout=120.0):
        self.host = host
        self.port = port if port is not None else _default_port()
        self.timeout = timeout

    def request(self, method, path, payload=None):
        """Raw round trip; returns ``(status, document)`` unchecked."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = json.dumps(payload) if payload is not None else None
            connection.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            text = response.read().decode("utf-8")
            status = response.status
        finally:
            connection.close()
        document = json.loads(text) if text.strip() else {}
        return status, document

    def query(
        self,
        target,
        params=None,
        costs=None,
        budget_cells=None,
        deadline_ms=None,
    ):
        """Submit one what-if query; returns the full success document."""
        return _checked(
            *self.request(
                "POST",
                "/v1/query",
                _query_payload(target, params, costs, budget_cells, deadline_ms),
            )
        )

    def query_raw(self, payload):
        """Submit an arbitrary body; returns ``(status, document)``."""
        return self.request("POST", "/v1/query", payload)

    def health(self):
        """True if the server answers ``/healthz`` with ok."""
        try:
            status, document = self.request("GET", "/healthz")
        except (OSError, ValueError):
            return False
        return status == 200 and bool(document.get("ok"))

    def metrics(self):
        return _checked(*self.request("GET", "/v1/metrics"))

    def targets(self):
        return _checked(*self.request("GET", "/v1/targets"))


class AsyncServiceClient:
    """Non-blocking client for concurrent queries from one event loop."""

    def __init__(self, host="127.0.0.1", port=None):
        self.host = host
        self.port = port if port is not None else _default_port()

    async def request(self, method, path, payload=None):
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(
                protocol.format_request(
                    method, path, "%s:%d" % (self.host, self.port), payload
                )
            )
            await writer.drain()
            status, document = await protocol.read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return status, document

    async def query(
        self,
        target,
        params=None,
        costs=None,
        budget_cells=None,
        deadline_ms=None,
    ):
        return _checked(
            *await self.request(
                "POST",
                "/v1/query",
                _query_payload(target, params, costs, budget_cells, deadline_ms),
            )
        )

    async def query_raw(self, payload):
        return await self.request("POST", "/v1/query", payload)

    async def metrics(self):
        return _checked(*await self.request("GET", "/v1/metrics"))
