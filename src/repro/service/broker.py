"""The coalescing execution core behind the query server.

One worker thread drains a pending-cell queue in batches through the
resilient runner pool (:func:`repro.runner.pool.run_cells_outcome`);
an in-flight registry maps every queued-or-executing cell id to the
``concurrent.futures.Future`` that will carry its verdict.  Submitting
a cell that is already in flight *coalesces*: the caller joins the
existing future and the cell is simulated exactly once no matter how
many concurrent queries need it — the concurrency tests assert the
counters to the cell.

Futures always resolve to a verdict **tuple**, never an exception:

* ``("ok", CellResult)`` — the cell's verified result (fresh or cached);
* ``("failed", failure_dict)`` — the cell exhausted the runner's whole
  retry/degradation ladder (``FailedCell.as_dict()`` shape).

Resolving with values keeps multi-waiter semantics trivial (no
"exception was never retrieved" warnings, no first-waiter-consumes-it
races) and lets the server translate failures into its stable error
document.  The broker always runs the pool with ``keep_going=True`` so
one poisoned cell cannot abort a batch that carries other queries'
cells.

``hold()`` / ``release()`` are the deterministic test seam: a held
broker queues submissions without executing, so a test can pile up a
coalescing burst, assert the registry state, and then let one batch
run — no sleeps, no timing assumptions.

The worker thread is **supervised**: each spawn gets a generation
number, and an unexpected death (any escaping exception — ``_execute``
already converts cell failures to verdicts, so only genuine worker bugs
or injected chaos reach here) fails every pending future of the dead
generation with a ``worker-death`` verdict — a waiter is *never*
wedged — and respawns a fresh worker, so the broker keeps serving
(``service.worker.deaths`` / ``.respawns`` count the churn).  The
``_boom`` attribute is the chaos seam: the worker raises it after
passing the hold gate, making death deterministic in tests.
"""

import dataclasses
import threading
from collections import OrderedDict
from concurrent.futures import Future

from repro.errors import ReproError
from repro.obs import MetricsRegistry
from repro.runner import pool
from repro.runner.resilience import RetryPolicy

#: every broker-owned instrument (pre-registered so metrics snapshots
#: report explicit zeros and cross-thread get-or-create never races)
BROKER_COUNTERS = (
    "service.cells.requested",
    "service.cells.coalesced",
    "service.cells.simulated",
    "service.cells.cached",
    "service.cells.failed",
    "service.batches",
    "service.worker.deaths",
    "service.worker.respawns",
)


class BrokerClosed(ReproError):
    """Submission after shutdown (the server maps this to 503)."""


class SimulationBroker:
    """Single-worker batching executor with in-flight coalescing."""

    def __init__(self, jobs=1, cache=None, policy=None, metrics=None):
        self.jobs = jobs
        self.cache = cache
        base = policy if policy is not None else RetryPolicy.from_env()
        # keep_going is non-negotiable: a batch mixes unrelated queries'
        # cells, and one cell's exhausted ladder must not abort the rest
        self.policy = dataclasses.replace(base, keep_going=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        for name in BROKER_COUNTERS:
            self.metrics.counter(name)
        self.metrics.gauge("service.queue.cells")
        self._lock = threading.Lock()
        self._inflight = OrderedDict()  # exec cell id -> (spec, Future)
        self._pending = []  # exec CellSpecs queued for the next batch
        self._wake = threading.Event()
        self._gate = threading.Event()  # cleared = held (test seam)
        self._gate.set()
        self._closed = False
        self._thread = None
        self._generation = 0  # bumps on every worker (re)spawn
        self._boom = None  # chaos seam: raised by the worker post-gate

    # --- submission ------------------------------------------------------

    def submit(self, specs):
        """Enqueue (or join) every cell; returns ``(futures, stats)``.

        ``futures`` maps exec cell id to its verdict future, in request
        order.  ``stats`` reports ``cells`` (unique cells requested),
        ``coalesced`` (joined already-in-flight work), and ``owned``
        (the ids this submission enqueued itself — the caller attributes
        cached-vs-simulated counts over exactly these, so a coalesced
        cell is never double counted).
        """
        futures = OrderedDict()
        owned = []
        coalesced = 0
        with self._lock:
            if self._closed:
                raise BrokerClosed("broker is shutting down")
            for spec in specs:
                if spec.id in futures:
                    continue
                entry = self._inflight.get(spec.id)
                if entry is not None:
                    futures[spec.id] = entry[1]
                    coalesced += 1
                    continue
                future = Future()
                self._inflight[spec.id] = (spec, future)
                self._pending.append(spec)
                futures[spec.id] = future
                owned.append(spec.id)
            queued = len(self._pending)
            self._ensure_thread()
            self._wake.set()
        self.metrics.counter("service.cells.requested").inc(len(futures))
        self.metrics.counter("service.cells.coalesced").inc(coalesced)
        self.metrics.gauge("service.queue.cells").set(queued)
        return futures, {
            "cells": len(futures),
            "coalesced": coalesced,
            "owned": owned,
        }

    def inflight_count(self):
        with self._lock:
            return len(self._inflight)

    # --- the hold/release test seam --------------------------------------

    def hold(self):
        """Park the worker before its next batch (deterministic tests)."""
        self._gate.clear()

    def release(self):
        self._gate.set()

    # --- worker ----------------------------------------------------------

    def _ensure_thread(self):
        # caller holds self._lock
        if self._thread is None or not self._thread.is_alive():
            self._generation += 1
            self._thread = threading.Thread(
                target=self._supervise,
                args=(self._generation,),
                name="repro-service-broker",
                daemon=True,
            )
            self._thread.start()

    def _supervise(self, generation):
        """The thread target: run the loop; on escape, fail-and-respawn."""
        try:
            self._run()
        except BaseException as exc:  # worker bug or injected chaos
            self._on_worker_death(generation, exc)

    def _on_worker_death(self, generation, exc):
        """Fail every future of the dead generation, then respawn.

        The futures registry and pending queue are snapshotted and
        cleared under the lock, so a concurrent submit lands cleanly in
        the *next* generation; the verdicts are resolved outside the
        lock (waiters may run callbacks inline).
        """
        with self._lock:
            if generation != self._generation:
                return  # a stale corpse; a newer worker owns the state
            dead = list(self._inflight.items())
            self._inflight.clear()
            self._pending.clear()
            self._thread = None
            closed = self._closed
        self.metrics.counter("service.worker.deaths").inc()
        self.metrics.gauge("service.queue.cells").set(0)
        for cell_id, (_spec, future) in dead:
            if future.set_running_or_notify_cancel():
                future.set_result(
                    (
                        "failed",
                        {
                            "id": cell_id,
                            "kind": "worker-death",
                            "error": "broker worker died: %s: %s"
                            % (type(exc).__name__, exc),
                        },
                    )
                )
            self.metrics.counter("service.cells.failed").inc()
        if not closed:
            with self._lock:
                if not self._closed:
                    self._ensure_thread()
                    self.metrics.counter("service.worker.respawns").inc()

    def _run(self):
        while True:
            self._wake.wait()
            self._gate.wait()
            boom = self._boom
            if boom is not None:
                self._boom = None
                raise boom
            with self._lock:
                batch = list(self._pending)
                self._pending.clear()
                if not batch:
                    if self._closed:
                        return
                    self._wake.clear()
            if batch:
                self.metrics.gauge("service.queue.cells").set(0)
                self._execute(batch)

    def _execute(self, batch):
        self.metrics.counter("service.batches").inc()
        verdicts = {}
        try:
            outcome = pool.run_cells_outcome(
                batch,
                jobs=self.jobs,
                cache=self.cache,
                policy=self.policy,
                metrics=self.metrics,
            )
        except Exception as exc:  # defensive: keep_going should prevent this
            failure = {
                "id": None,
                "error": "%s: %s" % (type(exc).__name__, exc),
            }
            for spec in batch:
                verdicts[spec.id] = ("failed", dict(failure, id=spec.id))
                self.metrics.counter("service.cells.failed").inc()
        else:
            failed_by_id = {failed.cell_id: failed for failed in outcome.failures}
            for spec in batch:
                result = outcome.results.get(spec.id)
                if result is not None:
                    verdicts[spec.id] = ("ok", result)
                    if result.source == "cache":
                        self.metrics.counter("service.cells.cached").inc()
                    else:
                        self.metrics.counter("service.cells.simulated").inc()
                    continue
                failed = failed_by_id.get(spec.id)
                document = (
                    failed.as_dict()
                    if failed is not None
                    else {"id": spec.id, "error": "result missing from outcome"}
                )
                verdicts[spec.id] = ("failed", document)
                self.metrics.counter("service.cells.failed").inc()
        with self._lock:
            entries = [
                (cell_id, self._inflight.pop(cell_id))
                for cell_id in verdicts
                if cell_id in self._inflight
            ]
        for cell_id, (_spec, future) in entries:
            # a waiter that vanished (server shutdown cancels wrapped
            # futures) must not kill the worker thread; the transition
            # to RUNNING also makes late cancellations lose the race
            if future.set_running_or_notify_cancel():
                future.set_result(verdicts[cell_id])

    # --- shutdown ---------------------------------------------------------

    def close(self, timeout=30.0):
        """Drain pending work, stop the worker, refuse new submissions."""
        with self._lock:
            self._closed = True
            thread = self._thread
        self._gate.set()
        self._wake.set()
        if thread is not None:
            # repro-lint: ignore[CON001] — close() is the shutdown path,
            # called from the owning thread (ServerHandle.close / tests /
            # run_forever's finally), never from the event loop; the loop
            # context is the fuzzy `close` collision with the asyncio
            # stream writer's close() in ServiceServer._handle.
            thread.join(timeout)
