"""The query registry: canonicalization, planning, and reassembly.

A *query* names a report target plus validated parameters and an
optional what-if cost-override document.  Canonicalization is the
coalescing primitive: two requests that mean the same thing — whatever
their key order, parameter defaults spelled out or omitted — reduce to
the same canonical document and therefore the same ``query_key``
(sha256 over compact sorted JSON), the same cell plan, and the same
in-flight futures inside the broker.

Every target's ``assemble`` is the exact ``suite.*_data`` shape the CLI
``--emit-json`` twins produce, built from the same ``runner.merge``
functions — which is what lets the differential harness demand that a
served response is byte-identical (``payload_digest``) to the direct
runner path for the same canonical query.

Cost overrides never leak into the merge layer: cells are *planned* at
their base (default-calibration) identity, *executed* under the
override-carrying twin (:func:`repro.runner.cells.with_cost_overrides`),
and the results re-keyed back to base ids before assembly.
"""

import dataclasses
import hashlib
from collections import OrderedDict

from repro.core.testbed import ALL_KEYS
from repro.errors import ConfigurationError
from repro.hw import costs as hw_costs
from repro.paperdata import PLATFORM_ORDER
from repro.runner import cells, merge, pool, resilience
from repro.service import protocol
from repro.workloads import FIGURE4_WORKLOADS

#: workload names a mix parameter may select from (Figure 4 vocabulary)
WORKLOAD_NAMES = tuple(workload.name for workload in FIGURE4_WORKLOADS)


class Query:
    """One canonical what-if query (immutable once built)."""

    __slots__ = ("target", "params", "costs", "key")

    def __init__(self, target, params, costs):
        self.target = target
        self.params = params
        self.costs = costs
        self.key = hashlib.sha256(
            protocol.canonical_json(self.document()).encode("utf-8")
        ).hexdigest()

    def document(self):
        return {"target": self.target, "params": self.params, "costs": self.costs}


@dataclasses.dataclass(frozen=True)
class Target:
    """One queryable report artifact."""

    name: str
    description: str
    #: raw params dict -> canonical params dict (raises ConfigurationError)
    validate: object
    #: canonical params -> [base CellSpec] (pre-override identities)
    plan: object
    #: (results keyed by base cell id, canonical params) -> JSON data
    assemble: object
    #: parameter names and one-line help, for ``GET /v1/targets``
    param_help: tuple = ()


# --- parameter validators ------------------------------------------------


def _require_mapping(params, target):
    if params is None:
        return {}
    if not isinstance(params, dict):
        raise ConfigurationError(
            "query params for %r must be an object, got %r" % (target, params)
        )
    return dict(params)


def _reject_unknown(params, target, known):
    unknown = sorted(set(params) - set(known))
    if unknown:
        raise ConfigurationError(
            "unknown parameter(s) %s for target %r (expected %s)"
            % (unknown, target, sorted(known) or "none")
        )


def _platform_key(value, target, allowed):
    if value not in allowed:
        raise ConfigurationError(
            "unknown platform key %r for target %r (expected one of %s)"
            % (value, target, list(allowed))
        )
    return value


def _platform_keys(value, target, default, allowed):
    if value is None:
        return list(default)
    if not isinstance(value, list) or not value:
        raise ConfigurationError(
            "'keys' for target %r must be a non-empty list, got %r"
            % (target, value)
        )
    seen = set()
    for key in value:
        _platform_key(key, target, allowed)
        if key in seen:
            raise ConfigurationError(
                "duplicate platform key %r for target %r" % (key, target)
            )
        seen.add(key)
    return list(value)


def _positive_int(value, target, name, default):
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            "%r for target %r must be an integer, got %r" % (name, target, value)
        )
    if value < 1:
        raise ConfigurationError(
            "%r for target %r must be >= 1, got %d" % (name, target, value)
        )
    return value


def _timeslices(value, target):
    if value is None:
        return list(cells.OVERSUB_TIMESLICES_US)
    if not isinstance(value, list) or not value:
        raise ConfigurationError(
            "'timeslices_us' for target %r must be a non-empty list, got %r"
            % (target, value)
        )
    out = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise ConfigurationError(
                "'timeslices_us' entries for target %r must be numbers, got %r"
                % (target, item)
            )
        if item <= 0:
            raise ConfigurationError(
                "'timeslices_us' entries for target %r must be > 0, got %r"
                % (target, item)
            )
        out.append(float(item))
    return out


def _workloads(value, target):
    allowed = list(WORKLOAD_NAMES)
    if value is None:
        return list(cells.ABLATION_WORKLOADS)
    if not isinstance(value, list) or not value:
        raise ConfigurationError(
            "'workloads' for target %r must be a non-empty list, got %r"
            % (target, value)
        )
    for name in value:
        if name not in allowed:
            raise ConfigurationError(
                "unknown workload %r for target %r (expected one of %s)"
                % (name, target, allowed)
            )
    if len(set(value)) != len(value):
        raise ConfigurationError("duplicate workload for target %r" % (target,))
    return list(value)


def _no_params(raw, target):
    params = _require_mapping(raw, target)
    _reject_unknown(params, target, ())
    return {}


# --- per-target validate/plan/assemble -----------------------------------


def _validate_micro(raw):
    params = _require_mapping(raw, "micro")
    _reject_unknown(params, "micro", ("key",))
    key = params.get("key", "kvm-arm")
    return {"key": _platform_key(key, "micro", ALL_KEYS)}


def _assemble_micro(results, params):
    return dict(results[cells.micro(params["key"]).id].payload)


def _validate_table2(raw):
    params = _require_mapping(raw, "table2")
    _reject_unknown(params, "table2", ("keys",))
    return {"keys": _platform_keys(params.get("keys"), "table2", PLATFORM_ORDER, ALL_KEYS)}


def _assemble_table2(results, params):
    return {
        key: dict(column)
        for key, column in merge.table2_results(results, params["keys"]).items()
    }


def _assemble_table3(results, _params):
    breakdown = merge.breakdown_result(results)
    return {
        "rows": [dataclasses.asdict(row) for row in breakdown.rows],
        "save_total": breakdown.save_total,
        "restore_total": breakdown.restore_total,
        "other_cycles": breakdown.other_cycles,
        "total_cycles": breakdown.total_cycles,
    }


def _validate_table5(raw):
    params = _require_mapping(raw, "table5")
    _reject_unknown(params, "table5", ("transactions",))
    return {
        "transactions": _positive_int(
            params.get("transactions"),
            "table5",
            "transactions",
            cells.DEFAULT_RR_TRANSACTIONS,
        )
    }


def _assemble_table5(results, params):
    return {
        config: result.as_dict()
        for config, result in merge.table5_results(
            results, params["transactions"]
        ).items()
    }


def _validate_figure4(raw):
    params = _require_mapping(raw, "figure4")
    _reject_unknown(params, "figure4", ("keys", "irq_vcpus"))
    return {
        "keys": _platform_keys(params.get("keys"), "figure4", PLATFORM_ORDER, ALL_KEYS),
        "irq_vcpus": _positive_int(params.get("irq_vcpus"), "figure4", "irq_vcpus", 1),
    }


def _assemble_figure4(results, params):
    grid = merge.figure4_grid(results, params["keys"], params["irq_vcpus"])
    return {
        workload: {key: dataclasses.asdict(result) for key, result in row.items()}
        for workload, row in grid.items()
    }


def _validate_ablation(raw):
    params = _require_mapping(raw, "ablation")
    _reject_unknown(params, "ablation", ("keys", "workloads"))
    return {
        "keys": _platform_keys(
            params.get("keys"), "ablation", cells.ABLATION_KEYS, ALL_KEYS
        ),
        "workloads": _workloads(params.get("workloads"), "ablation"),
    }


def _assemble_ablation(results, params):
    grid = merge.ablation_grid(results, params["keys"], params["workloads"])
    return {
        "%s/%s" % (key, workload): dict(
            dataclasses.asdict(point), improvement_pct=point.improvement_pct
        )
        for (key, workload), point in grid.items()
    }


def _assemble_vhe(results, _params):
    comparison = merge.vhe_comparison(results)
    return {
        "microbench": {
            name: {"split_cycles": split, "vhe_cycles": vhe, "speedup": speedup}
            for name, (split, vhe, speedup) in comparison.microbench.items()
        },
        "applications": {
            name: {
                "split_normalized": split,
                "vhe_normalized": vhe,
                "improvement_pts": pts,
            }
            for name, (split, vhe, pts) in comparison.applications.items()
        },
    }


def _validate_oversub(raw):
    params = _require_mapping(raw, "oversub")
    _reject_unknown(params, "oversub", ("keys", "timeslices_us"))
    return {
        "keys": _platform_keys(params.get("keys"), "oversub", PLATFORM_ORDER, ALL_KEYS),
        "timeslices_us": _timeslices(params.get("timeslices_us"), "oversub"),
    }


def _assemble_oversub(results, params):
    return merge.oversubscription_grid(
        results, params["keys"], params["timeslices_us"]
    )


def _validate_report(raw):
    params = _require_mapping(raw, "report")
    _reject_unknown(params, "report", ("transactions",))
    return {
        "transactions": _positive_int(
            params.get("transactions"),
            "report",
            "transactions",
            cells.DEFAULT_RR_TRANSACTIONS,
        )
    }


def _assemble_report(results, params):
    return {"text": merge.full_report_text(results, params["transactions"])}


TARGETS = OrderedDict(
    (target.name, target)
    for target in (
        Target(
            "micro",
            "one platform's microbenchmark column (Table II slice)",
            _validate_micro,
            lambda params: [cells.micro(params["key"])],
            _assemble_micro,
            (("key", "platform key (default kvm-arm)"),),
        ),
        Target(
            "table2",
            "microbenchmarks across platforms (Table II)",
            _validate_table2,
            lambda params: cells.table2_cells(params["keys"]),
            _assemble_table2,
            (("keys", "platform keys (default the four paper platforms)"),),
        ),
        Target(
            "table3",
            "KVM ARM hypercall save/restore attribution (Table III)",
            lambda raw: _no_params(raw, "table3"),
            lambda params: cells.table3_cells(),
            _assemble_table3,
        ),
        Target(
            "table5",
            "TCP_RR latency decomposition (Table V)",
            _validate_table5,
            lambda params: cells.table5_cells(params["transactions"]),
            _assemble_table5,
            (("transactions", "TCP_RR transactions per cell (default 40)"),),
        ),
        Target(
            "figure4",
            "application benchmark grid (Figure 4)",
            _validate_figure4,
            lambda params: cells.figure4_cells(params["keys"], params["irq_vcpus"]),
            _assemble_figure4,
            (
                ("keys", "platform keys (default the four paper platforms)"),
                ("irq_vcpus", "VCPUs receiving device IRQs (default 1)"),
            ),
        ),
        Target(
            "ablation",
            "Section V IRQ-distribution ablation grid",
            _validate_ablation,
            lambda params: cells.ablation_cells(
                params["keys"], params["workloads"]
            ),
            _assemble_ablation,
            (
                ("keys", "platform keys (default kvm-arm, xen-arm)"),
                ("workloads", "workload mix (default Apache, Memcached)"),
            ),
        ),
        Target(
            "vhe",
            "Section VI split-mode vs VHE comparison",
            lambda raw: _no_params(raw, "vhe"),
            lambda params: cells.vhe_cells(),
            _assemble_vhe,
        ),
        Target(
            "oversub",
            "oversubscription timeslice sweep",
            _validate_oversub,
            lambda params: cells.oversubscription_cells(
                params["keys"], params["timeslices_us"]
            ),
            _assemble_oversub,
            (
                ("keys", "platform keys (default the four paper platforms)"),
                ("timeslices_us", "timeslice sweep points (default paper grid)"),
            ),
        ),
        Target(
            "report",
            "the whole rendered evaluation section",
            _validate_report,
            lambda params: cells.full_report_cells(params["transactions"]),
            _assemble_report,
            (("transactions", "TCP_RR transactions per Table V cell (default 40)"),),
        ),
    )
)

#: request-level execution knobs — part of the request, never the query key
REQUEST_OPTIONS = ("budget_cells", "deadline_ms")


def describe_targets():
    """``GET /v1/targets`` payload: the queryable vocabulary."""
    return [
        {
            "name": target.name,
            "description": target.description,
            "params": [
                {"name": name, "help": help_text}
                for name, help_text in target.param_help
            ],
        }
        for target in TARGETS.values()
    ]


def canonicalize(payload):
    """Validate one request body; returns ``(Query, options)``.

    ``options`` carries the request-level execution knobs
    (``budget_cells``, ``deadline_ms``) — they shape *how* the query
    runs, not *what* it computes, so they stay out of the query key and
    two requests differing only in a deadline still coalesce.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError("query must be a JSON object, got %r" % (payload,))
    known = ("target", "params", "costs") + REQUEST_OPTIONS
    _reject_unknown(payload, "query", known)
    target_name = payload.get("target")
    if not isinstance(target_name, str) or not target_name:
        raise ConfigurationError("query is missing a 'target' name")
    target = TARGETS.get(target_name)
    if target is None:
        raise ConfigurationError(
            "unknown target %r (expected one of %s)"
            % (target_name, list(TARGETS))
        )
    params = target.validate(payload.get("params"))
    costs = hw_costs.validate_overrides(payload.get("costs") or {})
    options = {
        "budget_cells": _option_int(payload, "budget_cells"),
        "deadline_ms": _option_number(payload, "deadline_ms"),
    }
    return Query(target_name, params, costs), options


def _option_int(payload, name):
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ConfigurationError(
            "%r must be an integer >= 1, got %r" % (name, value)
        )
    return value


def _option_number(payload, name):
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        raise ConfigurationError("%r must be a number > 0, got %r" % (name, value))
    return float(value)


def plan(query):
    """``(base_specs, exec_specs)`` for one canonical query.

    Both lists are deduplicated and pairwise aligned: ``exec_specs[i]``
    is ``base_specs[i]`` with the query's cost overrides embedded (a
    no-op without overrides).  The broker runs the exec identities; the
    merge layer consumes results re-keyed back to base identities.
    """
    base = cells.dedupe(TARGETS[query.target].plan(query.params))
    execs = [cells.with_cost_overrides(spec, query.costs) for spec in base]
    return base, execs


def rekey(results, base_specs, exec_specs):
    """Map exec-identity results back onto base cell ids for the merge."""
    return {
        base.id: results[exec_spec.id]
        for base, exec_spec in zip(base_specs, exec_specs)
    }


def assemble(query, results_by_base_id):
    """The target's deterministic ``*_data`` shape from merged payloads."""
    return TARGETS[query.target].assemble(results_by_base_id, query.params)


def success_document(query, result, stats):
    """The success envelope; ``result_sha256`` is the differential gate."""
    return {
        "schema": protocol.SCHEMA,
        "ok": True,
        "partial": False,
        "target": query.target,
        "params": query.params,
        "costs": query.costs,
        "query_key": query.key,
        "result": result,
        "result_sha256": resilience.payload_digest(result),
        "stats": stats,
    }


def run_direct(query, jobs=1, cache=None, policy=None):
    """The differential twin: the same query straight through the runner.

    Returns ``(result, stats)`` with the same ``result`` object — and
    therefore the same ``payload_digest`` — a served query produces.
    Used by ``python -m repro query --direct`` and the differential
    harness; failures raise
    :class:`~repro.runner.resilience.CellFailure` like any direct run.
    """
    base, execs = plan(query)
    outcome = pool.run_cells_outcome(execs, jobs=jobs, cache=cache, policy=policy)
    if outcome.failures:
        raise resilience.CellFailure(outcome.failures)
    result = assemble(query, rekey(outcome.results, base, execs))
    sources = [outcome.results[spec.id].source for spec in execs]
    stats = {
        "cells": len(execs),
        "coalesced": 0,
        "cached": sum(1 for source in sources if source == "cache"),
        "simulated": sum(1 for source in sources if source == "run"),
    }
    return result, stats


def direct_document(target, params=None, costs=None, jobs=1, cache=None):
    """A full response envelope computed without any server in the path."""
    query, _options = canonicalize(
        {"target": target, "params": params or {}, "costs": costs or {}}
    )
    result, stats = run_direct(query, jobs=jobs, cache=cache)
    return success_document(query, result, stats)
