"""Service wire format: schemas, error documents, and HTTP framing.

Everything on the wire is JSON over a minimal hand-rolled HTTP/1.1
subset (stdlib only — ``asyncio`` streams on the server, ``http.client``
or ``asyncio`` streams on the clients).  Responses always carry
``Connection: close`` and an exact ``Content-Length``, so a client can
read to the header's byte count and never needs chunked decoding.

The error document is *stable by contract* (the overload and chaos
tests assert its exact shape): every non-2xx response is

    {"schema": "repro-service/1", "ok": false, "partial": false,
     "error": {"code": "<one of ERROR_CODES>", "message": "...", ...}}

``partial`` is always ``false`` on errors — a rejected or failed query
never executed half-way from the client's point of view; admission
rejects happen before any cell is enqueued, and cell failures surface
only after the whole batch settled.
"""

import json

from repro.errors import ReproError

#: response envelope schema (success and error documents)
SCHEMA = "repro-service/1"
#: ``GET /v1/metrics`` document schema
METRICS_SCHEMA = "repro-service-metrics/1"
#: ``python -m repro serve-bench`` document schema
BENCH_SCHEMA = "repro-service-bench/1"

#: the default ``python -m repro serve`` port (``REPRO_SERVE_PORT``)
DEFAULT_PORT = 8123

# --- error vocabulary ----------------------------------------------------

BAD_REQUEST = "bad-request"
BUDGET_EXCEEDED = "budget-exceeded"
NOT_FOUND = "not-found"
CELL_FAILED = "cell-failed"
INTERNAL = "internal"
OVERLOADED = "overloaded"
SHUTTING_DOWN = "shutting-down"
DEADLINE_EXCEEDED = "deadline-exceeded"

#: every error code the service may emit, with its HTTP status
ERROR_STATUS = {
    BAD_REQUEST: 400,
    BUDGET_EXCEEDED: 400,
    NOT_FOUND: 404,
    CELL_FAILED: 500,
    INTERNAL: 500,
    OVERLOADED: 503,
    SHUTTING_DOWN: 503,
    DEADLINE_EXCEEDED: 504,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def canonical_json(value):
    """Compact sorted-keys JSON — the query-key serialization."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def error_document(code, message, **details):
    """The stable error envelope (see module docstring)."""
    error = {"code": code, "message": message}
    error.update(details)
    return {"schema": SCHEMA, "ok": False, "partial": False, "error": error}


def error_status(code):
    return ERROR_STATUS.get(code, 500)


# --- HTTP framing --------------------------------------------------------

#: request-line / header-line byte budget (headers past this are hostile)
MAX_LINE = 8192
MAX_HEADERS = 64
#: request body budget — a full cost-override document is a few KB
MAX_BODY = 8 * 1024 * 1024


class ProtocolError(ReproError):
    """A malformed or over-budget HTTP request (always a 400)."""


async def read_request(reader):
    """Parse one HTTP request from an asyncio stream reader.

    Returns ``(method, path, headers, body)`` with lower-cased header
    names; raises :class:`ProtocolError` on anything malformed,
    truncated, or over budget.  ``None`` is returned for a connection
    that closed without sending anything (a health prober's TCP ping).
    """
    line = await reader.readline()
    if not line.strip():
        return None
    if len(line) > MAX_LINE:
        raise ProtocolError("request line exceeds %d bytes" % MAX_LINE)
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError("malformed request line")
    method, path = parts[0].upper(), parts[1]
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if len(line) > MAX_LINE:
            raise ProtocolError("header line exceeds %d bytes" % MAX_LINE)
        if len(headers) >= MAX_HEADERS:
            raise ProtocolError("more than %d headers" % MAX_HEADERS)
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError("malformed header line %r" % line)
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError("content-length %r is not an integer" % length_text)
    if length < 0 or length > MAX_BODY:
        raise ProtocolError("content-length %d out of range" % length)
    if not length:
        return method, path, headers, b""
    try:
        body = await reader.readexactly(length)
    except EOFError:
        raise ProtocolError("request body truncated")
    return method, path, headers, body


def format_response(status, document, headers=None):
    """One complete HTTP response (headers + JSON body) as bytes.

    The body is **not** key-sorted: a success document's ``result``
    member must keep its assembly insertion order, because
    ``result_sha256`` is the digest of exactly those bytes re-encoded
    canonically (``repro.runner.resilience.payload_digest``).

    ``headers`` adds extra response headers (e.g. ``Retry-After`` on the
    shed/drain 503s) — names and values must be latin-1 safe.
    """
    body = (json.dumps(document) + "\n").encode("utf-8")
    extra = ""
    for name, value in (headers or {}).items():
        extra += "%s: %s\r\n" % (name, value)
    head = (
        "HTTP/1.1 %d %s\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: %d\r\n"
        "%s"
        "Connection: close\r\n"
        "\r\n" % (status, _REASONS.get(status, "OK"), len(body), extra)
    )
    return head.encode("latin-1") + body


def format_request(method, path, host, payload=None):
    """One complete HTTP request as bytes (the async client's framing)."""
    body = b""
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
    head = (
        "%s %s HTTP/1.1\r\n"
        "Host: %s\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: %d\r\n"
        "Connection: close\r\n"
        "\r\n" % (method, path, host, len(body))
    )
    return head.encode("latin-1") + body


async def read_response(reader):
    """Parse one HTTP response from an asyncio stream; returns
    ``(status, document)``."""
    line = await reader.readline()
    parts = line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ProtocolError("malformed status line %r" % line)
    try:
        status = int(parts[1])
    except ValueError:
        raise ProtocolError("malformed status code %r" % parts[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length")
    if length_text is not None:
        body = await reader.readexactly(int(length_text))
    else:
        body = await reader.read()
    document = json.loads(body.decode("utf-8")) if body.strip() else {}
    return status, document
