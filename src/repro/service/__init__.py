"""Simulation-as-a-service: the async what-if query server.

The service layer turns the cell runner into a long-lived daemon:
clients POST what-if queries — a named report target, validated
parameters, and an optional cost-override document — to an asyncio
JSON-over-HTTP server (``python -m repro serve``), and get back the
exact bytes the direct PR-3 runner path would have produced for the
same request (the differential harness in
``tests/test_service_differential.py`` holds the service to that).

Module map:

* :mod:`repro.service.protocol` — wire format: schemas, the stable
  error document, and the hand-rolled HTTP framing (stdlib only);
* :mod:`repro.service.queries` — the target registry: canonicalization,
  query keys, cell planning, and deterministic reassembly;
* :mod:`repro.service.broker` — the coalescing execution core: one
  worker thread batching deduplicated cells through the resilient
  runner pool, with an in-flight future registry so identical
  concurrent queries simulate each cell exactly once;
* :mod:`repro.service.server` — admission control, budgets, deadlines,
  and the asyncio endpoint itself;
* :mod:`repro.service.client` — sync and async clients (the CLI's
  ``python -m repro query`` rides the sync one);
* :mod:`repro.service.loadgen` — the serversim-style meta-benchmark
  behind ``python -m repro serve-bench``.
"""

from repro.service.broker import SimulationBroker
from repro.service.client import AsyncServiceClient, ServiceClient, ServiceError
from repro.service.server import ServiceConfig, ServiceServer, start_in_thread

__all__ = [
    "AsyncServiceClient",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "SimulationBroker",
    "start_in_thread",
]
