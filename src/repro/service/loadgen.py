"""The service meta-benchmark: replay a serversim-style load profile.

``python -m repro serve-bench`` boots an in-process server and drives
it the way :mod:`repro.core.serversim` models a server workload: a
fixed population of closed-loop clients, each issuing its next request
the moment the previous response lands (think time zero).  Three phases
exercise the three service behaviors worth measuring:

* **sweep** — one client walks distinct targets back to back (the
  no-contention baseline; every cell misses the in-flight registry);
* **burst** — every client issues the *identical* query while the
  broker is held, so the whole burst coalesces onto one in-flight cell
  set and exactly one batch simulates it (the coalescing headline);
* **mix** — clients issue *distinct* targets whose plans overlap
  (table2 / vhe / micro share their KVM ARM cells), measuring
  cross-query deduplication under concurrency.

The emitted document (schema ``repro-service-bench/1``) carries
per-phase wall time and aggregated stats plus the server's full metric
snapshot — wall clocks are legitimate here (this measures the service,
never the model; cell payloads stay byte-deterministic throughout).
"""

import asyncio
import json
import time

from repro.service import protocol
from repro.service.client import AsyncServiceClient
from repro.service.server import ServiceConfig, start_in_thread

DEFAULT_CLIENTS = 4
DEFAULT_DOCUMENT_PATH = "SERVICE_bench.json"

#: the sweep phase's request walk (target, params)
SWEEP_QUERIES = (
    ("micro", {"key": "kvm-arm"}),
    ("micro", {"key": "xen-arm"}),
    ("table3", {}),
    ("table2", {}),
    ("vhe", {}),
)

#: the mix phase's overlapping targets — table2/vhe/micro share cells
MIX_QUERIES = (
    ("table2", {}),
    ("vhe", {}),
    ("micro", {"key": "kvm-arm"}),
    ("micro", {"key": "kvm-x86"}),
)


def _aggregate(documents):
    totals = {"cells": 0, "coalesced": 0, "cached": 0, "simulated": 0}
    for document in documents:
        for name in totals:
            totals[name] += document["stats"][name]
    return totals


async def _run_sweep(client):
    documents = []
    for target, params in SWEEP_QUERIES:
        documents.append(await client.query(target, params))
    return documents


async def _run_burst(client, clients, broker, metrics):
    # Hold the broker so every client's submission lands before any
    # batch runs: the burst coalesces deterministically, not by luck.
    requested_before = metrics.counter("service.cells.requested").value
    target_requested = requested_before + clients * 4  # table2 = 4 cells
    broker.hold()
    try:
        tasks = [
            asyncio.ensure_future(client.query("table2", {}))
            for _client_index in range(clients)
        ]
        # every client has submitted (and all but the first coalesced)
        # once the requested counter covers the whole burst
        deadline = time.monotonic() + 30.0
        while (
            metrics.counter("service.cells.requested").value < target_requested
            and time.monotonic() < deadline
        ):
            await asyncio.sleep(0.005)
    finally:
        broker.release()
    return await asyncio.gather(*tasks)


async def _run_mix(client, clients):
    queries = [MIX_QUERIES[index % len(MIX_QUERIES)] for index in range(clients)]
    tasks = [
        asyncio.ensure_future(client.query(target, params))
        for target, params in queries
    ]
    return await asyncio.gather(*tasks)


def run_profile(clients=DEFAULT_CLIENTS, config=None):
    """Run the three-phase profile; returns the bench document."""
    if config is None:
        config = ServiceConfig(port=0, admit_max=max(16, clients * 2))
    handle = start_in_thread(config=config)
    phases = []
    try:
        client = AsyncServiceClient(port=handle.port)

        def run_phase(name, coroutine):
            start = time.perf_counter()
            documents = asyncio.run(coroutine)
            wall_ms = (time.perf_counter() - start) * 1000.0
            phases.append(
                {
                    "name": name,
                    "queries": len(documents),
                    "ok": all(document.get("ok") for document in documents),
                    "wall_ms": wall_ms,
                    "stats": _aggregate(documents),
                }
            )
            return documents

        run_phase("sweep", _run_sweep(client))
        run_phase(
            "burst", _run_burst(client, clients, handle.broker, handle.metrics)
        )
        run_phase("mix", _run_mix(client, clients))
        snapshot = handle.metrics.snapshot()
    finally:
        handle.close()
    return {
        "schema": protocol.BENCH_SCHEMA,
        "clients": clients,
        "phases": phases,
        "totals": _aggregate_phases(phases),
        "metrics": snapshot,
    }


def _aggregate_phases(phases):
    totals = {"queries": 0, "cells": 0, "coalesced": 0, "cached": 0, "simulated": 0}
    for phase in phases:
        totals["queries"] += phase["queries"]
        for name in ("cells", "coalesced", "cached", "simulated"):
            totals[name] += phase["stats"][name]
    return totals


def summary_text(document):
    lines = [
        "service bench: %d closed-loop clients, %d queries"
        % (document["clients"], document["totals"]["queries"])
    ]
    for phase in document["phases"]:
        stats = phase["stats"]
        lines.append(
            "  %-6s %2d queries in %7.1f ms  (cells=%d coalesced=%d "
            "cached=%d simulated=%d)"
            % (
                phase["name"],
                phase["queries"],
                phase["wall_ms"],
                stats["cells"],
                stats["coalesced"],
                stats["cached"],
                stats["simulated"],
            )
        )
    return "\n".join(lines)


def write_document(path, document):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
