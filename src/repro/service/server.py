"""The asyncio query endpoint: admission, budgets, deadlines, routing.

``python -m repro serve`` binds a JSON-over-HTTP server
(``asyncio.start_server``; no frameworks, no dependencies) with four
routes:

* ``GET  /healthz``     — liveness plus the admission gauge;
* ``GET  /v1/targets``  — the queryable vocabulary;
* ``GET  /v1/metrics``  — the shared obs registry as a document;
* ``POST /v1/query``    — the what-if query path.

The admission model is intentionally simple and deterministic: at most
``admit_max`` queries may be *in residence* (admitted and not yet
answered) at once, and a request arriving at capacity is shed
immediately with the stable ``overloaded`` error — never queued, never
partially executed, so shedding order is exactly arrival order at
capacity.  Budgets reject a query whose *deduplicated* cell plan
exceeds the per-query cell budget before anything is enqueued.
Deadlines bound only the requester's wait: the underlying batch keeps
running under ``asyncio.shield`` so coalesced siblings of a timed-out
query still get their results (a deadline is the client giving up, not
the work being wrong).
"""

import asyncio
import dataclasses
import json
import os
import signal
import sys
import threading

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.runner import resilience
from repro.runner.cache import ResultCache
from repro.service import broker as broker_mod
from repro.service import protocol, queries

ENV_HOST = "REPRO_SERVE_HOST"
ENV_PORT = "REPRO_SERVE_PORT"
ENV_ADMIT_MAX = "REPRO_ADMIT_MAX"
ENV_QUERY_BUDGET = "REPRO_QUERY_BUDGET"
ENV_DRAIN_TIMEOUT = "REPRO_DRAIN_TIMEOUT"

DEFAULT_HOST = "127.0.0.1"
DEFAULT_ADMIT_MAX = 64
DEFAULT_DRAIN_TIMEOUT = 30.0

#: the Retry-After we advise on shed/drain 503s (seconds)
RETRY_AFTER_S = 1

#: server-owned instruments (pre-registered; see broker.BROKER_COUNTERS)
SERVER_COUNTERS = (
    "service.queries",
    "service.queries.ok",
    "service.queries.errors",
    "service.admit.rejects",
    "service.budget.rejects",
    "service.deadline.expired",
    "service.coalesce.queries",
)


def _env_int(environ, name, default, minimum):
    text = environ.get(name)
    if text is None or text == "":
        return default
    try:
        value = int(text)
    except ValueError:
        raise ConfigurationError("%s=%r is not an integer" % (name, text))
    if value < minimum:
        raise ConfigurationError(
            "%s must be >= %d, got %d" % (name, minimum, value)
        )
    return value


@dataclasses.dataclass
class ServiceConfig:
    """Everything ``serve`` needs, from flags or ``REPRO_*`` knobs."""

    host: str = DEFAULT_HOST
    port: int = protocol.DEFAULT_PORT
    admit_max: int = DEFAULT_ADMIT_MAX
    query_budget: int = 0  # max cells per query; 0 = unlimited
    jobs: int = 1
    cache_dir: str = None
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT

    @classmethod
    def from_env(cls, environ=None, **overrides):
        environ = os.environ if environ is None else environ
        drain_text = environ.get(ENV_DRAIN_TIMEOUT)
        try:
            drain_timeout = (
                float(drain_text) if drain_text else DEFAULT_DRAIN_TIMEOUT
            )
        except ValueError:
            raise ConfigurationError(
                "%s=%r is not a number" % (ENV_DRAIN_TIMEOUT, drain_text)
            )
        config = cls(
            host=environ.get(ENV_HOST) or DEFAULT_HOST,
            port=_env_int(environ, ENV_PORT, protocol.DEFAULT_PORT, 0),
            admit_max=_env_int(environ, ENV_ADMIT_MAX, DEFAULT_ADMIT_MAX, 1),
            query_budget=_env_int(environ, ENV_QUERY_BUDGET, 0, 0),
            jobs=resilience.validate_jobs(
                environ.get(resilience.ENV_JOBS) or "1"
            ),
            cache_dir=environ.get("REPRO_CACHE_DIR") or None,
            drain_timeout=drain_timeout,
        )
        for name, value in overrides.items():
            if value is not None:
                setattr(config, name, value)
        return config


class ServiceServer:
    """One service instance: config + broker + the asyncio endpoint."""

    def __init__(self, config=None, broker=None, metrics=None):
        self.config = config if config is not None else ServiceConfig.from_env()
        if broker is not None:
            self.broker = broker
            self.metrics = metrics if metrics is not None else broker.metrics
        else:
            self.metrics = metrics if metrics is not None else MetricsRegistry()
            cache = (
                ResultCache(self.config.cache_dir)
                if self.config.cache_dir
                else None
            )
            self.broker = broker_mod.SimulationBroker(
                jobs=self.config.jobs, cache=cache, metrics=self.metrics
            )
        for name in SERVER_COUNTERS:
            self.metrics.counter(name)
        self.metrics.gauge("service.admit.active")
        self._active = 0  # queries admitted and not yet answered
        self._draining = False  # set once; new queries 503 shutting-down
        self._server = None
        self.port = None

    @property
    def active(self):
        return self._active

    @property
    def draining(self):
        return self._draining

    # --- lifecycle --------------------------------------------------------

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def begin_drain(self):
        """Flip admission off: every new query 503s ``shutting-down``.

        Already-admitted queries (and the broker batch carrying them)
        keep running to completion — draining sheds *future* work only.
        """
        self._draining = True

    async def drain(self, timeout=None):
        """Wait for residence to empty; True if fully drained in time.

        The drain condition is "no admitted query is still waiting and
        the broker's in-flight registry is empty" — i.e. zero queries
        can be dropped by stopping now.
        """
        self.begin_drain()
        if timeout is None:
            timeout = self.config.drain_timeout
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while self._active > 0 or self.broker.inflight_count() > 0:
            if loop.time() >= deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    # --- connection handling ----------------------------------------------

    async def _handle(self, reader, writer):
        try:
            try:
                request = await protocol.read_request(reader)
            except protocol.ProtocolError as exc:
                status = protocol.error_status(protocol.BAD_REQUEST)
                document = protocol.error_document(protocol.BAD_REQUEST, str(exc))
            else:
                if request is None:  # bare TCP ping (health probes)
                    return
                try:
                    status, document = await self._route(*request)
                except Exception as exc:  # never leak a traceback as a hang
                    status = protocol.error_status(protocol.INTERNAL)
                    document = protocol.error_document(
                        protocol.INTERNAL,
                        "%s: %s" % (type(exc).__name__, exc),
                    )
            headers = None
            if isinstance(document, dict):
                retry_after = (document.get("error") or {}).get("retry_after")
                if retry_after is not None:
                    headers = {"Retry-After": str(retry_after)}
            writer.write(protocol.format_response(status, document, headers))
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, method, path, _headers, body):
        if path == "/healthz" and method == "GET":
            return 200, {
                "schema": protocol.SCHEMA,
                "ok": True,
                "status": "draining" if self._draining else "ok",
                "active": self._active,
                "admit_max": self.config.admit_max,
            }
        if path == "/v1/metrics" and method == "GET":
            return 200, {
                "schema": protocol.METRICS_SCHEMA,
                "ok": True,
                "metrics": self.metrics.snapshot(),
            }
        if path == "/v1/targets" and method == "GET":
            return 200, {
                "schema": protocol.SCHEMA,
                "ok": True,
                "targets": queries.describe_targets(),
            }
        if path == "/v1/query":
            if method != "POST":
                return 400, protocol.error_document(
                    protocol.BAD_REQUEST, "/v1/query requires POST"
                )
            return await self._query(body)
        return 404, protocol.error_document(
            protocol.NOT_FOUND, "no route %s %s" % (method, path)
        )

    # --- the query path ---------------------------------------------------

    async def _query(self, body):
        self.metrics.counter("service.queries").inc()
        if self._draining:
            # drain phase: shed before admission, advise a retry — the
            # peer instance (or the restarted one) will take it
            self.metrics.counter("service.admit.rejects").inc()
            return 503, protocol.error_document(
                protocol.SHUTTING_DOWN,
                "server is draining for shutdown",
                retry_after=RETRY_AFTER_S,
            )
        if self._active >= self.config.admit_max:
            # shed-on-overload: reject *before* canonicalization so a
            # shed request costs no planning and enqueues nothing
            self.metrics.counter("service.admit.rejects").inc()
            return 503, protocol.error_document(
                protocol.OVERLOADED,
                "admission queue at capacity (%d active)" % self._active,
                active=self._active,
                admit_max=self.config.admit_max,
                retry_after=RETRY_AFTER_S,
            )
        self._active += 1
        self.metrics.gauge("service.admit.active").set(self._active)
        try:
            status, document = await self._admitted(body)
        finally:
            self._active -= 1
            self.metrics.gauge("service.admit.active").set(self._active)
        if document.get("ok"):
            self.metrics.counter("service.queries.ok").inc()
        else:
            self.metrics.counter("service.queries.errors").inc()
        return status, document

    async def _admitted(self, body):
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            return 400, protocol.error_document(
                protocol.BAD_REQUEST, "request body is not valid JSON"
            )
        try:
            query, options = queries.canonicalize(payload)
        except ConfigurationError as exc:
            return 400, protocol.error_document(protocol.BAD_REQUEST, str(exc))
        base_specs, exec_specs = queries.plan(query)

        budget = self.config.query_budget
        if options["budget_cells"] is not None:
            budget = (
                min(budget, options["budget_cells"])
                if budget
                else options["budget_cells"]
            )
        if budget and len(exec_specs) > budget:
            self.metrics.counter("service.budget.rejects").inc()
            return 400, protocol.error_document(
                protocol.BUDGET_EXCEEDED,
                "query plans %d cells, budget is %d" % (len(exec_specs), budget),
                cells=len(exec_specs),
                budget=budget,
                query_key=query.key,
            )

        try:
            futures, stats = self.broker.submit(exec_specs)
        except broker_mod.BrokerClosed as exc:
            return 503, protocol.error_document(protocol.SHUTTING_DOWN, str(exc))
        if stats["coalesced"]:
            self.metrics.counter("service.coalesce.queries").inc()

        gather = asyncio.gather(
            *[asyncio.wrap_future(future) for future in futures.values()]
        )
        deadline_ms = options["deadline_ms"]
        if deadline_ms is not None:
            try:
                verdicts = await asyncio.wait_for(
                    asyncio.shield(gather), deadline_ms / 1000.0
                )
            except asyncio.TimeoutError:
                self.metrics.counter("service.deadline.expired").inc()
                # the batch keeps running for coalesced siblings; swallow
                # its eventual value so nothing warns about an orphan
                gather.add_done_callback(_discard_result)
                return 504, protocol.error_document(
                    protocol.DEADLINE_EXCEEDED,
                    "query exceeded its %.0fms deadline" % deadline_ms,
                    deadline_ms=deadline_ms,
                    query_key=query.key,
                )
        else:
            verdicts = await gather

        results = {}
        failed = []
        for cell_id, (kind, value) in zip(futures.keys(), verdicts):
            if kind == "ok":
                results[cell_id] = value
            else:
                failed.append(value)
        if failed:
            return 500, protocol.error_document(
                protocol.CELL_FAILED,
                "%d cell(s) exhausted the retry ladder" % len(failed),
                failed_cells=failed,
                query_key=query.key,
            )
        result = queries.assemble(
            query, queries.rekey(results, base_specs, exec_specs)
        )
        owned = set(stats["owned"])
        sources = [results[cell_id].source for cell_id in owned]
        document = queries.success_document(
            query,
            result,
            {
                "cells": stats["cells"],
                "coalesced": stats["coalesced"],
                "cached": sum(1 for source in sources if source == "cache"),
                "simulated": sum(1 for source in sources if source == "run"),
            },
        )
        return 200, document


def _discard_result(task):
    if not task.cancelled():
        task.exception()  # verdicts are values; this only clears the flag


# --- running it ----------------------------------------------------------


def run_forever(server, announce=None):
    """Foreground mode (``python -m repro serve``): serve until signaled.

    SIGTERM and SIGINT both trigger the graceful drain state machine:

    1. **draining** — admission flips off (new queries shed with 503
       ``shutting-down`` + ``Retry-After``) while admitted queries and
       the broker's in-flight batch run to completion;
    2. **drained** — residence hit zero (or ``drain_timeout`` expired —
       logged, never hung);
    3. **stopped** — listener closed, broker closed, and a final metrics
       snapshot flushed to stderr.

    Always returns 0 on a signaled shutdown: a drain that ran out of
    time is an operational warning, not a failed process.
    """

    async def body():
        port = await server.start()
        if announce is not None:
            announce(server.config.host, port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        handled = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                handled.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or exotic platform: Ctrl-C still works
        try:
            await stop.wait()
            print("draining (max %.0fs)" % server.config.drain_timeout, file=sys.stderr)
            drained = await server.drain()
            if not drained:
                print(
                    "drain timeout after %.0fs: %d query(ies) still active"
                    % (server.config.drain_timeout, server.active),
                    file=sys.stderr,
                )
        finally:
            for signum in handled:
                loop.remove_signal_handler(signum)
            await server.stop()

    try:
        asyncio.run(body())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.broker.close()
        # final metrics snapshot: the run's counters survive the process
        print(
            json.dumps(
                {"event": "final-metrics", "metrics": server.metrics.snapshot()}
            ),
            file=sys.stderr,
        )
        sys.stderr.flush()
    return 0


class ServerHandle:
    """A running in-thread server (tests, loadgen, notebooks)."""

    def __init__(self, server, loop, stop_event, thread):
        self.server = server
        self._loop = loop
        self._stop = stop_event
        self._thread = thread

    @property
    def port(self):
        return self.server.port

    @property
    def broker(self):
        return self.server.broker

    @property
    def metrics(self):
        return self.server.metrics

    def begin_drain(self):
        """Flip the server into draining (thread-safe: it's one flag)."""
        self.server.begin_drain()

    def _assert_off_loop(self, what):
        """Refuse to block *on* the loop this handle manages.

        ``drain``/``close`` park the calling thread on a future the
        server loop must fulfil — called from that same loop they would
        deadlock until the timeout.  The lint-level counterpart is
        CON001; this runtime guard turns the latent deadlock into an
        immediate, actionable error.
        """
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            return  # no loop on this thread: the intended call shape
        if running is self._loop:
            raise RuntimeError(
                "ServerHandle.%s called from the server's own event loop; "
                "it blocks on loop-driven work and would deadlock — call "
                "it from another thread (or await server.%s directly)"
                % (what, what)
            )

    def drain(self, timeout=None):
        """Run the drain coroutine on the server loop; True if drained.

        Blocking by design: the caller-side of a cross-thread handoff.
        """
        self._assert_off_loop("drain")
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(timeout), self._loop
        )
        budget = timeout if timeout is not None else self.server.config.drain_timeout
        # repro-lint: ignore[CON001] — proven off-loop: the guard above
        # raises when invoked from this server's loop thread, and the
        # event-loop context here is the resolver's documented fuzzy
        # `drain` name collision with the async ServiceServer.drain.
        return future.result(budget + 30.0)

    def close(self):
        self._assert_off_loop("close")
        try:
            self._loop.call_soon_threadsafe(self._stop.set)
        except RuntimeError:
            pass  # loop already gone
        # repro-lint: ignore[CON001] — proven off-loop (guard above);
        # loop reachability is the fuzzy `close` collision with the
        # stream writer's close() in ServiceServer._handle.
        self._thread.join(30.0)
        self.server.broker.close()

    def __enter__(self):
        return self

    def __exit__(self, *_exc_info):
        self.close()
        return False


def start_in_thread(config=None, broker=None, metrics=None):
    """Start a server on a daemon thread; returns a :class:`ServerHandle`.

    The default config binds an ephemeral port on localhost — read it
    off ``handle.port``.
    """
    if config is None:
        config = ServiceConfig(port=0)
    server = ServiceServer(config=config, broker=broker, metrics=metrics)
    started = threading.Event()
    box = {}

    def main():
        async def body():
            box["loop"] = asyncio.get_running_loop()
            box["stop"] = asyncio.Event()
            await server.start()
            started.set()
            try:
                await box["stop"].wait()
            finally:
                await server.stop()

        try:
            asyncio.run(body())
        except Exception as exc:
            box["error"] = exc
            started.set()

    thread = threading.Thread(target=main, name="repro-service", daemon=True)
    thread.start()
    started.wait(30.0)
    if "error" in box:
        raise box["error"]
    return ServerHandle(server, box["loop"], box["stop"], thread)
