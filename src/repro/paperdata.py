"""Published results from the paper, as reference data.

Used only for *validation and reporting* — never as inputs to the
simulation (see the calibration discipline in DESIGN.md: primitives may
come from Table III; composed results must emerge from executed paths).

Sources:
* TABLE2, TABLE3, TABLE5: verbatim from the paper.
* FIGURE4: the paper prints Figure 4 as a bar chart without a data table;
  entries marked ``exact=False`` are digitized/derived from the prose
  (e.g. "35% overhead on Apache", "more than 250% overhead on
  TCP_STREAM") and carry looser tolerances in the benches.
"""

import dataclasses

#: Table II: microbenchmark cycle counts.
TABLE2 = {
    "Hypercall": {"kvm-arm": 6500, "xen-arm": 376, "kvm-x86": 1300, "xen-x86": 1228},
    "Interrupt Controller Trap": {
        "kvm-arm": 7370,
        "xen-arm": 1356,
        "kvm-x86": 2384,
        "xen-x86": 1734,
    },
    "Virtual IPI": {
        "kvm-arm": 11557,
        "xen-arm": 5978,
        "kvm-x86": 5230,
        "xen-x86": 5562,
    },
    "Virtual IRQ Completion": {
        "kvm-arm": 71,
        "xen-arm": 71,
        "kvm-x86": 1556,
        "xen-x86": 1464,
    },
    "VM Switch": {
        "kvm-arm": 10387,
        "xen-arm": 8799,
        "kvm-x86": 4812,
        "xen-x86": 10534,
    },
    "I/O Latency Out": {
        "kvm-arm": 6024,
        "xen-arm": 16491,
        "kvm-x86": 560,
        "xen-x86": 11262,
    },
    "I/O Latency In": {
        "kvm-arm": 13872,
        "xen-arm": 15650,
        "kvm-x86": 18923,
        "xen-x86": 10050,
    },
}

#: Table III: KVM ARM hypercall save/restore breakdown (cycles).
TABLE3 = {
    "GP Regs": {"save": 152, "restore": 184},
    "FP Regs": {"save": 282, "restore": 310},
    "EL1 System Regs": {"save": 230, "restore": 511},
    "VGIC Regs": {"save": 3250, "restore": 181},
    "Timer Regs": {"save": 104, "restore": 106},
    "EL2 Config Regs": {"save": 92, "restore": 107},
    "EL2 Virtual Memory Regs": {"save": 92, "restore": 107},
}

#: Table V: Netperf TCP_RR analysis on ARM (microseconds).
TABLE5 = {
    "Trans/s": {"native": 23911, "kvm": 11591, "xen": 10253},
    "Time/trans": {"native": 41.8, "kvm": 86.3, "xen": 97.5},
    "Overhead": {"native": None, "kvm": 44.5, "xen": 55.7},
    "send to recv": {"native": 29.7, "kvm": 29.8, "xen": 33.9},
    "recv to send": {"native": 14.5, "kvm": 53.0, "xen": 64.6},
    "recv to VM recv": {"native": None, "kvm": 21.1, "xen": 25.9},
    "VM recv to VM send": {"native": None, "kvm": 16.9, "xen": 17.4},
    "VM send to send": {"native": None, "kvm": 15.0, "xen": 21.4},
}


@dataclasses.dataclass
class Figure4Point:
    """One bar of Figure 4: overhead normalized to native (1.0)."""

    value: float
    exact: bool  # True when derivable from the paper's prose/tables


#: Figure 4: normalized application benchmark performance (lower = better,
#: 1.0 = native).  None = the configuration could not run (Apache crashed
#: Dom0 on Xen x86 — a Mellanox driver bug exposed by Xen's I/O model).
FIGURE4 = {
    "Kernbench": {
        "kvm-arm": Figure4Point(1.12, False),
        "xen-arm": Figure4Point(1.07, False),
        "kvm-x86": Figure4Point(1.12, False),
        "xen-x86": Figure4Point(1.05, False),
    },
    "Hackbench": {
        "kvm-arm": Figure4Point(1.15, True),  # Xen beats KVM by ~5% of native
        "xen-arm": Figure4Point(1.10, True),
        # the x86 hypervisors share the VMCS IPI path, so their bars sit
        # close together; both digitizations are low-confidence
        "kvm-x86": Figure4Point(1.15, False),
        "xen-x86": Figure4Point(1.12, False),
    },
    "SPECjvm2008": {
        "kvm-arm": Figure4Point(1.05, False),
        "xen-arm": Figure4Point(1.04, False),
        "kvm-x86": Figure4Point(1.04, False),
        "xen-x86": Figure4Point(1.05, False),
    },
    "TCP_RR": {
        "kvm-arm": Figure4Point(2.06, True),  # 86.3 / 41.8 us (Table V)
        "xen-arm": Figure4Point(2.33, True),  # 97.5 / 41.8 us
        "kvm-x86": Figure4Point(1.90, False),
        "xen-x86": Figure4Point(2.10, False),
    },
    "TCP_STREAM": {
        "kvm-arm": Figure4Point(1.02, True),  # "almost no overhead"
        "xen-arm": Figure4Point(3.55, True),  # "more than 250% overhead"
        "kvm-x86": Figure4Point(1.02, True),
        "xen-x86": Figure4Point(2.90, False),
    },
    "TCP_MAERTS": {
        "kvm-arm": Figure4Point(1.10, False),
        "xen-arm": Figure4Point(2.55, True),  # "substantially higher" (TSO bug)
        "kvm-x86": Figure4Point(1.05, False),
        "xen-x86": Figure4Point(2.20, False),
    },
    "Apache": {
        "kvm-arm": Figure4Point(1.35, True),  # "overhead ... 35%" (Section V)
        "xen-arm": Figure4Point(1.84, True),  # "from 84% to 16%"
        # the kvm-x86 bar is the least-constrained digitization in the
        # figure; the paper's prose only says ARM overhead is "similar,
        # and in some cases lower" than x86's
        "kvm-x86": Figure4Point(1.30, False),
        "xen-x86": None,  # Dom0 kernel panic; could not run
    },
    "Memcached": {
        "kvm-arm": Figure4Point(1.26, True),  # "from 26% to 8%"
        "xen-arm": Figure4Point(1.32, True),  # "from 32% to 9%"
        "kvm-x86": Figure4Point(1.25, False),
        "xen-x86": Figure4Point(1.45, False),
    },
    "MySQL": {
        "kvm-arm": Figure4Point(1.10, False),
        "xen-arm": Figure4Point(1.12, False),
        "kvm-x86": Figure4Point(1.08, False),
        "xen-x86": Figure4Point(1.13, False),
    },
}

#: Section V ablation: overhead (%) with all virtual IRQs on one VCPU vs
#: distributed across VCPUs.
IRQ_DISTRIBUTION_ABLATION = {
    ("kvm-arm", "Apache"): {"single": 35, "distributed": 14},
    ("kvm-arm", "Memcached"): {"single": 26, "distributed": 8},
    ("xen-arm", "Apache"): {"single": 84, "distributed": 16},
    ("xen-arm", "Memcached"): {"single": 32, "distributed": 9},
}

#: Section VI projections for VHE (KVM ARM running entirely in EL2).
VHE_PROJECTIONS = {
    "hypercall_improvement_floor": 10.0,  # "more than an order of magnitude"
    "io_workload_improvement_range": (0.10, 0.20),  # "10% to 20%"
}

#: The paper's platform columns (Table II order).
PLATFORM_ORDER = ["kvm-arm", "xen-arm", "kvm-x86", "xen-x86"]
