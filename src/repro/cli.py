"""Command-line interface: regenerate any of the paper's artifacts.

Usage:
    python -m repro table2             # microbenchmarks, 4 platforms
    python -m repro table3             # KVM ARM hypercall breakdown
    python -m repro table5             # TCP_RR decomposition
    python -m repro figure4            # application benchmarks
    python -m repro ablation           # Section V IRQ distribution
    python -m repro vhe                # Section VI VHE comparison
    python -m repro figures            # Figures 1-3/5 as ASCII
    python -m repro all                # the whole evaluation section
    python -m repro micro --platform xen-arm   # one platform's column
    python -m repro lint               # model-integrity static analysis
    python -m repro lint --flow        # + CFG path-symmetry rules
    python -m repro lint --spec        # + path-spec golden-file rules
    python -m repro spec extract       # (re)write specs/*.json goldens
    python -m repro trace table3 -o trace.json   # Perfetto span trace
    python -m repro bench --jobs 4     # sharded suite + BENCH_suite.json
    python -m repro sanitize suite     # SimSan tie-order race sweep
    python -m repro serve              # what-if query server (asyncio)
    python -m repro query --target table2      # query a running server
    python -m repro query --direct --target table2  # same, no server
    python -m repro serve-bench        # service load-profile meta-bench

Table commands accept ``--emit-json PATH`` to write the underlying
results as JSON alongside the rendered table.
"""

import argparse
import json
import os
import sys

from repro.core import reporting, suite
from repro.core.microbench import MicrobenchmarkSuite
from repro.core.testbed import ALL_KEYS, build_testbed


def _cmd_micro(args):
    results = MicrobenchmarkSuite(build_testbed(args.platform)).run_all()
    rows = [[name, "%d" % cycles] for name, cycles in results.items()]
    print(
        reporting.render_table(
            ["Microbenchmark", "cycles"],
            rows,
            title="Microbenchmarks on %s" % args.platform,
        )
    )


def _cmd_figures(_args):
    for name in ("figure1", "figure2", "figure3", "figure5"):
        print(reporting.describe_architecture(name))
        print()


def _cmd_lint(args):
    from repro.analysis import cli as analysis_cli

    return analysis_cli.main(args.lint_args)


def _cmd_spec(args):
    from repro.analysis.pathspec import cli as spec_cli

    return spec_cli.main(args.spec_args)


def _cmd_sanitize(args):
    from repro.sanitize import report as sanitize_report
    from repro.sanitize import runner as sanitize_runner

    report = sanitize_runner.sanitize_target(
        args.target,
        track_writes=not args.no_write_tracking,
        max_cells=args.max_cells,
    )
    rendered = (
        sanitize_report.render_json(report)
        if args.format == "json"
        else sanitize_report.render_text(report)
    )
    print(rendered, end="")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(sanitize_report.render_json(report))
        print("wrote %s" % args.output, file=sys.stderr)
    if args.target == "selftest":
        # the seeded fixtures must trip the detector, not pass it
        from repro.sanitize.selftest import cells as selftest_cells

        expectations = {cell.id: cell.expect_race for cell in selftest_cells()}
        for entry in report["cells"]:
            raced = bool(
                entry["races"]["tie_order"] or entry["races"]["multi_writer"]
            )
            if raced != expectations[entry["cell"]]:
                return 1
        return 0
    return 0 if report["summary"]["clean"] else 1


def _cmd_trace(args):
    from repro.obs import capture as obs_capture
    from repro.obs.export import render_metrics, render_span_tree, write_chrome_trace

    cap = obs_capture.capture(
        args.target, key=args.platform, trace_resume=args.resume_spans
    )
    print(
        "%s on %s: %d cycles, %d spans"
        % (cap.target, cap.key, cap.cycles, sum(1 for _ in cap.obs.spans.iter_spans()))
    )
    print()
    print(render_span_tree(cap.obs.spans))
    print()
    print(render_metrics(cap.obs.metrics))
    if args.output:
        write_chrome_trace(
            args.output,
            cap.obs.spans,
            cap.obs.metrics,
            machine_name=cap.machine.platform.name,
            extra={"target": cap.target, "platform_key": cap.key},
        )
        print("\nwrote %s" % args.output)


def _cmd_bench(args):
    from repro.errors import ConfigurationError
    from repro.runner import bench as runner_bench
    from repro.runner.journal import JournalError
    from repro.runner.resilience import CellFailure, RetryPolicy

    if args.cache_verify:
        return _cmd_cache_verify(args, runner_bench)
    if args.no_fastpath:
        # Environment, not a parameter: worker processes must inherit
        # the setting so every cell interprets step by step.
        os.environ["REPRO_FASTPATH"] = "0"
    try:
        if args.resume is not None:
            if args.no_cache:
                raise ConfigurationError(
                    "--resume needs the cache (the journal lives in it); "
                    "drop --no-cache"
                )
            # jobs/policy default to the journaled run's own settings
            outcome = runner_bench.resume_bench(
                run_ref=args.resume,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
            )
        else:
            policy = RetryPolicy.from_env(
                max_retries=args.max_retries,
                cell_timeout_s=args.cell_timeout,
                keep_going=True if args.keep_going else None,
            )
            outcome = runner_bench.run_bench(
                jobs=args.jobs if args.jobs is not None else 1,
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache,
                transactions=args.transactions,
                policy=policy,
                run_id=args.run_id,
            )
    except CellFailure as failure:
        # the structured abort: cell, attempts, tracebacks — on stderr
        print(failure.report_text(), file=sys.stderr)
        return 1
    except (JournalError, ConfigurationError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    # The report goes to stdout (byte-identical to `repro all`); the
    # bench summary goes to stderr so redirected output stays clean.
    print(outcome.report)
    runner_bench.write_document(args.output, outcome.document)
    if args.history:
        runner_bench.append_history(args.history, outcome.document)
        print("appended scoreboard line to %s" % args.history, file=sys.stderr)
    print(outcome.summary, file=sys.stderr)
    journal_block = outcome.document.get("journal")
    if journal_block and journal_block["resumed"]:
        print(
            "resumed %s: %d cell(s) recovered from the journal, %d re-simulated"
            % (
                journal_block["run_id"],
                journal_block["completed_before"],
                journal_block["resimulated"],
            ),
            file=sys.stderr,
        )
    print("wrote %s" % args.output, file=sys.stderr)
    if outcome.document.get("failed_cells"):
        print(
            "%d cell(s) failed; report is partial (--keep-going)"
            % len(outcome.document["failed_cells"]),
            file=sys.stderr,
        )
        return 1


def _cmd_cache_verify(args, runner_bench):
    """``bench --cache-verify``: re-hash every entry, quarantine bad ones."""
    report = runner_bench.verify_cache(args.cache_dir)
    quarantined = [row for row in report if row["status"] == "quarantined"]
    for row in report:
        line = "%-11s %s" % (row["status"], row["key"])
        if row["cell"]:
            line += "  (%s)" % row["cell"]
        if row["reason"]:
            line += "  -- %s" % row["reason"]
        print(line)
    print(
        "cache-verify: %d entr%s checked, %d quarantined"
        % (len(report), "y" if len(report) == 1 else "ies", len(quarantined)),
        file=sys.stderr,
    )
    return 1 if quarantined else 0


def _cmd_serve(args):
    from repro.service import server as service_server

    config = service_server.ServiceConfig.from_env(
        host=args.host,
        port=args.port,
        admit_max=args.admit_max,
        query_budget=args.query_budget,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        drain_timeout=args.drain_timeout,
    )
    server = service_server.ServiceServer(config=config)

    def announce(host, port):
        print("serving on http://%s:%d" % (host, port), file=sys.stderr, flush=True)

    return service_server.run_forever(server, announce=announce)


def _parse_json_arg(text, name):
    if not text:
        return {}
    try:
        value = json.loads(text)
    except ValueError:
        raise SystemExit("--%s is not valid JSON: %r" % (name, text))
    if not isinstance(value, dict):
        raise SystemExit("--%s must be a JSON object" % name)
    return value


def _cmd_query(args):
    from repro.errors import ReproError
    from repro.service import client as service_client

    retry = service_client.RetryConfig.from_env(
        retries=0 if args.no_retry else args.retries
    )
    client = service_client.ServiceClient(
        host=args.host, port=args.port, timeout=args.timeout, retry=retry
    )
    if args.health:
        ok = client.health()
        print("ok" if ok else "unreachable")
        return 0 if ok else 1
    if args.show_metrics:
        print(json.dumps(client.metrics(), indent=1))
        return 0
    if not args.target:
        raise SystemExit("query requires --target (or --health/--metrics)")
    params = _parse_json_arg(args.params, "params")
    costs = _parse_json_arg(args.costs, "costs")
    if args.direct:
        from repro.runner.cache import ResultCache
        from repro.service import queries as service_queries

        cache = ResultCache(args.cache_dir) if args.cache_dir else None
        try:
            document = service_queries.direct_document(
                args.target, params, costs, jobs=args.jobs, cache=cache
            )
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 1
    else:
        try:
            document = client.query(
                args.target,
                params,
                costs,
                budget_cells=args.budget_cells,
                deadline_ms=args.deadline_ms,
            )
        except service_client.ServiceError as exc:
            # the stable error document, verbatim, on stderr
            print(json.dumps(exc.document, indent=1), file=sys.stderr)
            return 1
        except OSError as exc:
            print("cannot reach service: %s" % exc, file=sys.stderr)
            return 1
    # NOT key-sorted: result_sha256 digests the result's insertion order
    text = json.dumps(document, indent=1)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(
            "%s %s -> %s" % (document["target"], document["result_sha256"][:16], args.output),
            file=sys.stderr,
        )
    else:
        print(text)
    return 0


def _cmd_serve_bench(args):
    from repro.service import loadgen

    document = loadgen.run_profile(clients=args.clients)
    loadgen.write_document(args.output, document)
    print(loadgen.summary_text(document), file=sys.stderr)
    print("wrote %s" % args.output, file=sys.stderr)
    return 0 if all(phase["ok"] for phase in document["phases"]) else 1


def _positive_int(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1, got %d" % value)
    return value


def _nonnegative_int(text):
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0, got %d" % value)
    return value


def _positive_float(text):
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be > 0, got %r" % value)
    return value


#: table commands with a JSON-serializable ``suite.*_data`` twin
DATA_FUNCS = {
    "table2": lambda args: suite.table2_data(),
    "table3": lambda args: suite.table3_data(),
    "table5": lambda args: suite.table5_data(args.transactions),
    "figure4": lambda args: suite.figure4_data(),
    "ablation": lambda args: suite.ablation_data(),
    "vhe": lambda args: suite.vhe_data(),
}


def _maybe_emit_json(args):
    path = getattr(args, "emit_json", None)
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(DATA_FUNCS[args.command](args), handle, indent=1, sort_keys=True)
        handle.write("\n")


COMMANDS = {
    "table2": lambda args: print(suite.table2_report()),
    "table3": lambda args: print(suite.table3_report()),
    "table5": lambda args: print(suite.table5_report(args.transactions)),
    "figure4": lambda args: print(suite.figure4_report()),
    "ablation": lambda args: print(suite.ablation_report()),
    "vhe": lambda args: print(suite.vhe_report()),
    "figures": _cmd_figures,
    "all": lambda args: print(suite.full_report()),
    "micro": _cmd_micro,
    "lint": _cmd_lint,
    "spec": _cmd_spec,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "sanitize": _cmd_sanitize,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "serve-bench": _cmd_serve_bench,
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'ARM Virtualization: Performance and Architectural "
            "Implications' (ISCA 2016) on the simulated testbeds."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("figures", "all"):
        sub.add_parser(name, help="regenerate %s" % name)
    for name in ("table2", "table3", "figure4", "ablation", "vhe"):
        table = sub.add_parser(name, help="regenerate %s" % name)
        table.add_argument(
            "--emit-json",
            metavar="PATH",
            help="also write the results as JSON to PATH",
        )
    table5 = sub.add_parser("table5", help="regenerate table5")
    table5.add_argument(
        "--transactions", type=int, default=40, help="TCP_RR transactions to simulate"
    )
    table5.add_argument(
        "--emit-json", metavar="PATH", help="also write the results as JSON to PATH"
    )
    trace = sub.add_parser(
        "trace",
        help="run one operation with observability on; print the span tree "
        "and optionally write a Perfetto-loadable Chrome trace JSON",
    )
    from repro.obs.capture import ALL_TARGETS

    trace.add_argument("target", choices=ALL_TARGETS, help="what to trace")
    trace.add_argument(
        "--platform",
        choices=ALL_KEYS,
        default="kvm-arm",
        help="platform key for microbenchmark targets (default kvm-arm; "
        "table3 is always kvm-arm)",
    )
    trace.add_argument(
        "-o", "--output", metavar="PATH", help="write Chrome trace JSON to PATH"
    )
    trace.add_argument(
        "--resume-spans",
        action="store_true",
        help="also mark every simulation-process resume on the engine track",
    )
    from repro.runner import bench as runner_bench
    from repro.runner.cells import DEFAULT_RR_TRANSACTIONS

    bench = sub.add_parser(
        "bench",
        help="run the whole suite through the parallel sharded runner; "
        "prints the full report and writes a BENCH_suite.json artifact "
        "with per-cell wall time, simulated cycles, and cache hit/miss "
        "counts",
    )
    bench.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes to fan cells out over (default 1: in-process; "
        "under --resume, defaults to the original run's width)",
    )
    bench.add_argument(
        "--resume",
        nargs="?",
        const="latest",
        default=None,
        metavar="RUN_ID",
        help="resume an interrupted journaled run instead of starting fresh "
        "(RUN_ID, or 'latest' when omitted); completed cells are recovered "
        "from the cache, the rest re-simulate, and the report is "
        "byte-identical to an uninterrupted run",
    )
    bench.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="name this run's journal (default REPRO_RUN_ID or a generated "
        "id); the journal lands at <cache>/journal/<ID>.jsonl",
    )
    bench.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the content-addressed result cache",
    )
    bench.add_argument(
        "--no-fastpath",
        action="store_true",
        help="disable the compiled world-switch fast lane (sets "
        "REPRO_FASTPATH=0 for this run and its workers); results are "
        "byte-identical either way, only wall time changes",
    )
    bench.add_argument(
        "--cache-dir",
        default=runner_bench.DEFAULT_CACHE_DIR,
        metavar="PATH",
        help="result cache directory (default %s)" % runner_bench.DEFAULT_CACHE_DIR,
    )
    bench.add_argument(
        "--transactions",
        type=_positive_int,
        default=DEFAULT_RR_TRANSACTIONS,
        help="TCP_RR transactions per Table V cell (default %d)"
        % DEFAULT_RR_TRANSACTIONS,
    )
    bench.add_argument(
        "-o",
        "--output",
        default=runner_bench.DEFAULT_DOCUMENT_PATH,
        metavar="PATH",
        help="where to write the bench document (default %s)"
        % runner_bench.DEFAULT_DOCUMENT_PATH,
    )
    bench.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="append this run's scoreboard line (wall clock, cells/s, cache "
        "hit rate, fastpath counters) to a JSONL history file; CI uses "
        "BENCH_history.jsonl to track the throughput trajectory",
    )
    bench.add_argument(
        "--max-retries",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="per-cell charged-failure budget before degrading to serial "
        "(default: REPRO_MAX_RETRIES or 2)",
    )
    bench.add_argument(
        "--cell-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="watchdog deadline per cell execution under --jobs N>1; a hung "
        "worker is killed and the cell retried (default: REPRO_CELL_TIMEOUT "
        "or no deadline)",
    )
    bench.add_argument(
        "--keep-going",
        action="store_true",
        help="do not abort when a cell exhausts the retry/degradation "
        "ladder: emit a partial report and a failed_cells section instead",
    )
    bench.add_argument(
        "--cache-verify",
        action="store_true",
        help="instead of running the bench, re-hash every cache entry and "
        "quarantine mismatches (exit 1 if any were quarantined)",
    )
    from repro.sanitize.runner import TARGETS as SANITIZE_TARGETS

    sanitize = sub.add_parser(
        "sanitize",
        help="run cells twice under SimSan (FIFO vs inverted tie-break) and "
        "report simulation-time races; exit 1 on any finding",
    )
    sanitize.add_argument(
        "target",
        nargs="?",
        default="suite",
        choices=sorted(SANITIZE_TARGETS),
        help="cell group to sanitize (default: suite = everything the full "
        "report simulates; selftest = seeded detector fixtures)",
    )
    sanitize.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout rendering (default text)",
    )
    sanitize.add_argument(
        "-o", "--output", metavar="PATH", help="also write the JSON report to PATH"
    )
    sanitize.add_argument(
        "--max-cells",
        type=_positive_int,
        default=None,
        metavar="N",
        help="sanitize only the first N cells of the target (CI smoke)",
    )
    sanitize.add_argument(
        "--no-write-tracking",
        action="store_true",
        help="skip the shared-state multi-writer instrumentation "
        "(tie-break inversion only)",
    )
    from repro.service import protocol as service_protocol

    serve = sub.add_parser(
        "serve",
        help="start the asyncio what-if query server (JSON over HTTP); "
        "serves until interrupted",
    )
    serve.add_argument(
        "--host",
        default=None,
        help="bind address (default REPRO_SERVE_HOST or 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="TCP port, 0 for ephemeral (default REPRO_SERVE_PORT or %d)"
        % service_protocol.DEFAULT_PORT,
    )
    serve.add_argument(
        "--admit-max",
        type=_positive_int,
        default=None,
        metavar="N",
        help="queries in residence before shedding with 'overloaded' "
        "(default REPRO_ADMIT_MAX or 64)",
    )
    serve.add_argument(
        "--query-budget",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="max cells per query, 0 = unlimited "
        "(default REPRO_QUERY_BUDGET or 0)",
    )
    serve.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes per batch (default REPRO_JOBS or 1)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="content-addressed result cache (default REPRO_CACHE_DIR or off)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="max time to finish in-flight queries after SIGTERM/SIGINT "
        "before stopping anyway (default REPRO_DRAIN_TIMEOUT or 30)",
    )
    query = sub.add_parser(
        "query",
        help="submit one what-if query to a running server (or compute it "
        "directly with --direct) and print the response document",
    )
    query.add_argument(
        "--host", default="127.0.0.1", help="server address (default 127.0.0.1)"
    )
    query.add_argument(
        "--port",
        type=_positive_int,
        default=None,
        metavar="N",
        help="server port (default REPRO_SERVE_PORT or %d)"
        % service_protocol.DEFAULT_PORT,
    )
    query.add_argument(
        "--timeout",
        type=_positive_float,
        default=120.0,
        metavar="SECONDS",
        help="client socket timeout (default 120)",
    )
    query.add_argument("--target", help="report target (see /v1/targets)")
    query.add_argument(
        "--params",
        metavar="JSON",
        help="target parameters as a JSON object, e.g. '{\"key\": \"xen-arm\"}'",
    )
    query.add_argument(
        "--costs",
        metavar="JSON",
        help="what-if cost overrides, e.g. '{\"arm\": {\"trap_to_el2\": 152}}'",
    )
    query.add_argument(
        "--budget-cells",
        type=_positive_int,
        default=None,
        metavar="N",
        help="reject the query if it plans more than N cells",
    )
    query.add_argument(
        "--deadline-ms",
        type=_positive_float,
        default=None,
        metavar="MS",
        help="give up (504) if the response takes longer than MS",
    )
    query.add_argument(
        "--direct",
        action="store_true",
        help="bypass the server: run the same canonical query through the "
        "runner in-process (the differential golden path)",
    )
    query.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for --direct (default 1)",
    )
    query.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result cache for --direct (default off)",
    )
    query.add_argument(
        "--retries",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="retry budget for shed (503) and connection-reset responses "
        "(default REPRO_CLIENT_RETRIES or 2)",
    )
    query.add_argument(
        "--no-retry",
        action="store_true",
        help="single-attempt: fail immediately on 503 or connection reset",
    )
    query.add_argument(
        "--health",
        action="store_true",
        help="just probe /healthz; exit 0 if the server answers ok",
    )
    query.add_argument(
        "--metrics",
        dest="show_metrics",
        action="store_true",
        help="print the server's /v1/metrics document and exit",
    )
    query.add_argument(
        "-o", "--output", metavar="PATH", help="write the response document to PATH"
    )
    serve_bench = sub.add_parser(
        "serve-bench",
        help="replay a serversim-style closed-loop load profile against an "
        "in-process server and write a SERVICE_bench.json document",
    )
    serve_bench.add_argument(
        "--clients",
        type=_positive_int,
        default=4,
        metavar="N",
        help="closed-loop client population (default 4)",
    )
    from repro.service.loadgen import DEFAULT_DOCUMENT_PATH as SERVICE_BENCH_PATH

    serve_bench.add_argument(
        "-o",
        "--output",
        default=SERVICE_BENCH_PATH,
        metavar="PATH",
        help="where to write the bench document (default %s)" % SERVICE_BENCH_PATH,
    )
    micro = sub.add_parser("micro", help="one platform's microbenchmark column")
    micro.add_argument(
        "--platform",
        choices=ALL_KEYS,
        default="kvm-arm",
        help="platform key (default kvm-arm)",
    )
    lint = sub.add_parser(
        "lint",
        help="run the model-integrity linter (see python -m repro.analysis -h)",
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to repro.analysis (paths, --format, --select, ...)",
    )
    spec = sub.add_parser(
        "spec",
        help="extract, diff or show the golden world-switch path specs "
        "(see python -m repro spec -h)",
    )
    spec.add_argument(
        "spec_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to repro.analysis.pathspec "
        "(extract|diff|show, paths, --spec-dir, --id, ...)",
    )
    return parser


def main(argv=None):
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["lint"]:
        # forward verbatim: argparse.REMAINDER chokes on leading options
        from repro.analysis import cli as analysis_cli

        return analysis_cli.main(argv[1:])
    if argv[:1] == ["spec"]:
        from repro.analysis.pathspec import cli as spec_cli

        return spec_cli.main(argv[1:])
    args = build_parser().parse_args(argv)
    # lint returns the linter's exit status; report commands return None
    status = COMMANDS[args.command](args) or 0
    _maybe_emit_json(args)
    return status


if __name__ == "__main__":
    sys.exit(main())
