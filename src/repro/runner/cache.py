"""Content-addressed result cache for suite cells.

A cell's cache key is the sha256 of a canonical JSON document binding
together everything that can change its payload:

* the **model fingerprint** — a hash over every ``repro`` source file
  that participates in simulation (``analysis/`` is excluded: the
  linter cannot change results).  Editing any model file moves every
  key, so a stale hit is impossible after a code change;
* the **live cost tables** — ``repro.hw.costs.arm_costs()`` /
  ``x86_costs()`` serialized at key-derivation time, so a runtime
  mutation (a calibration experiment monkeypatching a primitive cost)
  also invalidates, even though no source file changed;
* the **cell id and parameters** — kind plus the frozen parameter
  pairs.

Entries are one JSON file per key under ``<dir>/<key[:2]>/<key>.json``,
written atomically (tempfile + rename) so concurrent workers and
concurrent suite runs can share a directory; stale ``*.tmp.<pid>``
scratch files left by a killed run are swept on open.

Integrity: every entry carries a ``payload_sha256`` over the canonical
payload JSON, verified on read.  A corrupt, truncated, or
hash-mismatched entry is **quarantined** — moved to
``<dir>/quarantine/<key>.json`` next to a ``<key>.reason`` file — and
treated as a miss, never an error: poisoning the cache can cost time,
not correctness, and the evidence survives for inspection.  An entry
with a foreign schema tag is simply a miss (a version skew, not
corruption; the next store overwrites it).  ``verify_entries`` re-hashes
the whole store on demand (``python -m repro bench --cache-verify``).
"""

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import warnings

import repro
from repro.hw import costs as hw_costs
from repro.runner import faults, resilience

#: bump when the entry layout changes; old entries become misses.
CACHE_SCHEMA = "repro-runner-cache/2"

#: subdirectory (inside the cache) holding quarantined entries
QUARANTINE_DIR = "quarantine"

_MODEL_FINGERPRINT = None


def model_fingerprint():
    """sha256 over every simulation-relevant source file (memoized)."""
    global _MODEL_FINGERPRINT
    if _MODEL_FINGERPRINT is None:
        root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            relative = path.relative_to(root).as_posix()
            if relative.startswith("analysis/"):
                continue
            digest.update(relative.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _MODEL_FINGERPRINT = digest.hexdigest()
    return _MODEL_FINGERPRINT


def _canonical(value):
    """Recursively turn a value into deterministic JSON-able data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonical(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, enum.Enum):
        return str(value)
    return value


def live_costs():
    """The cost tables as the simulator would see them *right now*."""
    return {
        "arm": _canonical(hw_costs.arm_costs()),
        "x86": _canonical(hw_costs.x86_costs()),
    }


def _digest(document):
    return hashlib.sha256(
        json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


class ResultCache:
    """On-disk content-addressed store of cell payloads."""

    def __init__(self, directory):
        self.directory = pathlib.Path(directory)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.write_errors = 0
        self._warned_write_error = False
        self.swept_tmp = self._sweep_stale_tmp()

    # -- hygiene -----------------------------------------------------------

    def _sweep_stale_tmp(self):
        """Remove ``*.tmp.<pid>`` scratch left by a killed previous run.

        A scratch file whose writer pid is still alive is left alone (a
        concurrent run mid-store); anything else — dead pid, mangled
        name — is debris from a run that never reached its atomic
        rename, and can only accumulate.
        """
        if not self.directory.is_dir():
            return 0
        swept = 0
        scratch_files = list(self.directory.glob("*/*.json.tmp.*"))
        # journal scratch (a run killed before its run-open rename landed)
        scratch_files.extend(self.directory.glob("journal/*.jsonl.tmp.*"))
        for scratch in scratch_files:
            suffix = scratch.name.rsplit(".", 1)[-1]
            alive = suffix.isdigit() and _pid_alive(int(suffix))
            if not alive:
                try:
                    scratch.unlink()
                    swept += 1
                except OSError:
                    pass  # a concurrent sweeper got there first
        return swept

    def quarantine_path(self):
        return self.directory / QUARANTINE_DIR

    def _quarantine(self, path, key, reason):
        """Move a bad entry aside (with a reason file) instead of deleting.

        Quarantined evidence is what lets a human (or the CI chaos job)
        distinguish "the cache was poisoned" from "the cache was cold".
        """
        destination = self.quarantine_path()
        destination.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, destination / (key + ".json"))
        except OSError:
            return  # gone already (concurrent quarantine/store)
        (destination / (key + ".reason")).write_text(
            "key: %s\nreason: %s\n" % (key, reason), encoding="utf-8"
        )
        self.quarantined += 1

    # -- keys --------------------------------------------------------------

    def base_fingerprint(self):
        """The model+costs half of every key (compute once per run)."""
        return _digest(
            {
                "schema": CACHE_SCHEMA,
                "model": model_fingerprint(),
                "costs": live_costs(),
            }
        )

    def key_for(self, spec, base=None):
        """The full content address of one cell."""
        if base is None:
            base = self.base_fingerprint()
        return _digest(
            {
                "base": base,
                "kind": spec.kind,
                "params": [[name, value] for name, value in spec.params],
            }
        )

    def _path(self, key):
        return self.directory / key[:2] / (key + ".json")

    # -- entries -----------------------------------------------------------

    @staticmethod
    def _entry_problem(entry, key):
        """Why a parsed entry is untrustworthy, or None if it is sound."""
        if not isinstance(entry, dict):
            return "entry is not a JSON object"
        if entry.get("key") != key:
            return "embedded key %r does not match filename" % (entry.get("key"),)
        if "payload" not in entry:
            return "payload missing"
        if not isinstance(entry.get("stats"), dict):
            return "stats block missing"
        recorded = entry.get("payload_sha256")
        actual = resilience.payload_digest(entry["payload"])
        if recorded != actual:
            return "payload hash mismatch (recorded %r, actual %s)" % (
                recorded,
                actual,
            )
        return None

    def load(self, key):
        """The stored entry dict, or None (corruption quarantines + misses)."""
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None  # a cold miss, nothing to quarantine
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self._quarantine(path, key, "unparseable JSON (torn write or poison)")
            self.misses += 1
            return None
        if isinstance(entry, dict) and entry.get("schema") != CACHE_SCHEMA:
            self.misses += 1  # foreign version: stale, not corrupt
            return None
        problem = self._entry_problem(entry, key)
        if problem is not None:
            self._quarantine(path, key, problem)
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, key, result):
        """Persist one executed cell (atomic: tempfile + rename)."""
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "cell": result.spec.id,
            "kind": result.spec.kind,
            "params": result.spec.params_dict(),
            "payload": result.payload,
            "payload_sha256": resilience.payload_digest(result.payload),
            "stats": {
                "wall_ms": result.wall_ms,
                "simulated_cycles": result.simulated_cycles,
                "engines": result.engines,
            },
        }
        path = self._path(key)
        scratch = path.with_name("%s.tmp.%d" % (path.name, os.getpid()))
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # No sort_keys: payload dict order is meaningful (microbenchmark
            # and workload row order) and must survive the round trip.
            scratch.write_text(json.dumps(entry, indent=1) + "\n", encoding="utf-8")
            os.replace(scratch, path)
        except OSError as exc:
            # A full or read-only disk must cost cache coverage, not the
            # cell: record the miss-to-be and carry on.
            self.write_errors += 1
            try:
                scratch.unlink()
            except OSError:
                pass
            if not self._warned_write_error:
                self._warned_write_error = True
                warnings.warn(
                    "cache store failed (%s); continuing without caching "
                    "(further write errors counted silently)" % exc
                )
            return False
        faults.maybe_poison_entry(result.spec.id, path)
        return True

    def verify_entries(self):
        """Re-hash every entry; quarantine mismatches.  Returns a report.

        Each report row is ``{"key", "cell", "status", "reason"}`` with
        status ``ok`` or ``quarantined`` (``python -m repro bench
        --cache-verify``).
        """
        report = []
        if not self.directory.is_dir():
            return report
        for path in sorted(self.directory.glob("??/*.json")):
            key = path.stem
            row = {"key": key, "cell": None, "status": "ok", "reason": None}
            try:
                entry = json.loads(path.read_bytes().decode("utf-8"))
            except (OSError, UnicodeDecodeError, ValueError):
                self._quarantine(path, key, "unparseable JSON (torn write or poison)")
                row.update(status="quarantined", reason="unparseable JSON")
                report.append(row)
                continue
            if isinstance(entry, dict):
                row["cell"] = entry.get("cell")
            if isinstance(entry, dict) and entry.get("schema") != CACHE_SCHEMA:
                row.update(status="ok", reason="foreign schema (ignored)")
                report.append(row)
                continue
            problem = self._entry_problem(entry, key)
            if problem is not None:
                self._quarantine(path, key, problem)
                row.update(status="quarantined", reason=problem)
            report.append(row)
        return report
