"""Content-addressed result cache for suite cells.

A cell's cache key is the sha256 of a canonical JSON document binding
together everything that can change its payload:

* the **model fingerprint** — a hash over every ``repro`` source file
  that participates in simulation (``analysis/`` is excluded: the
  linter cannot change results).  Editing any model file moves every
  key, so a stale hit is impossible after a code change;
* the **live cost tables** — ``repro.hw.costs.arm_costs()`` /
  ``x86_costs()`` serialized at key-derivation time, so a runtime
  mutation (a calibration experiment monkeypatching a primitive cost)
  also invalidates, even though no source file changed;
* the **cell id and parameters** — kind plus the frozen parameter
  pairs.

Entries are one JSON file per key under ``<dir>/<key[:2]>/<key>.json``,
written atomically (tempfile + rename) so concurrent workers and
concurrent suite runs can share a directory.  A corrupt, truncated, or
foreign entry is *always* treated as a miss, never an error — poisoning
the cache can cost time, not correctness.
"""

import dataclasses
import enum
import hashlib
import json
import os
import pathlib

import repro
from repro.hw import costs as hw_costs

#: bump when the entry layout changes; old entries become misses.
CACHE_SCHEMA = "repro-runner-cache/1"

_MODEL_FINGERPRINT = None


def model_fingerprint():
    """sha256 over every simulation-relevant source file (memoized)."""
    global _MODEL_FINGERPRINT
    if _MODEL_FINGERPRINT is None:
        root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            relative = path.relative_to(root).as_posix()
            if relative.startswith("analysis/"):
                continue
            digest.update(relative.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _MODEL_FINGERPRINT = digest.hexdigest()
    return _MODEL_FINGERPRINT


def _canonical(value):
    """Recursively turn a value into deterministic JSON-able data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonical(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, enum.Enum):
        return str(value)
    return value


def live_costs():
    """The cost tables as the simulator would see them *right now*."""
    return {
        "arm": _canonical(hw_costs.arm_costs()),
        "x86": _canonical(hw_costs.x86_costs()),
    }


def _digest(document):
    return hashlib.sha256(
        json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


class ResultCache:
    """On-disk content-addressed store of cell payloads."""

    def __init__(self, directory):
        self.directory = pathlib.Path(directory)
        self.hits = 0
        self.misses = 0

    def base_fingerprint(self):
        """The model+costs half of every key (compute once per run)."""
        return _digest(
            {
                "schema": CACHE_SCHEMA,
                "model": model_fingerprint(),
                "costs": live_costs(),
            }
        )

    def key_for(self, spec, base=None):
        """The full content address of one cell."""
        if base is None:
            base = self.base_fingerprint()
        return _digest(
            {
                "base": base,
                "kind": spec.kind,
                "params": [[name, value] for name, value in spec.params],
            }
        )

    def _path(self, key):
        return self.directory / key[:2] / (key + ".json")

    def load(self, key):
        """The stored entry dict, or None (corruption counts as a miss)."""
        try:
            entry = json.loads(self._path(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA
            or entry.get("key") != key
            or "payload" not in entry
            or not isinstance(entry.get("stats"), dict)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, key, result):
        """Persist one executed cell (atomic: tempfile + rename)."""
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "cell": result.spec.id,
            "kind": result.spec.kind,
            "params": result.spec.params_dict(),
            "payload": result.payload,
            "stats": {
                "wall_ms": result.wall_ms,
                "simulated_cycles": result.simulated_cycles,
                "engines": result.engines,
            },
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_name("%s.tmp.%d" % (path.name, os.getpid()))
        # No sort_keys: payload dict order is meaningful (microbenchmark
        # and workload row order) and must survive the round trip.
        scratch.write_text(json.dumps(entry, indent=1) + "\n", encoding="utf-8")
        os.replace(scratch, path)
