"""Cell execution: in-process, fanned out across workers, or from cache.

The pool is deliberately dumb: cells are self-contained and
deterministic (see :mod:`repro.runner.cells`), so workers need no shared
state, no ordering, and no communication beyond (spec in, payload out).
``run_cells`` always returns results keyed and ordered by the *request*
order, never by completion order — the deterministic-merge guarantee the
differential tests hold the runner to.

Workers are spawned (not forked) so every cell simulates from a fresh
interpreter with no inherited module state; a cell's payload therefore
cannot depend on which process ran it (tests/test_runner_workers.py
asserts exactly this, per cell).

Per-cell accounting goes through a :class:`repro.obs.MetricsRegistry`:
``runner.cell.engines`` and ``runner.cell.simulated_cycles`` count the
discrete-event engines a cell built and the cycles they simulated (via
``Engine.created_hook``), and ``runner.cell.wall_ms`` is host wall time
— the one place in the tree where a wall clock is legitimate, because it
measures the *runner*, never the model.
"""

import dataclasses
import json
import multiprocessing
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.runner import cells
from repro.sim.engine import Engine


@dataclasses.dataclass
class CellResult:
    """One cell's payload plus where it came from and what it cost."""

    spec: cells.CellSpec
    payload: object
    wall_ms: float
    simulated_cycles: int
    engines: int
    source: str  # "run" | "cache"


def execute_cell(spec):
    """Run one cell in this process, with engine/wall accounting."""
    created = []
    previous_hook = Engine.created_hook
    Engine.created_hook = created.append
    start = time.perf_counter()
    try:
        payload = cells.run_cell(spec)
    finally:
        Engine.created_hook = previous_hook
    metrics = MetricsRegistry()
    metrics.counter("runner.cell.engines").inc(len(created))
    metrics.counter("runner.cell.simulated_cycles").inc(
        sum(engine.now for engine in created)
    )
    metrics.gauge("runner.cell.wall_ms").set((time.perf_counter() - start) * 1000.0)
    # Round-trip through JSON so a freshly simulated payload is
    # structurally identical to one loaded from the cache.
    return CellResult(
        spec=spec,
        payload=json.loads(json.dumps(payload)),
        wall_ms=metrics.get("runner.cell.wall_ms").value,
        simulated_cycles=metrics.get("runner.cell.simulated_cycles").value,
        engines=metrics.get("runner.cell.engines").value,
        source="run",
    )


def _from_cache(spec, entry):
    stats = entry["stats"]
    return CellResult(
        spec=spec,
        payload=entry["payload"],
        wall_ms=0.0,  # a hit costs no simulation time
        simulated_cycles=stats.get("simulated_cycles", 0),
        engines=stats.get("engines", 0),
        source="cache",
    )


def run_cells(specs, jobs=1, cache=None):
    """Execute a cell list; returns ``OrderedDict`` of id -> CellResult.

    ``jobs=1`` runs everything in-process (no subprocess overhead —
    the default path ``suite.full_report()`` takes); ``jobs>1`` fans
    cache misses out over spawned worker processes.  The result dict is
    always in (deduplicated) request order regardless of which worker
    finished first.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1, got %r" % (jobs,))
    ordered = cells.dedupe(specs)
    results = {}
    pending = []
    keys = {}
    if cache is not None:
        base = cache.base_fingerprint()
        for spec in ordered:
            key = keys[spec.id] = cache.key_for(spec, base)
            entry = cache.load(key)
            if entry is None:
                pending.append(spec)
            else:
                results[spec.id] = _from_cache(spec, entry)
    else:
        pending = list(ordered)

    if pending:
        if jobs > 1:
            context = multiprocessing.get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)), mp_context=context
            ) as pool:
                for result in pool.map(execute_cell, pending):
                    results[result.spec.id] = result
        else:
            for spec in pending:
                results[spec.id] = execute_cell(spec)
        if cache is not None:
            for spec in pending:
                cache.store(keys[spec.id], results[spec.id])

    return OrderedDict((spec.id, results[spec.id]) for spec in ordered)
