"""Cell execution: in-process, fanned out across workers, or from cache.

Cells are self-contained and deterministic (see
:mod:`repro.runner.cells`), so workers need no shared state, no
ordering, and no communication beyond (spec in, payload out).
``run_cells`` always returns results keyed and ordered by the *request*
order, never by completion order — the deterministic-merge guarantee the
differential tests hold the runner to.

Workers are spawned (not forked) so every cell simulates from a fresh
interpreter with no inherited module state; a cell's payload therefore
cannot depend on which process ran it (tests/test_runner_workers.py
asserts exactly this, per cell).

**Failure model** (DESIGN.md "Runner failure model"): the scheduler
assumes workers can raise, hang, or die.  Every attempt is integrity-
checked (payload sha256); a failed attempt is retried with bounded
exponential backoff under a per-cell charged-failure budget
(``RetryPolicy.max_retries``); a hung worker is detected by a per-cell
deadline (``cell_timeout_s``) and its pool is torn down and rebuilt; a
hard worker exit (``BrokenProcessPool``) requeues every unfinished cell
into a fresh pool without charging their budgets.  A cell that exhausts
its budget degrades to one in-process serial execution, and only if
that also fails does the run abort with a structured
:class:`~repro.runner.resilience.CellFailure` — or, under
``keep_going``, record the failure and continue without the cell.

Per-cell accounting goes through a :class:`repro.obs.MetricsRegistry`:
``runner.cell.engines`` and ``runner.cell.simulated_cycles`` count the
discrete-event engines a cell built and the cycles they simulated (via
``Engine.created_hook``) — recorded even for *failed* attempts, so a
crash report still says how far the cell got — and
``runner.cell.wall_ms`` is host wall time, the one place in the tree
where a wall clock is legitimate, because it measures the *runner*,
never the model.  Resilience activity is counted run-wide:
``runner.cell.retries`` / ``.requeues`` / ``.timeouts`` /
``.pool_crashes`` / ``.corrupt_payloads`` / ``.degraded`` / ``.failed``
and ``runner.cache.quarantined``.
"""

import dataclasses
import json
import multiprocessing
import threading
import time
import traceback
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.obs import MetricsRegistry
from repro.runner import cells, faults, resilience
from repro.runner.resilience import (
    AttemptFailure,
    CellExecutionError,
    FailedCell,
    RetryPolicy,
)
from repro.sim.engine import Engine

#: scheduler poll interval: deadline checks and backoff wakeups
_TICK_S = 0.05

#: every resilience counter the runner maintains (pre-registered so a
#: clean run still reports explicit zeros)
RESILIENCE_COUNTERS = (
    "runner.cell.retries",
    "runner.cell.requeues",
    "runner.cell.timeouts",
    "runner.cell.pool_crashes",
    "runner.cell.corrupt_payloads",
    "runner.cell.degraded",
    "runner.cell.failed",
    "runner.cache.quarantined",
    "runner.cache.write_error",
)

# test seam: backoff sleeps route through here.  A suppression on the
# alias definition waives every call routed through the seam.
# repro-lint: ignore[CON] — retry backoff in the serial fallback runs on
# the submitting thread by design; workers are separate processes.
_sleep = time.sleep

#: serializes in-process cell execution across threads.  Cells were
#: designed to run one-per-process (the pool spawns workers), but the
#: service broker executes batches on its own thread while other code
#: (tests, a --direct CLI query) may run cells on the main thread; the
#: ``Engine.created_hook`` accounting seam is process-global, so two
#: concurrent in-process executions would cross-record their engines.
_EXECUTE_LOCK = threading.Lock()


@dataclasses.dataclass
class CellResult:
    """One cell's payload plus where it came from and what it cost."""

    spec: cells.CellSpec
    payload: object
    wall_ms: float
    simulated_cycles: int
    engines: int
    source: str  # "run" | "cache"
    payload_sha256: str = ""
    attempts: int = 1
    degraded: bool = False
    #: aggregated fast-lane counters over the cell's engines (empty for
    #: cache hits — the lane never enters the cache key or the payload)
    fastpath: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class RunOutcome:
    """Everything one ``run_cells_outcome`` call produced.

    ``results`` holds the successful cells in request order (all of
    them, unless ``keep_going`` swallowed failures); ``failures`` the
    cells that exhausted the degradation ladder; ``metrics`` the
    run-wide resilience counters.
    """

    results: "OrderedDict"
    failures: list
    metrics: MetricsRegistry


def execute_cell(spec, attempt=0):
    """Run one cell in this process, with engine/wall accounting.

    On failure, raises a picklable
    :class:`~repro.runner.resilience.CellExecutionError` carrying the
    traceback *and* the partial engine/cycle counts accumulated before
    the error — the hook is restored either way.
    """
    created = []
    with _EXECUTE_LOCK:
        previous_hook = Engine.created_hook
        Engine.created_hook = created.append
        start = time.perf_counter()
        try:
            payload = cells.run_cell(spec, attempt)
        except Exception as exc:
            raise CellExecutionError(
                spec.id,
                type(exc).__name__,
                str(exc),
                traceback.format_exc(),
                engines=len(created),
                simulated_cycles=sum(engine.now for engine in created),
            ) from exc
        finally:
            Engine.created_hook = previous_hook
    metrics = MetricsRegistry()
    metrics.counter("runner.cell.engines").inc(len(created))
    metrics.counter("runner.cell.simulated_cycles").inc(
        sum(engine.now for engine in created)
    )
    metrics.gauge("runner.cell.wall_ms").set((time.perf_counter() - start) * 1000.0)
    fastpath = {}
    for engine in created:
        lane = getattr(engine, "fastlane", None)
        if lane is None:
            continue
        for name, count in lane.snapshot().items():
            fastpath[name] = fastpath.get(name, 0) + count
    # Round-trip through JSON so a freshly simulated payload is
    # structurally identical to one loaded from the cache.
    payload = json.loads(json.dumps(payload))
    result = CellResult(
        spec=spec,
        payload=payload,
        wall_ms=metrics.get("runner.cell.wall_ms").value,
        simulated_cycles=metrics.get("runner.cell.simulated_cycles").value,
        engines=metrics.get("runner.cell.engines").value,
        source="run",
        payload_sha256=resilience.payload_digest(payload),
        fastpath=fastpath,
    )
    if faults.corrupts_payload(spec.id, attempt):
        # chaos hook: scribble *after* the digest so the parent's
        # verification must catch it (mimics bit-rot in flight)
        result.payload = {"__corrupted_by_fault_plan__": attempt}
    return result


def _from_cache(spec, entry):
    stats = entry["stats"]
    return CellResult(
        spec=spec,
        payload=entry["payload"],
        wall_ms=0.0,  # a hit costs no simulation time
        simulated_cycles=stats.get("simulated_cycles", 0),
        engines=stats.get("engines", 0),
        source="cache",
        payload_sha256=entry.get("payload_sha256", ""),
    )


def _verified(result):
    """True if the payload still matches the digest computed at run time."""
    return result.payload_sha256 == resilience.payload_digest(result.payload)


class _CellState:
    """Per-cell scheduler bookkeeping across retries and requeues."""

    __slots__ = ("spec", "submissions", "charged", "history")

    def __init__(self, spec):
        self.spec = spec
        self.submissions = 0  # attempt indices consumed (drives fault plans)
        self.charged = 0  # failures charged against the retry budget
        self.history = []  # AttemptFailure records, in order


def _corrupt_failure(state, result):
    return AttemptFailure(
        attempt=state.submissions - 1,
        kind="corrupt-payload",
        error="payload hash mismatch (recorded %s)" % (result.payload_sha256[:12],),
        engines=result.engines,
        simulated_cycles=result.simulated_cycles,
    )


def _finalize_failure(state, policy, metrics, failures, degraded):
    """Last rung: record (keep_going) or abort with the structured report."""
    failed = FailedCell(
        cell_id=state.spec.id,
        kind=state.spec.kind,
        params=state.spec.params_dict(),
        attempts=list(state.history),
        degraded=degraded,
    )
    metrics.counter("runner.cell.failed").inc()
    if policy.keep_going:
        failures.append(failed)
        return
    raise resilience.CellFailure([failed])


def _attempt_inprocess(state):
    """One in-process attempt.  Returns (result|None, failure|None, retryable)."""
    index = state.submissions
    state.submissions += 1
    try:
        result = execute_cell(state.spec, index)
    except CellExecutionError as exc:
        return None, AttemptFailure.from_execution_error(index, exc), exc.retryable
    if not _verified(result):
        return None, _corrupt_failure(state, result), True
    return result, None, True


def _degrade_serial(state, policy, metrics, accept, failures):
    """Pool budget exhausted: one in-process execution, then the abyss."""
    metrics.counter("runner.cell.degraded").inc()
    result, failure, _retryable = _attempt_inprocess(state)
    if result is not None:
        result.attempts = state.submissions
        result.degraded = True
        accept(result)
        return
    if failure.kind == "corrupt-payload":
        metrics.counter("runner.cell.corrupt_payloads").inc()
    state.history.append(failure)
    _finalize_failure(state, policy, metrics, failures, degraded=True)


def _run_serial(pending, policy, metrics, accept, failures):
    """The ``jobs=1`` path: retry loop, no worker boundary, no watchdog."""
    for spec in pending:
        state = _CellState(spec)
        while True:
            result, failure, retryable = _attempt_inprocess(state)
            if result is not None:
                result.attempts = state.submissions
                accept(result)
                break
            if failure.kind == "corrupt-payload":
                metrics.counter("runner.cell.corrupt_payloads").inc()
            state.history.append(failure)
            state.charged += 1
            if retryable and state.charged <= policy.max_retries:
                metrics.counter("runner.cell.retries").inc()
                _sleep(policy.backoff_s(state.charged))
                continue
            _finalize_failure(state, policy, metrics, failures, degraded=False)
            break


def _run_parallel(pending, jobs, policy, metrics, accept, failures):
    """The fan-out path: watchdogged pool with retry/requeue/degrade."""
    context = multiprocessing.get_context("spawn")
    max_workers = resilience.clamp_workers(jobs, len(pending))
    states = {spec.id: _CellState(spec) for spec in pending}
    ready = list(pending)
    delayed = []  # [(monotonic ready_at, spec), ...] — backoff parking lot
    inflight = {}  # future -> (spec, monotonic deadline or None)
    pool = None

    def charge_and_route(state, failure, retryable):
        state.history.append(failure)
        state.charged += 1
        if retryable and state.charged <= policy.max_retries:
            metrics.counter("runner.cell.retries").inc()
            delay = policy.backoff_s(state.charged)
            delayed.append((time.monotonic() + delay, state.spec))
        else:
            _degrade_serial(state, policy, metrics, accept, failures)

    def requeue_uncharged(state, why):
        """Collateral damage (pool crash/restart): retry free of charge."""
        state.history.append(
            AttemptFailure(
                attempt=state.submissions - 1, kind="pool-crash", error=why
            )
        )
        metrics.counter("runner.cell.requeues").inc()
        ready.append(state.spec)

    def nuke_pool():
        """Kill every worker (hung or orphaned) and drop the executor."""
        nonlocal pool
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except OSError:
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        pool = None

    try:
        while ready or delayed or inflight:
            now = time.monotonic()
            if delayed:
                due = [item for item in delayed if item[0] <= now]
                if due:
                    delayed[:] = [item for item in delayed if item[0] > now]
                    ready.extend(spec for _at, spec in due)
            # Submit only up to the pool width: a queued-but-unstarted
            # cell must not burn its execution deadline waiting for a
            # slot (false timeouts on narrow hosts).
            while ready and len(inflight) < max_workers:
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=max_workers,
                        mp_context=context,
                        initializer=faults.mark_worker_process,
                    )
                spec = ready.pop(0)
                state = states[spec.id]
                try:
                    future = pool.submit(execute_cell, spec, state.submissions)
                except BrokenProcessPool:
                    # broken between completions; recycle and resubmit
                    if not inflight:
                        metrics.counter("runner.cell.pool_crashes").inc()
                    ready.insert(0, spec)
                    nuke_pool()
                    break
                state.submissions += 1
                deadline = (
                    now + policy.cell_timeout_s if policy.cell_timeout_s else None
                )
                inflight[future] = (spec, deadline)

            if not inflight:
                if delayed:
                    next_at = min(at for at, _spec in delayed)
                    _sleep(max(0.0, min(next_at - time.monotonic(), _TICK_S)))
                continue

            done, _not_done = wait(
                list(inflight), timeout=_TICK_S, return_when=FIRST_COMPLETED
            )
            broken = False
            for future in done:
                spec, _deadline = inflight.pop(future)
                state = states[spec.id]
                try:
                    result = future.result()
                except BrokenProcessPool:
                    broken = True
                    requeue_uncharged(
                        state, "worker hard exit broke the process pool"
                    )
                except CellExecutionError as exc:
                    charge_and_route(
                        state,
                        AttemptFailure.from_execution_error(
                            state.submissions - 1, exc
                        ),
                        exc.retryable,
                    )
                except Exception as exc:  # unpicklable payloads et al.
                    charge_and_route(
                        state,
                        AttemptFailure(
                            attempt=state.submissions - 1,
                            kind="exception",
                            error="%s: %s" % (type(exc).__name__, exc),
                        ),
                        True,
                    )
                else:
                    if _verified(result):
                        result.attempts = state.submissions
                        accept(result)
                    else:
                        metrics.counter("runner.cell.corrupt_payloads").inc()
                        charge_and_route(
                            state, _corrupt_failure(state, result), True
                        )
            if broken:
                metrics.counter("runner.cell.pool_crashes").inc()
                for _future, (spec, _deadline) in list(inflight.items()):
                    requeue_uncharged(
                        states[spec.id],
                        "requeued: sibling worker crash broke the pool",
                    )
                inflight.clear()
                nuke_pool()
                continue

            if policy.cell_timeout_s:
                now = time.monotonic()
                overdue = [
                    (future, spec)
                    for future, (spec, deadline) in inflight.items()
                    if deadline is not None and deadline < now and not future.done()
                ]
                if overdue:
                    # Hung worker(s): the only portable cure is to kill
                    # the whole pool; innocents are requeued uncharged.
                    metrics.counter("runner.cell.timeouts").inc(len(overdue))
                    overdue_ids = {spec.id for _future, spec in overdue}
                    survivors = [
                        spec
                        for _future, (spec, _dl) in inflight.items()
                        if spec.id not in overdue_ids
                    ]
                    inflight.clear()
                    nuke_pool()
                    for spec in survivors:
                        requeue_uncharged(
                            states[spec.id],
                            "requeued: pool restarted to kill a hung worker",
                        )
                    for _future, spec in overdue:
                        charge_and_route(
                            states[spec.id],
                            AttemptFailure(
                                attempt=states[spec.id].submissions - 1,
                                kind="timeout",
                                error="cell exceeded cell-timeout %.3fs "
                                "(hung worker killed)" % policy.cell_timeout_s,
                            ),
                            True,
                        )
    finally:
        if pool is not None:
            if inflight:  # erroring out mid-run: don't wait on stuck workers
                nuke_pool()
            else:
                pool.shutdown(wait=True, cancel_futures=True)


def run_cells_outcome(specs, jobs=1, cache=None, policy=None, metrics=None, journal=None):
    """Execute a cell list under a retry policy; returns :class:`RunOutcome`.

    ``jobs=1`` runs everything in-process (no subprocess overhead — the
    default path ``suite.full_report()`` takes); ``jobs>1`` fans cache
    misses out over spawned worker processes (width clamped to the
    host's cores).  The result dict is always in (deduplicated) request
    order regardless of which worker finished first.

    With a ``journal`` (an open :class:`repro.runner.journal.RunJournal`;
    requires a ``cache``), every cell's fate is appended write-ahead:
    hits resolved at planning time and fresh results in ``accept`` both
    land as ``cell-completed`` lines *before* the run proceeds past
    them, so ``bench --resume`` after a hard kill trusts exactly the
    cells whose completion made it to disk.
    """
    jobs = resilience.validate_jobs(jobs)
    policy = policy if policy is not None else RetryPolicy.from_env()
    metrics = metrics if metrics is not None else MetricsRegistry()
    for name in RESILIENCE_COUNTERS:
        metrics.counter(name)
    ordered = cells.dedupe(specs)
    results = {}
    failures = []
    pending = []
    keys = {}
    quarantined_before = cache.quarantined if cache is not None else 0
    write_errors_before = cache.write_errors if cache is not None else 0
    if cache is not None:
        base = cache.base_fingerprint()
        for spec in ordered:
            key = keys[spec.id] = cache.key_for(spec, base)
            quarantined_mark = cache.quarantined
            entry = cache.load(key)
            if entry is None:
                if journal is not None and cache.quarantined > quarantined_mark:
                    # a journal-referenced (or just stale) entry failed
                    # verification: record the incident, then re-run
                    journal.cell_quarantined(spec.id, key)
                pending.append(spec)
            else:
                results[spec.id] = _from_cache(spec, entry)
                if journal is not None:
                    journal.cell_completed(
                        spec.id, key, results[spec.id].payload_sha256, "cache"
                    )
    else:
        pending = list(ordered)
    if journal is not None:
        for spec in pending:
            journal.cell_submitted(spec.id)

    def accept(result):
        """A verified result: record it and persist it immediately —
        never after the run, so a later failure cannot lose it."""
        results[result.spec.id] = result
        if cache is not None:
            cache.store(keys[result.spec.id], result)
        if journal is not None:
            journal.cell_completed(
                result.spec.id,
                keys.get(result.spec.id),
                result.payload_sha256,
                "run",
            )
            # chaos hook: die *here*, right after the completion line is
            # durable — the strongest point the journal promises to hold
            faults.maybe_parent_kill(result.spec.id)

    try:
        if pending:
            if jobs > 1:
                _run_parallel(pending, jobs, policy, metrics, accept, failures)
            else:
                _run_serial(pending, policy, metrics, accept, failures)
    except resilience.CellFailure as exc:
        if journal is not None:
            for failed in exc.failed_cells:
                journal.cell_failed(
                    failed.cell_id,
                    failed.attempts[-1].kind if failed.attempts else "unknown",
                    failed.attempts[-1].error if failed.attempts else "",
                )
        raise
    if journal is not None:
        for failed in failures:
            journal.cell_failed(
                failed.cell_id,
                failed.attempts[-1].kind if failed.attempts else "unknown",
                failed.attempts[-1].error if failed.attempts else "",
            )
    if cache is not None:
        metrics.counter("runner.cache.quarantined").inc(
            cache.quarantined - quarantined_before
        )
        metrics.counter("runner.cache.write_error").inc(
            cache.write_errors - write_errors_before
        )
    return RunOutcome(
        results=OrderedDict(
            (spec.id, results[spec.id]) for spec in ordered if spec.id in results
        ),
        failures=failures,
        metrics=metrics,
    )


def run_cells(specs, jobs=1, cache=None, policy=None, metrics=None):
    """Back-compat wrapper: just the request-ordered result map."""
    return run_cells_outcome(
        specs, jobs=jobs, cache=cache, policy=policy, metrics=metrics
    ).results
