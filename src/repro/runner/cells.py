"""The cell graph: the full report sharded into independent units.

A *cell* is the smallest independently simulable unit of the suite —
one (platform, hypervisor, benchmark/table) combination, or one sweep
point of the ablation/VHE/oversubscription grids.  Every cell is:

* **self-contained** — it builds its own testbeds from the platform key
  and parameters, so it can run in any process in any order;
* **deterministic** — the simulator guarantees the same payload for the
  same parameters, which is what makes both the worker fan-out and the
  content-addressed cache (:mod:`repro.runner.cache`) sound;
* **JSON-valued** — the payload is plain data (dicts/lists/numbers/
  strings), so a cached result is indistinguishable from a fresh one.

Cells deliberately deduplicate across report sections: Table II and the
Section VI VHE comparison both need the ``micro[key=kvm-arm]`` cell, so
the runner simulates it once and both sections merge from the same
payload (:mod:`repro.runner.merge` reassembles the ``*_data`` shapes).
"""

import dataclasses
import json

from repro.core.appbench import run_figure4
from repro.core.breakdown import hypercall_breakdown
from repro.core.irqbalance import run_irq_distribution_ablation
from repro.core.microbench import MicrobenchmarkSuite
from repro.core.netanalysis import TcpRrBenchmark
from repro.core.oversubscription import OversubscriptionExperiment
from repro.core.testbed import build_testbed, native_testbed
from repro.errors import ConfigurationError
from repro.hw import costs as hw_costs
from repro.paperdata import PLATFORM_ORDER
from repro.runner import faults
from repro.workloads import FIGURE4_WORKLOADS

#: netperf TCP_RR transactions simulated per Table V cell (the
#: ``run_table5`` default; ``python -m repro table5 --transactions`` and
#: the cache key both carry the actual value).
DEFAULT_RR_TRANSACTIONS = 40

#: Table V columns, in report order.
TCPRR_CONFIGS = ("native", "kvm", "xen")
#: the Section V ablation grid (keys outer, workloads inner — the
#: serial ``run_irq_distribution_ablation`` iteration order).
ABLATION_KEYS = ("kvm-arm", "xen-arm")
ABLATION_WORKLOADS = ("Apache", "Memcached")
#: the Section VI comparison pair: split-mode KVM vs the VHE what-if.
VHE_KEYS = ("kvm-arm", "kvm-vhe-arm")
#: timeslice sweep of the oversubscription experiment (mirrors
#: ``repro.core.oversubscription.sweep``'s default grid).
OVERSUB_TIMESLICES_US = (100.0, 500.0, 1000.0, 4000.0)

_WORKLOADS_BY_NAME = {workload.name: type(workload) for workload in FIGURE4_WORKLOADS}


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """One independently simulable unit: a kind plus frozen parameters.

    ``params`` is a tuple of ``(name, value)`` pairs sorted by name, so
    equal cells compare (and hash, and pickle) equal and the cell id is
    canonical.
    """

    kind: str
    params: tuple = ()

    @property
    def id(self):
        if not self.params:
            return self.kind
        inner = ",".join("%s=%s" % (name, value) for name, value in self.params)
        return "%s[%s]" % (self.kind, inner)

    def params_dict(self):
        return dict(self.params)


def _spec(kind, **params):
    return CellSpec(kind, tuple(sorted(params.items())))


#: reserved parameter name carrying a what-if cost-override document
#: (canonical JSON text; see :func:`with_cost_overrides`)
COSTS_PARAM = "costs"


def with_cost_overrides(spec, overrides):
    """The same cell under a what-if cost-override document.

    The document is validated and canonicalized
    (:func:`repro.hw.costs.validate_overrides`) and then embedded in the
    cell's parameters as compact sorted JSON — so the override travels
    with the spec across process boundaries, distinguishes the cell's
    content-addressed cache key from the default-calibration cell, and
    shows up verbatim in the cell id (which fault plans key on).
    """
    if not overrides:
        return spec
    document = hw_costs.validate_overrides(overrides)
    if not document:
        return spec
    params = dict(spec.params)
    params[COSTS_PARAM] = json.dumps(
        document, sort_keys=True, separators=(",", ":")
    )
    return CellSpec(spec.kind, tuple(sorted(params.items())))


def strip_cost_overrides(spec):
    """The default-calibration twin of an override-carrying cell."""
    if COSTS_PARAM not in dict(spec.params):
        return spec
    return CellSpec(
        spec.kind, tuple(item for item in spec.params if item[0] != COSTS_PARAM)
    )


# --- cell constructors (the vocabulary of the graph) ---------------------


def micro(key):
    """Table II column: the seven microbenchmarks on one platform."""
    return _spec("micro", key=key)


def breakdown():
    """Table III: the KVM ARM hypercall save/restore attribution."""
    return _spec("breakdown")


def tcprr(config, transactions=DEFAULT_RR_TRANSACTIONS):
    """Table V column: one TCP_RR configuration (native/kvm/xen)."""
    return _spec("tcprr", config=config, transactions=transactions)


def appcol(key, irq_vcpus=1):
    """Figure 4 column: every application workload on one platform."""
    return _spec("appcol", key=key, irq_vcpus=irq_vcpus)


def ablation(key, workload):
    """Section V sweep point: one (platform, workload) IRQ-distribution run."""
    return _spec("ablation", key=key, workload=workload)


def oversub(key, timeslice_us):
    """Oversubscription sweep point: one (platform, timeslice) run."""
    return _spec("oversub", key=key, timeslice_us=timeslice_us)


# --- cell executors ------------------------------------------------------


def _run_micro(params):
    testbed = build_testbed(params["key"])
    return dict(MicrobenchmarkSuite(testbed).run_all())


def _run_breakdown(_params):
    result = hypercall_breakdown()
    return {
        "rows": [dataclasses.asdict(row) for row in result.rows],
        "other_cycles": result.other_cycles,
        "total_cycles": result.total_cycles,
    }


def _run_tcprr(params):
    config = params["config"]
    if config == "native":
        testbed = native_testbed("arm")
    elif config in ("kvm", "xen"):
        testbed = build_testbed("%s-arm" % config)
    else:
        raise ConfigurationError("unknown TCP_RR config %r" % (config,))
    result = TcpRrBenchmark(testbed, params["transactions"]).run()
    return dataclasses.asdict(result)


def _run_appcol(params):
    key = params["key"]
    grid = run_figure4([key], irq_vcpus=params["irq_vcpus"])
    return {
        workload: dataclasses.asdict(row[key]) for workload, row in grid.items()
    }


def _run_ablation(params):
    name = params["workload"]
    if name not in _WORKLOADS_BY_NAME:
        raise ConfigurationError("unknown workload %r" % (name,))
    workload_cls = _WORKLOADS_BY_NAME[name]
    results = run_irq_distribution_ablation(
        keys=(params["key"],), workloads=[workload_cls()]
    )
    (point,) = results.values()
    return dataclasses.asdict(point)


def _run_oversub(params):
    point = OversubscriptionExperiment(params["key"], params["timeslice_us"]).run()
    payload = dataclasses.asdict(point)
    payload["efficiency"] = point.efficiency
    return payload


CELL_KINDS = {
    "micro": _run_micro,
    "breakdown": _run_breakdown,
    "tcprr": _run_tcprr,
    "appcol": _run_appcol,
    "ablation": _run_ablation,
    "oversub": _run_oversub,
}


def run_cell(spec, attempt=0):
    """Execute one cell in this process; returns its JSON payload.

    ``attempt`` is the cell's submission index (0 on the first try); it
    only matters to the deterministic fault-injection hook, which is a
    no-op unless ``REPRO_FAULT_PLAN`` is set (chaos tests / CI).

    A cell carrying a ``costs`` parameter (see
    :func:`with_cost_overrides`) simulates under that what-if override
    document; the testbeds it builds see the overridden primitives and
    nothing outside the cell does.
    """
    faults.on_run_cell(spec.id, attempt)
    runner = CELL_KINDS.get(spec.kind)
    if runner is None:
        raise ConfigurationError("unknown cell kind %r" % (spec.kind,))
    params = spec.params_dict()
    encoded = params.pop(COSTS_PARAM, None)
    if encoded is None:
        return runner(params)
    with hw_costs.overriding(json.loads(encoded)):
        return runner(params)


# --- grids ---------------------------------------------------------------


def dedupe(specs):
    """Drop repeated cells, keeping first-occurrence order."""
    seen = {}
    for spec in specs:
        if spec not in seen:
            seen[spec] = None
    return list(seen)


def table2_cells(keys=None):
    return [micro(key) for key in (keys or PLATFORM_ORDER)]


def table3_cells():
    return [breakdown()]


def table5_cells(transactions=DEFAULT_RR_TRANSACTIONS):
    return [tcprr(config, transactions) for config in TCPRR_CONFIGS]


def figure4_cells(keys=None, irq_vcpus=1):
    return [appcol(key, irq_vcpus) for key in (keys or PLATFORM_ORDER)]


def ablation_cells(keys=ABLATION_KEYS, workloads=ABLATION_WORKLOADS):
    return [ablation(key, workload) for key in keys for workload in workloads]


def vhe_cells():
    return [micro(key) for key in VHE_KEYS] + [appcol(key) for key in VHE_KEYS]


def oversubscription_cells(keys=None, timeslices_us=OVERSUB_TIMESLICES_US):
    return [
        oversub(key, timeslice)
        for key in (keys or PLATFORM_ORDER)
        for timeslice in timeslices_us
    ]


def full_report_cells(transactions=DEFAULT_RR_TRANSACTIONS):
    """Everything ``suite.full_report()`` needs, deduplicated, in order."""
    return dedupe(
        table2_cells()
        + table3_cells()
        + table5_cells(transactions)
        + figure4_cells()
        + ablation_cells()
        + vhe_cells()
    )


def bench_cells(transactions=DEFAULT_RR_TRANSACTIONS):
    """The ``python -m repro bench`` grid: the full report plus the
    oversubscription sweep (simulated and cached, reported in
    ``BENCH_suite.json``; not part of the rendered report)."""
    return dedupe(full_report_cells(transactions) + oversubscription_cells())
