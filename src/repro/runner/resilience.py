"""Fault tolerance for the suite runner: policy, failure records, verdicts.

The runner's failure model (DESIGN.md, "Runner failure model") is a
degradation ladder:

1. **retry** — a failed attempt (raised exception, hung/crashed worker,
   corrupt payload) is retried with bounded exponential backoff while
   the cell's charged-failure count stays within ``max_retries``;
2. **degrade** — a cell that exhausts its pool budget is re-executed
   in-process serially (no worker boundary to crash through);
3. **abort or keep going** — only when the serial rung also fails does
   the run abort with a structured :class:`CellFailure` naming the
   cell, every attempt, and every traceback; under ``keep_going`` the
   failure is recorded and the run continues without the cell.

Everything here is deterministic: backoff delays are a pure function of
the charged-failure count, budgets are plain counters, and payload
integrity is a sha256 over the canonical payload JSON — so the chaos
tests can assert exact retry/degradation/quarantine metric counts.
"""

import dataclasses
import hashlib
import json
import os
import warnings

from repro.errors import ConfigurationError, ReproError

#: environment twins of the ``python -m repro bench`` resilience flags
ENV_MAX_RETRIES = "REPRO_MAX_RETRIES"
ENV_CELL_TIMEOUT = "REPRO_CELL_TIMEOUT"
ENV_KEEP_GOING = "REPRO_KEEP_GOING"
ENV_JOBS = "REPRO_JOBS"

#: default charged-failure budget per cell (attempts = budget + 1)
DEFAULT_MAX_RETRIES = 2
#: exponential backoff: ``min(base * factor**failures, max)`` seconds
DEFAULT_BACKOFF_BASE_S = 0.05
DEFAULT_BACKOFF_FACTOR = 2.0
DEFAULT_BACKOFF_MAX_S = 2.0

#: exception types that are never worth retrying (a bad platform key
#: will not become valid on attempt two)
NONRETRYABLE_TYPES = ("ConfigurationError",)


def payload_digest(payload):
    """sha256 over the canonical payload JSON (order-preserving).

    Dict insertion order is meaningful (table row order) and survives
    pickling, JSON round-trips, and the cache — so the digest a worker
    computes matches the parent's recomputation unless the payload was
    corrupted in flight or on disk.
    """
    return hashlib.sha256(
        json.dumps(payload, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


class CellExecutionError(ReproError):
    """A cell attempt failed; carries the traceback and partial accounting.

    Picklable (workers raise it across the process boundary).  The
    partial engine/cycle counts let the failure report say how far the
    cell got before dying — without them the metrics of a failed cell
    are silently dropped.
    """

    def __init__(
        self,
        cell_id,
        error_type,
        error,
        traceback_text="",
        engines=0,
        simulated_cycles=0,
    ):
        super().__init__("cell %s failed (%s: %s)" % (cell_id, error_type, error))
        self.cell_id = cell_id
        self.error_type = error_type
        self.error = error
        self.traceback_text = traceback_text
        self.engines = engines
        self.simulated_cycles = simulated_cycles

    @property
    def retryable(self):
        return self.error_type not in NONRETRYABLE_TYPES

    def __reduce__(self):
        return (
            type(self),
            (
                self.cell_id,
                self.error_type,
                self.error,
                self.traceback_text,
                self.engines,
                self.simulated_cycles,
            ),
        )


@dataclasses.dataclass
class AttemptFailure:
    """One failed attempt of one cell."""

    attempt: int
    kind: str  # "exception" | "timeout" | "pool-crash" | "corrupt-payload"
    error: str
    traceback: str = ""
    engines: int = 0
    simulated_cycles: int = 0

    def as_dict(self):
        return dataclasses.asdict(self)

    @classmethod
    def from_execution_error(cls, attempt, exc):
        return cls(
            attempt=attempt,
            kind="exception",
            error="%s: %s" % (exc.error_type, exc.error),
            traceback=exc.traceback_text,
            engines=exc.engines,
            simulated_cycles=exc.simulated_cycles,
        )


@dataclasses.dataclass
class FailedCell:
    """A cell that exhausted the whole degradation ladder."""

    cell_id: str
    kind: str
    params: dict
    attempts: list
    degraded: bool = False

    def as_dict(self):
        return {
            "id": self.cell_id,
            "kind": self.kind,
            "params": self.params,
            "degraded": self.degraded,
            "attempts": [failure.as_dict() for failure in self.attempts],
        }


class CellFailure(ReproError):
    """The structured abort: every failed cell, attempt by attempt."""

    def __init__(self, failed_cells):
        self.failed_cells = list(failed_cells)
        super().__init__(self.report_text())

    def report_text(self):
        lines = ["%d cell(s) failed after exhausting retries:" % len(self.failed_cells)]
        for failed in self.failed_cells:
            lines.append(
                "  %s: %d attempt(s)%s"
                % (
                    failed.cell_id,
                    len(failed.attempts),
                    " (incl. degraded serial rung)" if failed.degraded else "",
                )
            )
            for failure in failed.attempts:
                lines.append(
                    "    attempt %d [%s]: %s (engines=%d, simulated_cycles=%d)"
                    % (
                        failure.attempt,
                        failure.kind,
                        failure.error,
                        failure.engines,
                        failure.simulated_cycles,
                    )
                )
                for tb_line in failure.traceback.rstrip().splitlines():
                    lines.append("      " + tb_line)
        return "\n".join(lines)


@dataclasses.dataclass
class RetryPolicy:
    """How hard the runner fights for each cell before giving up."""

    max_retries: int = DEFAULT_MAX_RETRIES
    cell_timeout_s: float = None  # None: no watchdog deadline
    backoff_base_s: float = DEFAULT_BACKOFF_BASE_S
    backoff_factor: float = DEFAULT_BACKOFF_FACTOR
    backoff_max_s: float = DEFAULT_BACKOFF_MAX_S
    keep_going: bool = False

    def backoff_s(self, charged_failures):
        """Deterministic bounded exponential backoff before retry N."""
        if charged_failures <= 0:
            return 0.0
        delay = self.backoff_base_s * (self.backoff_factor ** (charged_failures - 1))
        return min(delay, self.backoff_max_s)

    @classmethod
    def from_env(cls, environ=None, **overrides):
        """Policy from ``REPRO_*`` variables, with explicit overrides."""
        environ = os.environ if environ is None else environ
        policy = cls(
            max_retries=_env_int(environ, ENV_MAX_RETRIES, DEFAULT_MAX_RETRIES, 0),
            cell_timeout_s=_env_float(environ, ENV_CELL_TIMEOUT, None),
            keep_going=_env_flag(environ, ENV_KEEP_GOING),
        )
        for name, value in overrides.items():
            if value is not None:
                setattr(policy, name, value)
        return policy

    def as_dict(self):
        return {
            "max_retries": self.max_retries,
            "cell_timeout_s": self.cell_timeout_s,
            "backoff_base_s": self.backoff_base_s,
            "backoff_factor": self.backoff_factor,
            "backoff_max_s": self.backoff_max_s,
            "keep_going": self.keep_going,
        }


def _env_int(environ, name, default, minimum):
    text = environ.get(name)
    if text is None or text == "":
        return default
    try:
        value = int(text)
    except ValueError:
        raise ConfigurationError("%s=%r is not an integer" % (name, text))
    if value < minimum:
        raise ConfigurationError("%s must be >= %d, got %d" % (name, minimum, value))
    return value


def _env_float(environ, name, default):
    text = environ.get(name)
    if text is None or text == "":
        return default
    try:
        value = float(text)
    except ValueError:
        raise ConfigurationError("%s=%r is not a number" % (name, text))
    if value <= 0:
        raise ConfigurationError("%s must be > 0, got %r" % (name, value))
    return value


def _env_flag(environ, name):
    return environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


def validate_jobs(jobs):
    """A usable worker-count: int >= 1, or a clear ConfigurationError.

    Accepts the string form (``REPRO_JOBS``), rejects bools, floats,
    zero and negatives — the errors a raw ``ProcessPoolExecutor`` call
    would otherwise surface as opaque tracebacks.
    """
    if isinstance(jobs, bool) or not isinstance(jobs, (int, str)):
        raise ConfigurationError(
            "jobs must be an integer >= 1, got %r (%s)" % (jobs, type(jobs).__name__)
        )
    if isinstance(jobs, str):
        try:
            jobs = int(jobs)
        except ValueError:
            raise ConfigurationError("jobs must be an integer >= 1, got %r" % (jobs,))
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1, got %d" % jobs)
    return jobs


def clamp_workers(jobs, cells_pending):
    """The actual pool width: never wider than the host or the work.

    A request beyond ``os.cpu_count()`` is clamped with a warning —
    oversubscribing spawn-based workers only adds memory pressure and
    scheduler churn.  The *requested* jobs value still decides pool
    vs. in-process execution, so ``--jobs 4`` on a 2-core host runs a
    2-worker pool rather than silently going serial.
    """
    cpus = os.cpu_count() or 1
    workers = min(jobs, cells_pending) if cells_pending else jobs
    if workers > cpus:
        warnings.warn(
            "jobs=%d exceeds os.cpu_count()=%d; clamping worker pool to %d"
            % (jobs, cpus, cpus),
            stacklevel=3,
        )
        workers = cpus
    return max(1, workers)
