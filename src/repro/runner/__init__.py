"""Parallel sharded suite execution with content-addressed caching.

The runner decomposes the full evaluation suite into independent
*cells* (:mod:`repro.runner.cells`), executes them — in-process, across
spawned worker processes, or straight out of an on-disk cache
(:mod:`repro.runner.pool`, :mod:`repro.runner.cache`) — and
deterministically merges the payloads back into the exact shapes and
bytes the serial suite always produced (:mod:`repro.runner.merge`).

``repro.core.suite`` routes every ``*_report``/``*_data`` entry point
through here, so callers get sharding, deduplication (Table II and the
VHE comparison share their KVM ARM cells) and caching for free.  The
default plan is serial and uncached; it can be widened per call or via
environment:

* ``REPRO_JOBS=N`` — fan cells out over N worker processes;
* ``REPRO_CACHE_DIR=PATH`` — reuse cached cell results keyed by the
  model fingerprint, live cost tables, and cell parameters.

``python -m repro bench`` (:mod:`repro.runner.bench`) runs the full
grid plus the oversubscription sweep and emits ``BENCH_suite.json``.
"""

import dataclasses
import os

from repro.runner import bench, cache, cells, merge, pool
from repro.runner.cache import ResultCache
from repro.runner.cells import CellSpec
from repro.runner.pool import CellResult, execute_cell, run_cells


@dataclasses.dataclass
class Plan:
    """How to execute a cell list: worker count and cache location."""

    jobs: int = 1
    cache_dir: str = None


def default_plan():
    """The environment-configured plan (serial, uncached by default)."""
    return Plan(
        jobs=int(os.environ.get("REPRO_JOBS", "1")),
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
    )


def run_plan(specs, jobs=None, cache_dir=None):
    """Run cells under the given (or environment-default) plan."""
    plan = default_plan()
    if jobs is None:
        jobs = plan.jobs
    if cache_dir is None:
        cache_dir = plan.cache_dir
    result_cache = ResultCache(cache_dir) if cache_dir else None
    return run_cells(specs, jobs=jobs, cache=result_cache)


__all__ = [
    "CellResult",
    "CellSpec",
    "Plan",
    "ResultCache",
    "bench",
    "cache",
    "cells",
    "default_plan",
    "execute_cell",
    "merge",
    "pool",
    "run_cells",
    "run_plan",
]
