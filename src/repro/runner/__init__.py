"""Parallel sharded suite execution with content-addressed caching.

The runner decomposes the full evaluation suite into independent
*cells* (:mod:`repro.runner.cells`), executes them — in-process, across
spawned worker processes, or straight out of an on-disk cache
(:mod:`repro.runner.pool`, :mod:`repro.runner.cache`) — and
deterministically merges the payloads back into the exact shapes and
bytes the serial suite always produced (:mod:`repro.runner.merge`).

The execution layer is fault tolerant (:mod:`repro.runner.resilience`):
failed, hung, or crashed workers are retried with bounded exponential
backoff under a per-cell budget, exhausted cells degrade to in-process
serial execution, corrupt payloads and poisoned cache entries are
detected by sha256 verification and quarantined, and only a cell that
fails the whole ladder aborts the run (or is recorded and skipped under
``keep_going``).  :mod:`repro.runner.faults` injects deterministic
chaos — crash/hang/corrupt/poison per cell per attempt — when
``REPRO_FAULT_PLAN`` is set, so all of the above is provable in tests
without real flakiness.

``repro.core.suite`` routes every ``*_report``/``*_data`` entry point
through here, so callers get sharding, deduplication (Table II and the
VHE comparison share their KVM ARM cells), caching and fault tolerance
for free.  The default plan is serial and uncached; it can be widened
per call or via environment:

* ``REPRO_JOBS=N`` — fan cells out over N worker processes;
* ``REPRO_CACHE_DIR=PATH`` — reuse cached cell results keyed by the
  model fingerprint, live cost tables, and cell parameters;
* ``REPRO_MAX_RETRIES`` / ``REPRO_CELL_TIMEOUT`` / ``REPRO_KEEP_GOING``
  — the retry policy (see :class:`repro.runner.resilience.RetryPolicy`).

``python -m repro bench`` (:mod:`repro.runner.bench`) runs the full
grid plus the oversubscription sweep and emits ``BENCH_suite.json``.
"""

import dataclasses
import os

from repro.runner import bench, cache, cells, faults, merge, pool, resilience
from repro.runner.cache import ResultCache
from repro.runner.cells import (
    COSTS_PARAM,
    CellSpec,
    strip_cost_overrides,
    with_cost_overrides,
)
from repro.runner.pool import (
    CellResult,
    RunOutcome,
    execute_cell,
    run_cells,
    run_cells_outcome,
)
from repro.runner.resilience import (
    CellExecutionError,
    CellFailure,
    FailedCell,
    RetryPolicy,
)


@dataclasses.dataclass
class Plan:
    """How to execute a cell list: worker count and cache location."""

    jobs: int = 1
    cache_dir: str = None


def default_plan():
    """The environment-configured plan (serial, uncached by default).

    ``REPRO_JOBS`` is validated here — a garbage value raises a clear
    :class:`~repro.errors.ConfigurationError` instead of surfacing as a
    ``ProcessPoolExecutor`` traceback deep in the pool.
    """
    return Plan(
        jobs=resilience.validate_jobs(os.environ.get(resilience.ENV_JOBS, "1")),
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
    )


def run_plan(specs, jobs=None, cache_dir=None, policy=None):
    """Run cells under the given (or environment-default) plan."""
    plan = default_plan()
    if jobs is None:
        jobs = plan.jobs
    if cache_dir is None:
        cache_dir = plan.cache_dir
    result_cache = ResultCache(cache_dir) if cache_dir else None
    return run_cells(specs, jobs=jobs, cache=result_cache, policy=policy)


__all__ = [
    "COSTS_PARAM",
    "CellExecutionError",
    "CellFailure",
    "CellResult",
    "CellSpec",
    "FailedCell",
    "Plan",
    "ResultCache",
    "RetryPolicy",
    "RunOutcome",
    "bench",
    "cache",
    "cells",
    "default_plan",
    "execute_cell",
    "faults",
    "merge",
    "pool",
    "resilience",
    "run_cells",
    "run_cells_outcome",
    "run_plan",
    "strip_cost_overrides",
    "with_cost_overrides",
]
