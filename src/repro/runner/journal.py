"""Crash-safe run journal: the write-ahead log behind ``bench --resume``.

The content-addressed cache (:mod:`repro.runner.cache`) makes every
*cell* durable — but nothing ties the cells of one run together, so a
``SIGKILL``, OOM kill, or host reboot mid-run leaves no record of what
the run was (which cell graph, which cost tables, which policy) or how
far it got.  The journal is that record: an append-only JSONL file at
``<cache>/journal/<run_id>.jsonl`` (schema ``repro-journal/1``) whose
lines are written *ahead* of run progress and fsync'd, so the journal on
disk is never behind reality by more than the line being appended when
the process died.

Events, in the order a run emits them:

* ``run-open`` — run identity plus everything needed to decide whether a
  later resume is sound: the cache **base fingerprint** (model source
  hash + live cost tables), the ordered **cell graph** (ids and their
  sha256), the retry policy, jobs, transactions, and the active fault
  plan;
* ``cell-completed`` — one per settled cell, carrying the result cache
  key and ``payload_sha256`` (source ``cache`` for hits resolved at
  planning time, ``run`` for fresh executions);
* ``cell-submitted`` / ``cell-failed`` / ``cell-quarantined`` — progress
  and incident records (a quarantine event marks a journal-referenced
  cache entry that failed verification and was re-run);
* ``run-resume`` — appended by every ``--resume`` before it continues
  the run;
* ``run-close`` — the rendered report's sha256; a journal without one is
  an interrupted run.

Durability contract: every append is flushed and ``fsync``'d before the
run proceeds, and the journal file itself is created atomically (the
``run-open`` line lands via tempfile + rename, so a half-created journal
is a ``journal/*.tmp.<pid>`` orphan the cache sweep removes, never a
torn first line).  Replay tolerates exactly one torn line — the final
one, the append in flight when the process died; a torn line anywhere
else is corruption and raises :class:`JournalError`.
"""

import dataclasses
import json
import os
import pathlib
import re
import time

from repro.errors import ConfigurationError, ReproError

#: bump when the event layout changes; old journals refuse to resume.
JOURNAL_SCHEMA = "repro-journal/1"

#: subdirectory (inside the cache directory) holding run journals
JOURNAL_DIR = "journal"

#: names a fresh run's journal (CI uses it to resume deterministically)
ENV_RUN_ID = "REPRO_RUN_ID"

#: the event vocabulary (``tools/validate_journal.py`` enforces it)
EVENT_KINDS = (
    "run-open",
    "cell-submitted",
    "cell-completed",
    "cell-failed",
    "cell-quarantined",
    "run-resume",
    "run-close",
)

_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,80}$")


class JournalError(ReproError):
    """A corrupt journal, or a resume invariant that does not hold."""


def validate_run_id(run_id):
    """A filename-safe run id, or a clear ConfigurationError."""
    if not isinstance(run_id, str) or not _RUN_ID_RE.match(run_id):
        raise ConfigurationError(
            "run id %r is not a valid journal name (want 1-81 chars of "
            "[A-Za-z0-9._-], starting alphanumeric)" % (run_id,)
        )
    return run_id


def generate_run_id():
    """A fresh, collision-resistant, sortable run id.

    Wall-clock prefixed so ``--resume latest`` and a directory listing
    both read chronologically; pid + entropy suffixed so concurrent runs
    sharing a cache never collide.  (Host time never reaches the model —
    this names runner artifacts, like ``runner.cell.wall_ms``.)
    """
    return "run-%s-%d-%s" % (
        time.strftime("%Y%m%d-%H%M%S"),
        os.getpid(),
        os.urandom(3).hex(),
    )


def journal_directory(cache_dir):
    return pathlib.Path(cache_dir) / JOURNAL_DIR


def journal_path(cache_dir, run_id):
    return journal_directory(cache_dir) / (run_id + ".jsonl")


class RunJournal:
    """An open, append-only run journal (every append is fsync'd)."""

    def __init__(self, path, run_id, handle):
        self.path = pathlib.Path(path)
        self.run_id = run_id
        self._handle = handle

    @classmethod
    def create(cls, cache_dir, run_id, header):
        """Open a new journal whose first line is the ``run-open`` event.

        The file appears atomically (tempfile + rename): either the
        journal exists with a complete, fsync'd ``run-open`` line, or it
        does not exist at all.
        """
        validate_run_id(run_id)
        path = journal_path(cache_dir, run_id)
        if path.exists():
            raise ConfigurationError(
                "journal %s already exists (run id %r was already used; "
                "resume it with --resume, or pick a fresh id)" % (path, run_id)
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        event = dict(header, event="run-open", schema=JOURNAL_SCHEMA, run_id=run_id)
        scratch = path.with_name("%s.tmp.%d" % (path.name, os.getpid()))
        with open(scratch, "wb") as handle:
            handle.write(_encode(event))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, path)
        return cls(path, run_id, open(path, "ab"))

    @classmethod
    def open_existing(cls, path):
        """Reopen an interrupted (or closed) journal for appending."""
        path = pathlib.Path(path)
        run_id = path.name[: -len(".jsonl")] if path.name.endswith(".jsonl") else path.name
        return cls(path, run_id, open(path, "ab"))

    # -- appends -----------------------------------------------------------

    def append(self, event, **fields):
        """One fsync'd JSONL line; returns only after it is durable."""
        record = dict(fields, event=event)
        self._handle.write(_encode(record))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def cell_submitted(self, cell_id):
        self.append("cell-submitted", cell=cell_id)

    def cell_completed(self, cell_id, key, payload_sha256, source):
        self.append(
            "cell-completed",
            cell=cell_id,
            key=key,
            payload_sha256=payload_sha256,
            source=source,
        )

    def cell_failed(self, cell_id, kind, error):
        self.append("cell-failed", cell=cell_id, kind=kind, error=error)

    def cell_quarantined(self, cell_id, key):
        self.append("cell-quarantined", cell=cell_id, key=key)

    def run_resume(self, jobs):
        self.append("run-resume", run_id=self.run_id, jobs=jobs)

    def run_close(self, report_sha256, partial):
        self.append("run-close", report_sha256=report_sha256, partial=partial)

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *_exc_info):
        self.close()
        return False


def _encode(record):
    return (
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


@dataclasses.dataclass
class JournalState:
    """Everything replay learned from one journal file."""

    path: pathlib.Path
    run_id: str
    header: dict  # the run-open event, verbatim
    completed: dict  # cell id -> {"key", "payload_sha256", "source"}
    submitted: list  # cell ids, in submission order (first occurrence)
    failed: list  # cell-failed events, in order
    quarantined: list  # cell-quarantined events, in order
    events: int  # decoded event count (torn tail excluded)
    resumes: int  # run-resume events seen
    closed: bool  # the journal's final decoded event is run-close
    torn_tail: bool  # the final line was partial and was ignored


def replay(path):
    """Parse a journal into a :class:`JournalState`.

    Tolerates a torn final line (the append in flight at death); any
    other undecodable line raises :class:`JournalError`, as does a
    journal that does not open with a ``run-open`` of our schema.
    """
    path = pathlib.Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise JournalError("cannot read journal %s: %s" % (path, exc))
    chunks = raw.split(b"\n")
    events = []
    torn_tail = False
    for index, chunk in enumerate(chunks):
        if not chunk.strip():
            continue
        try:
            event = json.loads(chunk.decode("utf-8"))
            if not isinstance(event, dict) or "event" not in event:
                raise ValueError("not an event object")
        except (ValueError, UnicodeDecodeError):
            if all(not later.strip() for later in chunks[index + 1 :]):
                torn_tail = True  # the append in flight when the run died
                break
            raise JournalError(
                "corrupt journal %s: undecodable line %d is not the final "
                "line (torn tails are tolerated, interior corruption is not)"
                % (path, index + 1)
            )
        events.append(event)
    if not events:
        raise JournalError("journal %s holds no complete events" % path)
    header = events[0]
    if header.get("event") != "run-open":
        raise JournalError(
            "journal %s does not start with run-open (got %r)"
            % (path, header.get("event"))
        )
    if header.get("schema") != JOURNAL_SCHEMA:
        raise JournalError(
            "journal %s has schema %r, this build speaks %r"
            % (path, header.get("schema"), JOURNAL_SCHEMA)
        )
    state = JournalState(
        path=path,
        run_id=header.get("run_id", ""),
        header=header,
        completed={},
        submitted=[],
        failed=[],
        quarantined=[],
        events=len(events),
        resumes=0,
        closed=False,
        torn_tail=torn_tail,
    )
    seen_submitted = set()
    for event in events[1:]:
        kind = event["event"]
        if kind == "cell-completed":
            state.completed[event["cell"]] = {
                "key": event.get("key"),
                "payload_sha256": event.get("payload_sha256"),
                "source": event.get("source"),
            }
        elif kind == "cell-submitted":
            if event["cell"] not in seen_submitted:
                seen_submitted.add(event["cell"])
                state.submitted.append(event["cell"])
        elif kind == "cell-failed":
            state.failed.append(event)
        elif kind == "cell-quarantined":
            state.quarantined.append(event)
        elif kind == "run-resume":
            state.resumes += 1
        elif kind == "run-open":
            raise JournalError(
                "journal %s holds a second run-open event" % path
            )
    state.closed = events[-1]["event"] == "run-close"
    return state


def find_journal(cache_dir, run_ref):
    """Resolve ``--resume``'s argument to a journal path.

    ``latest`` picks the most recently modified journal under
    ``<cache>/journal/``; anything else is a literal run id.  Missing
    journals raise a ConfigurationError that lists what *is* resumable.
    """
    directory = journal_directory(cache_dir)
    if run_ref == "latest":
        candidates = sorted(
            directory.glob("*.jsonl"),
            key=lambda path: (path.stat().st_mtime, path.name),
        )
        if not candidates:
            raise ConfigurationError(
                "no journals under %s — nothing to resume" % directory
            )
        return candidates[-1]
    validate_run_id(run_ref)
    path = journal_path(cache_dir, run_ref)
    if not path.exists():
        known = sorted(entry.stem for entry in directory.glob("*.jsonl"))
        raise ConfigurationError(
            "no journal for run id %r under %s%s"
            % (
                run_ref,
                directory,
                " (known runs: %s)" % ", ".join(known) if known else "",
            )
        )
    return path
