"""Deterministic merge: cell payloads back into the suite's shapes.

Cells return plain JSON (so they can cross a process boundary and live
in the cache); this module *hydrates* those payloads back into the
dataclasses and orderings the reporting layer has always consumed — the
merged output of a parallel, partially cached run is byte-identical to
the pre-runner serial path (tests/test_runner_differential.py).

Order guarantees (what makes the merge deterministic):

* every assembler iterates the *canonical* key/config/workload tuples
  (``PLATFORM_ORDER``, ``cells.TCPRR_CONFIGS``, ...) — never the
  completion order of workers or dict order of the result map;
* within a Figure 4 column, workload order is the payload's insertion
  order, which every worker produces identically (``FIGURE4_WORKLOADS``
  order) because cells are deterministic;
* floats survive the JSON round-trip exactly (shortest-repr encoding),
  so derived values recomputed here (VHE speedups, ablation deltas)
  match the serial computation bit-for-bit.
"""

from repro.core import reporting
from repro.core.breakdown import BreakdownRow, HypercallBreakdown
from repro.core.irqbalance import AblationPoint
from repro.core.netanalysis import TcpRrResult
from repro.core.vhe_projection import VheComparison
from repro.paperdata import PLATFORM_ORDER
from repro.runner import cells
from repro.workloads import WorkloadResult


def _payload(results, spec):
    return results[spec.id].payload


def table2_results(results, keys=None):
    """{key: {microbenchmark: cycles}} — ``suite.run_table2``'s shape."""
    keys = keys or PLATFORM_ORDER
    return {key: dict(_payload(results, cells.micro(key))) for key in keys}


def breakdown_result(results):
    payload = _payload(results, cells.breakdown())
    return HypercallBreakdown(
        rows=[BreakdownRow(**row) for row in payload["rows"]],
        other_cycles=payload["other_cycles"],
        total_cycles=payload["total_cycles"],
    )


def table5_results(results, transactions=cells.DEFAULT_RR_TRANSACTIONS):
    """{config: TcpRrResult} in native/kvm/xen order."""
    return {
        config: TcpRrResult(**_payload(results, cells.tcprr(config, transactions)))
        for config in cells.TCPRR_CONFIGS
    }


def figure4_grid(results, keys=None, irq_vcpus=1):
    """{workload: {key: WorkloadResult}} — ``run_figure4``'s shape."""
    keys = keys or PLATFORM_ORDER
    columns = {
        key: _payload(results, cells.appcol(key, irq_vcpus)) for key in keys
    }
    return {
        workload: {
            key: WorkloadResult(**columns[key][workload]) for key in keys
        }
        for workload in columns[keys[0]]
    }


def ablation_grid(
    results, keys=cells.ABLATION_KEYS, workloads=cells.ABLATION_WORKLOADS
):
    """{(key, workload): AblationPoint} in the serial iteration order."""
    return {
        (key, workload): AblationPoint(
            **_payload(results, cells.ablation(key, workload))
        )
        for key in keys
        for workload in workloads
    }


def vhe_comparison(results):
    """Section VI comparison, rebuilt from the shared micro/appcol cells."""
    split = dict(_payload(results, cells.micro(cells.VHE_KEYS[0])))
    vhe = dict(_payload(results, cells.micro(cells.VHE_KEYS[1])))
    microbench = {
        name: (split[name], vhe[name], split[name] / vhe[name]) for name in split
    }
    grid = figure4_grid(results, list(cells.VHE_KEYS))
    applications = {}
    for workload, row in grid.items():
        split_norm = row[cells.VHE_KEYS[0]].normalized
        vhe_norm = row[cells.VHE_KEYS[1]].normalized
        applications[workload] = (
            split_norm,
            vhe_norm,
            (split_norm - vhe_norm) * 100.0,
        )
    return VheComparison(microbench=microbench, applications=applications)


def oversubscription_grid(
    results, keys=None, timeslices_us=cells.OVERSUB_TIMESLICES_US
):
    """{key: [sweep-point payload, ...]} across timeslice lengths."""
    keys = keys or PLATFORM_ORDER
    return {
        key: [
            dict(_payload(results, cells.oversub(key, timeslice)))
            for timeslice in timeslices_us
        ]
        for key in keys
    }


#: (section label, renderer) in paper order — the labels name sections
#: omitted from a partial (``keep_going``) report
_SECTIONS = (
    ("Table II", lambda results, transactions: reporting.render_table2(table2_results(results))),
    ("Table III", lambda results, transactions: reporting.render_table3(breakdown_result(results))),
    ("Table V", lambda results, transactions: reporting.render_table5(table5_results(results, transactions))),
    ("Figure 4", lambda results, transactions: reporting.render_figure4(figure4_grid(results), PLATFORM_ORDER)),
    ("Section V ablation", lambda results, transactions: reporting.render_ablation(ablation_grid(results))),
    ("Section VI VHE", lambda results, transactions: reporting.render_vhe(vhe_comparison(results))),
)


def full_report_text(results, transactions=cells.DEFAULT_RR_TRANSACTIONS, partial=False):
    """The whole evaluation section, in paper order, from merged cells.

    With ``partial=True`` (the ``keep_going`` degraded path) a section
    whose cells are missing from ``results`` is replaced by an explicit
    omission marker instead of raising — the surviving sections keep
    their exact serial bytes.
    """
    sections = []
    for label, render in _SECTIONS:
        try:
            sections.append(render(results, transactions))
        except KeyError as exc:
            if not partial:
                raise
            missing = exc.args[0] if exc.args else "?"
            sections.append(
                "[%s omitted: cell %s failed and --keep-going was set]"
                % (label, missing)
            )
    return "\n\n".join(sections)
