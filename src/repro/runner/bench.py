"""``python -m repro bench``: the suite's perf trajectory, measured.

Runs the full bench cell grid (every report cell plus the
oversubscription sweep) through the runner and emits a
``BENCH_suite.json`` artifact: wall time and simulated cycles per cell,
cache hit/miss counts, resilience activity (retries, degradations,
quarantines — see DESIGN.md "Runner failure model"), and the sha256 of
the rendered report so CI can assert a warm-cache rerun reproduced the
suite byte-for-byte without re-simulating anything.

Document schema (``tools/validate_bench.py`` is the CI check):

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "jobs": 4,
      "cache": {"enabled": true, "directory": "...", "hits": 0, "misses": 34},
      "cells": [
        {"id": "micro[key=kvm-arm]", "kind": "micro", "params": {"key": "kvm-arm"},
         "source": "run", "wall_ms": 12.3, "simulated_cycles": 123456,
         "engines": 2, "attempts": 1, "degraded": false}
      ],
      "totals": {"cells": 34, "wall_ms": 900.1, "simulated_cycles": 1234567890},
      "resilience": {
        "policy": {"max_retries": 2, "cell_timeout_s": null, "keep_going": false},
        "retries": 0, "requeues": 0, "timeouts": 0, "pool_crashes": 0,
        "corrupt_payloads": 0, "degraded": 0, "failed": 0, "quarantined": 0,
        "swept_tmp": 0
      },
      "perf": {
        "fastpath": {"enabled": true, "hits": 120, "misses": 0,
                     "recordings": 10, "rejects": 0, "hit_rate": 0.92},
        "probe": {"ops": 20000,
                  "interp": {"wall_s": 0.8, "cycles": 65316325,
                             "cycles_per_sec": 81645406.0},
                  "fast": {"wall_s": 0.1, "cycles": 65316325,
                           "cycles_per_sec": 653163250.0},
                  "speedup": 8.0, "cycles_equal": true}
      },
      "failed_cells": [],
      "report_sha256": "..."
    }

The ``perf`` block is the fast lane's scoreboard: aggregated lane
counters over every freshly-run cell (cache hits contribute nothing —
the lane never enters the cache key) plus a warm-lane throughput probe.
CI gates on ``probe.cycles_equal`` and ``probe.speedup``.

``failed_cells`` is present only when ``--keep-going`` swallowed
failures; the report then carries explicit section-omission markers and
``partial`` is true.
"""

import dataclasses
import hashlib
import json
import os
import time

from repro.obs import MetricsRegistry
from repro.runner import cells, faults, journal as journal_mod, merge
from repro.runner.cache import ResultCache, model_fingerprint
from repro.runner.journal import JournalError, RunJournal
from repro.runner.pool import RESILIENCE_COUNTERS, run_cells_outcome
from repro.runner.resilience import RetryPolicy

BENCH_SCHEMA = "repro-bench/1"
DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_DOCUMENT_PATH = "BENCH_suite.json"

#: hypercall round trips per mode in the warm-lane throughput probe
PROBE_OPS = 20000


@dataclasses.dataclass
class BenchOutcome:
    """The rendered report plus the BENCH_suite.json document."""

    report: str
    document: dict

    @property
    def summary(self):
        totals = self.document["totals"]
        cache = self.document["cache"]
        resilience_block = self.document["resilience"]
        text = (
            "bench: %d cells in %.0f ms wall (%d simulated cycles), "
            "cache %s: %d hits / %d misses"
            % (
                totals["cells"],
                totals["wall_ms"],
                totals["simulated_cycles"],
                "on" if cache["enabled"] else "off",
                cache["hits"],
                cache["misses"],
            )
        )
        noisy = {
            name: resilience_block[name]
            for name in (
                "retries",
                "requeues",
                "timeouts",
                "pool_crashes",
                "corrupt_payloads",
                "degraded",
                "failed",
                "quarantined",
            )
            if resilience_block.get(name)
        }
        if noisy:
            text += "; resilience: " + ", ".join(
                "%s=%d" % item for item in sorted(noisy.items())
            )
        return text


def _journal_header(cache, specs, jobs, transactions, policy):
    """The ``run-open`` payload: everything a sound resume must match."""
    return {
        "fingerprint": cache.base_fingerprint(),
        "cells": [spec.id for spec in specs],
        "jobs": jobs,
        "transactions": transactions,
        "policy": {
            "max_retries": policy.max_retries,
            "cell_timeout_s": policy.cell_timeout_s,
            "keep_going": policy.keep_going,
        },
        "fault_plan": os.environ.get(faults.ENV_VAR) or None,
    }


def run_bench(
    jobs=1,
    cache_dir=DEFAULT_CACHE_DIR,
    use_cache=True,
    transactions=cells.DEFAULT_RR_TRANSACTIONS,
    policy=None,
    probe_ops=None,
    run_id=None,
):
    """Run the bench grid; returns a :class:`BenchOutcome`.

    The rendered report is byte-identical to ``suite.full_report()`` —
    the bench grid is a superset of the report cells, and the merge is
    the same code path.  ``policy`` (a
    :class:`~repro.runner.resilience.RetryPolicy`) defaults to the
    ``REPRO_MAX_RETRIES`` / ``REPRO_CELL_TIMEOUT`` / ``REPRO_KEEP_GOING``
    environment; under ``keep_going`` a run with failed cells still
    yields a (partial) report and document with a ``failed_cells``
    section.

    With the cache enabled the run is journaled under
    ``<cache>/journal/<run_id>.jsonl`` (``run_id`` falls back to
    ``REPRO_RUN_ID``, then to a generated id), which is what makes a
    killed run recoverable via :func:`resume_bench`.
    """
    cache = ResultCache(cache_dir) if use_cache else None
    policy = policy if policy is not None else RetryPolicy.from_env()
    metrics = MetricsRegistry()
    specs = cells.bench_cells(transactions)
    journal = None
    if cache is not None:
        if run_id is None:
            run_id = os.environ.get(journal_mod.ENV_RUN_ID) or journal_mod.generate_run_id()
        journal = RunJournal.create(
            cache_dir, run_id, _journal_header(cache, specs, jobs, transactions, policy)
        )
    start = time.perf_counter()
    try:
        outcome = run_cells_outcome(
            specs, jobs=jobs, cache=cache, policy=policy, metrics=metrics,
            journal=journal,
        )
        wall_ms = (time.perf_counter() - start) * 1000.0
        report = merge.full_report_text(
            outcome.results, transactions, partial=bool(outcome.failures)
        )
        if probe_ops is None:
            # test seam: REPRO_BENCH_PROBE_OPS shrinks the probe where wall
            # time matters more than a stable speedup figure
            probe_ops = int(os.environ.get("REPRO_BENCH_PROBE_OPS", PROBE_OPS))
        perf = _perf_block(outcome, probe_ops)
        document = _build_document(
            outcome, jobs, policy, cache, cache_dir, wall_ms, report, perf
        )
        if journal is not None:
            document["journal"] = {
                "run_id": journal.run_id,
                "path": str(journal.path),
                "resumed": False,
                "completed_before": 0,
                "resimulated": sum(
                    1 for result in outcome.results.values() if result.source == "run"
                ),
                "torn_tail": False,
            }
            journal.run_close(
                document["report_sha256"], bool(outcome.failures)
            )
    finally:
        if journal is not None:
            journal.close()
    return BenchOutcome(report=report, document=document)


def resume_bench(
    run_ref="latest",
    jobs=None,
    cache_dir=DEFAULT_CACHE_DIR,
    policy=None,
    probe_ops=None,
):
    """``bench --resume``: pick up an interrupted journaled run.

    Replays the journal, refuses if the model fingerprint or cost
    tables drifted since ``run-open`` (completed cells would no longer
    be trustworthy), re-plans the same cell grid — journal-completed
    cells resolve as verified cache hits, everything else re-simulates —
    and emits a report byte-identical to an uninterrupted run.  ``jobs``
    defaults to the original run's width but may differ (worker fan-out
    cannot change payloads).  Raises
    :class:`~repro.runner.journal.JournalError` on violated invariants
    and ``ConfigurationError`` when there is nothing to resume.
    """
    path = journal_mod.find_journal(cache_dir, run_ref)
    state = journal_mod.replay(path)
    cache = ResultCache(cache_dir)
    live = cache.base_fingerprint()
    recorded = state.header.get("fingerprint")
    if recorded != live:
        raise JournalError(
            "refusing to resume %s: the cache base fingerprint drifted "
            "(journal %s…, live %s…) — the model source or cost tables "
            "changed since run-open, so completed cells are stale; rerun "
            "the bench from scratch" % (state.run_id, (recorded or "")[:12], live[:12])
        )
    transactions = state.header.get("transactions", cells.DEFAULT_RR_TRANSACTIONS)
    specs = cells.bench_cells(transactions)
    if [spec.id for spec in specs] != state.header.get("cells"):
        raise JournalError(
            "refusing to resume %s: the bench cell grid changed since "
            "run-open (journal lists %d cells, this build plans %d)"
            % (state.run_id, len(state.header.get("cells") or ()), len(specs))
        )
    if jobs is None:
        jobs = state.header.get("jobs", 1)
    if policy is None:
        header_policy = state.header.get("policy") or {}
        policy = RetryPolicy(
            max_retries=header_policy.get("max_retries", 2),
            cell_timeout_s=header_policy.get("cell_timeout_s"),
            keep_going=header_policy.get("keep_going", False),
        )
    metrics = MetricsRegistry()
    journal = RunJournal.open_existing(path)
    start = time.perf_counter()
    try:
        journal.run_resume(jobs)
        outcome = run_cells_outcome(
            specs, jobs=jobs, cache=cache, policy=policy, metrics=metrics,
            journal=journal,
        )
        for cell_id, record in state.completed.items():
            result = outcome.results.get(cell_id)
            expected = record.get("payload_sha256")
            if result is not None and expected and result.payload_sha256 != expected:
                raise JournalError(
                    "resume invariant violated for cell %s: journal recorded "
                    "payload %s…, resume produced %s… (cache/journal "
                    "disagreement)" % (cell_id, expected[:12], result.payload_sha256[:12])
                )
        wall_ms = (time.perf_counter() - start) * 1000.0
        report = merge.full_report_text(
            outcome.results, transactions, partial=bool(outcome.failures)
        )
        if probe_ops is None:
            probe_ops = int(os.environ.get("REPRO_BENCH_PROBE_OPS", PROBE_OPS))
        perf = _perf_block(outcome, probe_ops)
        document = _build_document(
            outcome, jobs, policy, cache, cache_dir, wall_ms, report, perf
        )
        document["journal"] = {
            "run_id": journal.run_id,
            "path": str(journal.path),
            "resumed": True,
            "completed_before": len(state.completed),
            "resimulated": sum(
                1 for result in outcome.results.values() if result.source == "run"
            ),
            "torn_tail": state.torn_tail,
        }
        journal.run_close(document["report_sha256"], bool(outcome.failures))
    finally:
        journal.close()
    return BenchOutcome(report=report, document=document)


def _fastlane_probe(ops):
    """Warm-lane throughput: the same hypercall storm, lane on vs off.

    The probe forces the lane state explicitly (independent of
    ``REPRO_FASTPATH``) so the fastpath-off CI run still measures — and
    gates on — the same speedup.  ``cycles`` must be identical in both
    modes; ``wall_s`` is host time, legitimate here because it measures
    the runner's own throughput, never the model.
    """
    from repro.core.testbed import build_testbed

    modes = {}
    for mode in ("interp", "fast"):
        bed = build_testbed("kvm-arm")
        bed.machine.fastlane.enabled = mode == "fast"
        hv = bed.hypervisor
        vcpu = bed.vm.vcpu(0)
        hv.install_guest(vcpu)
        engine = bed.engine
        start = time.perf_counter()
        for _ in range(ops):
            engine.spawn(hv.run_hypercall(vcpu), "probe")
            engine.run()
        wall_s = time.perf_counter() - start
        modes[mode] = {
            "wall_s": wall_s,
            "cycles": engine.now,
            "cycles_per_sec": engine.now / wall_s if wall_s > 0 else 0.0,
        }
    interp, fast = modes["interp"], modes["fast"]
    return {
        "ops": ops,
        "interp": interp,
        "fast": fast,
        "speedup": interp["wall_s"] / fast["wall_s"] if fast["wall_s"] > 0 else 0.0,
        "cycles_equal": interp["cycles"] == fast["cycles"],
    }


def _perf_block(outcome, probe_ops):
    from repro.sim.fastpath import fastpath_enabled

    lane = {"hits": 0, "misses": 0, "recordings": 0, "rejects": 0}
    for result in outcome.results.values():
        for name, count in result.fastpath.items():
            lane[name] = lane.get(name, 0) + count
    attempts = sum(lane.values())
    return {
        "fastpath": dict(
            lane,
            enabled=fastpath_enabled(),
            hit_rate=lane["hits"] / attempts if attempts else 0.0,
        ),
        "probe": _fastlane_probe(probe_ops),
    }


def _build_document(outcome, jobs, policy, cache, cache_dir, wall_ms, report, perf):
    cell_rows = [
        {
            "id": result.spec.id,
            "kind": result.spec.kind,
            "params": result.spec.params_dict(),
            "source": result.source,
            "wall_ms": result.wall_ms,
            "simulated_cycles": result.simulated_cycles,
            "engines": result.engines,
            "attempts": result.attempts,
            "degraded": result.degraded,
        }
        for result in outcome.results.values()
    ]
    counters = {
        name.rsplit(".", 1)[-1]: outcome.metrics.get(name).value
        for name in RESILIENCE_COUNTERS
    }
    document = {
        "schema": BENCH_SCHEMA,
        "jobs": jobs,
        "model_fingerprint": model_fingerprint(),
        "cache": {
            "enabled": cache is not None,
            "directory": str(cache_dir) if cache is not None else None,
            "hits": cache.hits if cache is not None else 0,
            "misses": cache.misses if cache is not None else 0,
        },
        "cells": cell_rows,
        "totals": {
            "cells": len(cell_rows),
            "wall_ms": wall_ms,
            "simulated_cycles": sum(row["simulated_cycles"] for row in cell_rows),
        },
        "resilience": dict(
            counters,
            policy={
                "max_retries": policy.max_retries,
                "cell_timeout_s": policy.cell_timeout_s,
                "keep_going": policy.keep_going,
            },
            swept_tmp=cache.swept_tmp if cache is not None else 0,
            # scoreboard (ROADMAP item 5): run-level throughput figures
            wall_clock_s=wall_ms / 1000.0,
            cells_per_second=(
                len(cell_rows) / (wall_ms / 1000.0) if wall_ms > 0 else 0.0
            ),
            cache_hit_rate=(
                cache.hits / (cache.hits + cache.misses)
                if cache is not None and (cache.hits + cache.misses)
                else 0.0
            ),
        ),
        "perf": perf,
        "report_sha256": hashlib.sha256(report.encode("utf-8")).hexdigest(),
    }
    if outcome.failures:
        document["partial"] = True
        document["failed_cells"] = [failed.as_dict() for failed in outcome.failures]
    return document


def verify_cache(cache_dir=DEFAULT_CACHE_DIR):
    """``--cache-verify``: re-hash every entry, quarantining mismatches.

    Returns the per-entry report rows from
    :meth:`~repro.runner.cache.ResultCache.verify_entries`.
    """
    return ResultCache(cache_dir).verify_entries()


def write_document(path, document):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


#: one-line-per-run scoreboard history (ROADMAP item 5)
HISTORY_SCHEMA = "repro-bench-history/1"


def history_line(document):
    """Distill a bench document into one scoreboard row.

    The row is the committed-history counterpart of the ``resilience``
    scoreboard fields: enough to plot the suite's throughput trajectory
    across runs without carrying per-cell payloads.
    """
    resilience = document["resilience"]
    fastpath = document["perf"]["fastpath"]
    return {
        "schema": HISTORY_SCHEMA,
        "report_sha256": document["report_sha256"],
        "jobs": document["jobs"],
        "cells": document["totals"]["cells"],
        "wall_clock_s": resilience["wall_clock_s"],
        "cells_per_second": resilience["cells_per_second"],
        "cache_hit_rate": resilience["cache_hit_rate"],
        "fastpath_enabled": fastpath["enabled"],
        "fastpath_hits": fastpath["hits"],
        "partial": bool(document.get("partial", False)),
    }


def append_history(path, document):
    """Append the run's scoreboard line to a JSONL history file."""
    line = history_line(document)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")
    return line
