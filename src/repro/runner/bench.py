"""``python -m repro bench``: the suite's perf trajectory, measured.

Runs the full bench cell grid (every report cell plus the
oversubscription sweep) through the runner and emits a
``BENCH_suite.json`` artifact: wall time and simulated cycles per cell,
cache hit/miss counts, and the sha256 of the rendered report so CI can
assert a warm-cache rerun reproduced the suite byte-for-byte without
re-simulating anything.

Document schema (``tools/validate_bench.py`` is the CI check):

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "jobs": 4,
      "cache": {"enabled": true, "directory": "...", "hits": 0, "misses": 34},
      "cells": [
        {"id": "micro[key=kvm-arm]", "kind": "micro", "params": {"key": "kvm-arm"},
         "source": "run", "wall_ms": 12.3, "simulated_cycles": 123456, "engines": 2}
      ],
      "totals": {"cells": 34, "wall_ms": 900.1, "simulated_cycles": 1234567890},
      "report_sha256": "..."
    }
"""

import dataclasses
import hashlib
import json
import time

from repro.runner import cells, merge
from repro.runner.cache import ResultCache, model_fingerprint
from repro.runner.pool import run_cells

BENCH_SCHEMA = "repro-bench/1"
DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_DOCUMENT_PATH = "BENCH_suite.json"


@dataclasses.dataclass
class BenchOutcome:
    """The rendered report plus the BENCH_suite.json document."""

    report: str
    document: dict

    @property
    def summary(self):
        totals = self.document["totals"]
        cache = self.document["cache"]
        return (
            "bench: %d cells in %.0f ms wall (%d simulated cycles), "
            "cache %s: %d hits / %d misses"
            % (
                totals["cells"],
                totals["wall_ms"],
                totals["simulated_cycles"],
                "on" if cache["enabled"] else "off",
                cache["hits"],
                cache["misses"],
            )
        )


def run_bench(
    jobs=1,
    cache_dir=DEFAULT_CACHE_DIR,
    use_cache=True,
    transactions=cells.DEFAULT_RR_TRANSACTIONS,
):
    """Run the bench grid; returns a :class:`BenchOutcome`.

    The rendered report is byte-identical to ``suite.full_report()`` —
    the bench grid is a superset of the report cells, and the merge is
    the same code path.
    """
    cache = ResultCache(cache_dir) if use_cache else None
    specs = cells.bench_cells(transactions)
    start = time.perf_counter()
    results = run_cells(specs, jobs=jobs, cache=cache)
    wall_ms = (time.perf_counter() - start) * 1000.0
    report = merge.full_report_text(results, transactions)
    document = _build_document(results, jobs, cache, cache_dir, wall_ms, report)
    return BenchOutcome(report=report, document=document)


def _build_document(results, jobs, cache, cache_dir, wall_ms, report):
    cell_rows = [
        {
            "id": result.spec.id,
            "kind": result.spec.kind,
            "params": result.spec.params_dict(),
            "source": result.source,
            "wall_ms": result.wall_ms,
            "simulated_cycles": result.simulated_cycles,
            "engines": result.engines,
        }
        for result in results.values()
    ]
    return {
        "schema": BENCH_SCHEMA,
        "jobs": jobs,
        "model_fingerprint": model_fingerprint(),
        "cache": {
            "enabled": cache is not None,
            "directory": str(cache_dir) if cache is not None else None,
            "hits": cache.hits if cache is not None else 0,
            "misses": cache.misses if cache is not None else 0,
        },
        "cells": cell_rows,
        "totals": {
            "cells": len(cell_rows),
            "wall_ms": wall_ms,
            "simulated_cycles": sum(row["simulated_cycles"] for row in cell_rows),
        },
        "report_sha256": hashlib.sha256(report.encode("utf-8")).hexdigest(),
    }


def write_document(path, document):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
