"""Deterministic fault injection for the runner (chaos testing only).

The resilience machinery in :mod:`repro.runner.resilience` /
:mod:`repro.runner.pool` has to be provable without real flakiness:
tests and the CI chaos job cannot wait for a genuine segfault or OOM
kill.  This module injects those failures *on demand*, driven by a plan
that is deterministic per cell and per attempt, so every chaos run is
exactly reproducible.

Faults are injected **only** when the ``REPRO_FAULT_PLAN`` environment
variable is set — either to an inline JSON document or to the path of a
JSON file.  With the variable unset every hook in this module is a
no-op, which is what keeps production runs byte-identical to the
pre-resilience runner.

Plan document::

    {
      "name": "crash-then-recover",        # optional: distinguishes plans
      "seed": 0,                           # optional: reserved namespace salt
      "faults": [
        {"cell": "micro[key=kvm-arm]", "kind": "crash", "times": 1},
        {"cell": "breakdown", "kind": "hang", "times": 1, "seconds": 30},
        {"cell": "tcprr[config=native,transactions=40]",
         "kind": "transient", "times": 2}
      ]
    }

Fault kinds:

* ``crash`` — the worker process hard-exits (``os._exit``), exactly like
  a segfault or the OOM killer; in-process execution (``jobs=1`` or the
  degraded serial rung) converts it to a raised :class:`InjectedFault`
  so the parent survives;
* ``hang`` — the worker sleeps ``seconds`` (default 30), exactly like a
  deadlocked cell; in-process it raises instead of sleeping;
* ``transient`` — raises :class:`InjectedFault` (a retryable error);
* ``corrupt-payload`` — the cell runs normally but its payload is
  scribbled *after* the integrity digest is computed, so the parent's
  hash verification catches it;
* ``poison-cache-entry`` — the entry just stored for the cell is
  overwritten with garbage, so the next read must quarantine it;
* ``parent-kill`` — the *parent* process hard-exits (``os._exit(137)``,
  the ``kill -9`` status) immediately after the cell's result has been
  cached and journaled — the exact durability point the run journal
  promises ``bench --resume`` can recover from.

Worker-side kinds (crash/hang/transient/corrupt-payload) fire while the
cell's attempt index is below the rule's cumulative ``times`` budget —
attempt indices advance on every (re)submission, so a ``times: 1`` crash
fires exactly once and the retry succeeds.  ``poison-cache-entry`` fires
on the first ``times`` stores of the cell, counted in the parent process
(stores never happen in workers).  ``parent-kill`` fires on the first
``times`` *journaled completions* of the cell, also parent-side; a
resumed run never re-executes the cell (it is a cache hit), so the same
plan does not re-kill the resume.
"""

import json
import os
import time

from repro.errors import ConfigurationError, ReproError

#: environment variable holding the plan (inline JSON or a file path)
ENV_VAR = "REPRO_FAULT_PLAN"

#: kinds decided by the cell's attempt index (fire in whichever process
#: executes the cell)
WORKER_KINDS = ("crash", "hang", "transient", "corrupt-payload")
#: kinds decided by a parent-process counter (stores / completions)
PARENT_KINDS = ("poison-cache-entry", "parent-kill")
ALL_KINDS = WORKER_KINDS + PARENT_KINDS

#: what a poisoned entry is overwritten with (deliberately unparseable)
POISON_BYTES = b"\x00\xffpoisoned-by-fault-plan\x00"

_IN_WORKER = False
_CACHED_PLAN = (None, None)  # (env text, parsed FaultPlan)


class InjectedFault(ReproError):
    """A deliberately injected, retryable cell failure."""

    def __init__(self, cell_id, kind, attempt):
        super().__init__(
            "injected %s fault on cell %s (attempt %d)" % (kind, cell_id, attempt)
        )
        self.cell_id = cell_id
        self.kind = kind
        self.attempt = attempt

    def __reduce__(self):
        return (type(self), (self.cell_id, self.kind, self.attempt))


class FaultRule:
    """One plan entry: fire ``kind`` on ``cell`` for ``times`` attempts."""

    __slots__ = ("cell", "kind", "times", "seconds")

    def __init__(self, cell, kind, times=1, seconds=30.0):
        if not isinstance(cell, str) or not cell:
            raise ConfigurationError("fault rule cell must be a non-empty string")
        if kind not in ALL_KINDS:
            raise ConfigurationError(
                "unknown fault kind %r (expected one of %s)" % (kind, list(ALL_KINDS))
            )
        if not isinstance(times, int) or isinstance(times, bool) or times < 1:
            raise ConfigurationError("fault rule times must be an int >= 1")
        self.cell = cell
        self.kind = kind
        self.times = times
        self.seconds = float(seconds)

    def __repr__(self):
        return "FaultRule(%r, %r, times=%d)" % (self.cell, self.kind, self.times)


class FaultPlan:
    """A parsed plan: per-cell rules plus parent-side poison counters."""

    def __init__(self, rules, name="", seed=0):
        self.name = name
        self.seed = seed
        self.rules = list(rules)
        self._poison_fired = {}  # cell id -> stores poisoned so far
        self._kill_fired = {}  # cell id -> completions killed so far

    def worker_rules(self, cell_id):
        return [
            rule
            for rule in self.rules
            if rule.cell == cell_id and rule.kind in WORKER_KINDS
        ]

    def worker_fault_for(self, cell_id, attempt):
        """The rule firing on this attempt, or None.

        Rules for a cell consume attempt indices in plan order: a plan
        with ``crash times=1`` then ``transient times=2`` fires crash on
        attempt 0 and transient on attempts 1-2.
        """
        budget = 0
        for rule in self.worker_rules(cell_id):
            budget += rule.times
            if attempt < budget:
                return rule
        return None

    def should_poison(self, cell_id):
        """True if the store that just happened for cell must be poisoned."""
        budget = sum(
            rule.times
            for rule in self.rules
            if rule.cell == cell_id and rule.kind == "poison-cache-entry"
        )
        if budget == 0:
            return False
        fired = self._poison_fired.get(cell_id, 0)
        if fired >= budget:
            return False
        self._poison_fired[cell_id] = fired + 1
        return True

    def should_kill_parent(self, cell_id):
        """True if the completion that just journaled must kill the parent."""
        budget = sum(
            rule.times
            for rule in self.rules
            if rule.cell == cell_id and rule.kind == "parent-kill"
        )
        if budget == 0:
            return False
        fired = self._kill_fired.get(cell_id, 0)
        if fired >= budget:
            return False
        self._kill_fired[cell_id] = fired + 1
        return True


def parse(text):
    """Parse a plan document (inline JSON string) into a FaultPlan."""
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise ConfigurationError("invalid %s JSON: %s" % (ENV_VAR, exc))
    if not isinstance(document, dict) or not isinstance(document.get("faults"), list):
        raise ConfigurationError(
            "%s must be a JSON object with a 'faults' list" % ENV_VAR
        )
    rules = []
    for index, raw in enumerate(document["faults"]):
        if not isinstance(raw, dict):
            raise ConfigurationError("fault rule %d is not an object" % index)
        rules.append(
            FaultRule(
                cell=raw.get("cell"),
                kind=raw.get("kind"),
                times=raw.get("times", 1),
                seconds=raw.get("seconds", 30.0),
            )
        )
    return FaultPlan(
        rules, name=document.get("name", ""), seed=document.get("seed", 0)
    )


def active_plan(environ=None):
    """The plan named by ``REPRO_FAULT_PLAN``, or None.

    The parsed plan is cached per environment value so parent-side
    counters (poison budgets) persist across calls within one process;
    changing the variable (or its ``name``/``seed``) yields a fresh plan
    with fresh counters.
    """
    global _CACHED_PLAN
    text = (environ if environ is not None else os.environ).get(ENV_VAR)
    if not text:
        return None
    if _CACHED_PLAN[0] == text:
        return _CACHED_PLAN[1]
    source = text
    if not text.lstrip().startswith("{"):
        try:
            # repro-lint: ignore[CON003] — reads the fault plan exactly
            # once per process (cached above) and only when the chaos env
            # var points at a file; acceptable under _EXECUTE_LOCK.
            with open(text, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise ConfigurationError("cannot read %s file: %s" % (ENV_VAR, exc))
    plan = parse(source)
    _CACHED_PLAN = (text, plan)
    return plan


def reset_plan_cache():
    """Forget the cached plan (tests: fresh poison counters per case)."""
    global _CACHED_PLAN
    _CACHED_PLAN = (None, None)


def mark_worker_process():
    """Pool-worker initializer: crash/hang faults may act for real here."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker():
    return _IN_WORKER


def on_run_cell(cell_id, attempt):
    """Pre-execution hook (called from ``cells.run_cell``).

    No-op without an active plan.  ``crash`` hard-exits the process when
    running inside a pool worker (simulating a segfault); in-process it
    raises so the parent survives and can report the failure.  ``hang``
    sleeps in a worker (the watchdog must kill it) and raises
    in-process.  ``transient`` always raises.
    """
    plan = active_plan()
    if plan is None:
        return
    rule = plan.worker_fault_for(cell_id, attempt)
    if rule is None or rule.kind == "corrupt-payload":
        return
    if rule.kind == "crash":
        if in_worker():
            os._exit(13)
        raise InjectedFault(cell_id, "crash", attempt)
    if rule.kind == "hang":
        if in_worker():
            # repro-lint: ignore[CON] — deliberate chaos: the hang fault
            # *exists* to stall a pool worker until the watchdog kills it;
            # the in_worker() guard keeps it out of threaded contexts.
            time.sleep(rule.seconds)
            # if the watchdog never killed us, fail loudly rather than
            # returning a payload that looks healthy
        raise InjectedFault(cell_id, "hang", attempt)
    raise InjectedFault(cell_id, "transient", attempt)


def corrupts_payload(cell_id, attempt):
    """True if this attempt's payload must be scribbled post-digest."""
    plan = active_plan()
    if plan is None:
        return False
    rule = plan.worker_fault_for(cell_id, attempt)
    return rule is not None and rule.kind == "corrupt-payload"


def maybe_poison_entry(cell_id, path):
    """Post-store hook (called from ``cache.store``): scribble the entry."""
    plan = active_plan()
    if plan is not None and plan.should_poison(cell_id):
        with open(path, "wb") as handle:
            handle.write(POISON_BYTES)
        return True
    return False


def maybe_parent_kill(cell_id):
    """Post-journal hook (called from the pool's accept path).

    Fires *after* the cell's result is cached and its ``cell-completed``
    journal line is durable — ``os._exit(137)`` here is indistinguishable
    from ``kill -9`` landing at the journal's strongest point, which is
    exactly what the resume acceptance test needs to hit on demand.
    Never fires inside a pool worker (workers do not journal).
    """
    plan = active_plan()
    if plan is not None and not in_worker() and plan.should_kill_parent(cell_id):
        os._exit(137)
