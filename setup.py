"""Legacy setup shim: this environment lacks the `wheel` package, so the
PEP-517 editable path (which requires bdist_wheel) fails; `pip install -e .`
falls back to `setup.py develop` via --no-use-pep517."""
from setuptools import setup

setup()
