"""Ablations for design choices the paper's text calls out.

* vAPIC (Section IV): "newer x86 hardware with vAPIC support should
  perform more comparably to ARM" on virtual IRQ completion.
* 1 GbE (Section III): "many benchmarks were unaffected by
  virtualization when run over 1 Gb Ethernet, because the network
  itself became the bottleneck."
* TSO autosizing (Section V): tuning the guest's TCP configuration
  "significantly reduced the overhead of Xen on TCP_MAERTS."
* Zero-copy Xen (Section V): whether ARM's broadcast TLB invalidate
  makes Xen zero copy viable "remains to be investigated" — our model
  investigates it.
"""

import dataclasses

import pytest

from repro.core.appbench import make_context
from repro.core.derived import measure_derived_costs
from repro.core.microbench import MicrobenchmarkSuite
from repro.core.testbed import build_testbed
from repro.workloads.netperf import NetperfMaerts, NetperfStream


def test_vapic_makes_x86_completion_arm_like(once):
    def run_both():
        stock = MicrobenchmarkSuite(build_testbed("kvm-x86")).run_all()
        vapic = MicrobenchmarkSuite(
            build_testbed("kvm-x86", vapic=True)
        ).virtual_irq_completion()
        return stock["Virtual IRQ Completion"], vapic.cycles

    trapped, assisted = once(run_both)
    print("\nEOI cost: trapped=%d cycles, vAPIC=%d cycles" % (trapped, assisted))
    assert trapped > 1000
    assert assisted < 100  # ARM-class, as the paper predicts


def test_1gbe_hides_xen_stream_overhead(once):
    derived = measure_derived_costs("xen-arm")

    def run_both():
        ten = NetperfStream().run(derived, make_context("xen-arm"))
        context = make_context("xen-arm")
        context.wire_bps = 1e9
        one = NetperfStream().run(derived, context)
        return ten, one

    ten_gbe, one_gbe = once(run_both)
    print(
        "\nXen ARM TCP_STREAM overhead: %.2fx at 10 GbE, %.2fx at 1 GbE"
        % (ten_gbe.normalized, one_gbe.normalized)
    )
    assert ten_gbe.normalized > 2.8
    assert one_gbe.normalized == pytest.approx(1.0)
    assert one_gbe.bottleneck == "wire"


def test_tso_autosizing_fix_recovers_xen_maerts(once):
    derived = measure_derived_costs("xen-arm")

    def run_both():
        bugged = NetperfMaerts().run(derived, make_context("xen-arm"))
        fixed = NetperfMaerts().run(
            derived, make_context("xen-arm", tso_autosizing_fixed=True)
        )
        return bugged, fixed

    bugged, fixed = once(run_both)
    print(
        "\nXen ARM TCP_MAERTS overhead: %.2fx bugged, %.2fx tuned"
        % (bugged.normalized, fixed.normalized)
    )
    assert bugged.normalized > 2.0
    assert fixed.normalized < bugged.normalized / 1.5


def test_zero_copy_xen_on_arm(once):
    derived = measure_derived_costs("xen-arm")

    def run_both():
        stock = NetperfStream().run(derived, make_context("xen-arm"))
        zero_copy = dataclasses.replace(
            derived,
            grant_copy_mtu=0,
            grant_copy_page=0,
            grant_copy_mtu_batched=0,
            grant_copy_page_batched=0,
        )
        hypothetical = NetperfStream().run(zero_copy, make_context("xen-arm"))
        return stock, hypothetical

    stock, hypothetical = once(run_both)
    print(
        "\nXen ARM TCP_STREAM overhead: %.2fx stock, %.2fx with zero copy"
        % (stock.normalized, hypothetical.normalized)
    )
    assert hypothetical.normalized < stock.normalized / 1.8
