"""Cross-validation bench: process-level hackbench vs the Figure 4 model.

Not a paper table by itself — it substantiates the Figure 4 Hackbench
bars with an emergent discrete-event result (queueing included).
"""

from repro.workloads.hackbench_sim import run_hackbench_comparison


def test_process_level_hackbench(once):
    results = once(run_hackbench_comparison, 24, 24)
    native = results["native"]
    print("\nProcess-level hackbench (normalized to native):")
    for key, result in results.items():
        print("  %-9s %.3f" % (key, result.normalized_to(native)))
    kvm = results["kvm-arm"].normalized_to(native)
    xen = results["xen-arm"].normalized_to(native)
    assert 1.0 < xen < kvm < 1.35
    assert kvm - xen < 0.20  # Xen's IPI advantage buys only a few points
