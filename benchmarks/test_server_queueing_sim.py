"""Cross-validation bench: emergent server queueing vs the Figure 4 model.

The Section V interrupt bottleneck, produced two independent ways —
closed-form stage capacities and a discrete-event closed-loop load
simulation — from the same measured operation costs.
"""

from repro.core.serversim import run_server_comparison


def test_server_queueing_emerges(once):
    def run_grid():
        return {
            irq_vcpus: run_server_comparison(irq_vcpus=irq_vcpus, requests=240)
            for irq_vcpus in (1, 4)
        }

    grid = once(run_grid)
    print("\nApache-like closed-loop load (normalized to native):")
    for irq_vcpus, results in grid.items():
        native = results["native"]
        print(
            "  irq_vcpus=%d: kvm-arm %.2f, xen-arm %.2f"
            % (
                irq_vcpus,
                results["kvm-arm"].normalized_to(native),
                results["xen-arm"].normalized_to(native),
            )
        )
    single_native = grid[1]["native"]
    spread_native = grid[4]["native"]
    assert grid[1]["xen-arm"].normalized_to(single_native) > 1.6
    assert grid[1]["kvm-arm"].normalized_to(single_native) > 1.2
    for key in ("kvm-arm", "xen-arm"):
        assert (
            grid[4][key].normalized_to(spread_native)
            < grid[1][key].normalized_to(single_native) - 0.1
        )
