"""Shared benchmark configuration.

Each benchmark module regenerates one table or figure of the paper and
prints it, so `pytest benchmarks/ --benchmark-only -s` reproduces the
whole evaluation section.  Simulations are deterministic, so a single
round per benchmark is meaningful.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (deterministic sims)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
