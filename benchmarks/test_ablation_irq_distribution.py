"""E7 — Section V ablation: distributing virtual interrupts across VCPUs.

Paper anchors: Apache KVM 35%->14%, Xen 84%->16%; Memcached KVM 26%->8%,
Xen 32%->9%.
"""

import pytest

from repro.core.irqbalance import run_irq_distribution_ablation
from repro.paperdata import IRQ_DISTRIBUTION_ABLATION


@pytest.fixture(scope="module")
def ablation():
    return run_irq_distribution_ablation()


def test_ablation_regeneration(once, ablation):
    from repro.core.suite import ablation_report

    print("\n" + once(ablation_report))
    for (key, workload), paper in IRQ_DISTRIBUTION_ABLATION.items():
        point = ablation[(key, workload)]
        assert point.single_overhead_pct == pytest.approx(paper["single"], abs=12)
        assert point.distributed_overhead_pct < point.single_overhead_pct / 2


@pytest.mark.parametrize("key,workload", list(IRQ_DISTRIBUTION_ABLATION))
def test_against_paper_anchors(ablation, key, workload):
    paper = IRQ_DISTRIBUTION_ABLATION[(key, workload)]
    point = ablation[(key, workload)]
    assert point.single_overhead_pct == pytest.approx(paper["single"], abs=12)
    assert point.distributed_overhead_pct == pytest.approx(paper["distributed"], abs=12)


def test_distribution_always_helps(ablation):
    for point in ablation.values():
        assert point.distributed_overhead_pct < point.single_overhead_pct / 2


def test_xen_apache_has_the_largest_drop(ablation):
    drops = {pair: point.improvement_pct for pair, point in ablation.items()}
    assert max(drops, key=drops.get) == ("xen-arm", "Apache")


def test_bottleneck_moves_off_vcpu0(ablation):
    for point in ablation.values():
        assert point.single_bottleneck == "vcpu0"
        assert point.distributed_bottleneck != "vcpu0"
