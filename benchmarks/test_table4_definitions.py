"""E4 — Table IV: the application benchmark definitions.

Regenerates the workload list and verifies every Figure 4 workload has a
runnable model.
"""

from repro.core.appbench import run_workload
from repro.core.reporting import render_table
from repro.workloads import FIGURE4_WORKLOADS

#: Table IV, reproduced as data.
TABLE4 = {
    "Kernbench": "Compilation of the Linux 3.17.0 kernel using allnoconfig for ARM with GCC 4.8.2.",
    "Hackbench": "hackbench with Unix domain sockets, 100 process groups x 500 loops.",
    "SPECjvm2008": "SPECjvm2008 on the Linaro AArch64 OpenJDK port.",
    "TCP_RR": "netperf v2.6.0 TCP_RR: 1-byte round trips, measures latency.",
    "TCP_STREAM": "netperf TCP_STREAM: bulk receive throughput into the server.",
    "TCP_MAERTS": "netperf TCP_MAERTS: bulk transmit throughput out of the server.",
    "Apache": "Apache v2.4.7 + ApacheBench v2.3 serving the 41 KB GCC manual at 100 concurrent requests.",
    "Memcached": "memcached v1.4.14 under memtier v1.2.3 defaults.",
    "MySQL": "MySQL 5.5.41 under SysBench 0.4.12, 200 parallel transactions.",
}


def test_table4_regeneration(once):
    rows = [[name, desc] for name, desc in TABLE4.items()]
    table = once(render_table, ["Benchmark", "Description"], rows, "Table IV")
    print("\n" + table)
    model_names = {workload.name for workload in FIGURE4_WORKLOADS}
    assert model_names == set(TABLE4)


def test_every_model_runs(once):
    def run_all():
        return [run_workload(w, "kvm-arm") for w in FIGURE4_WORKLOADS]

    results = once(run_all)
    assert all(result.normalized >= 1.0 for result in results)
