"""E6 — Table V: the netperf TCP_RR latency decomposition on ARM."""

import pytest

from repro.core.netanalysis import run_table5
from repro.core.reporting import render_table5
from repro.paperdata import TABLE5


@pytest.fixture(scope="module")
def table5():
    return run_table5(transactions=40)


def test_table5_regeneration(once, table5):
    table = once(render_table5, table5)
    print("\n" + table)
    for row, columns in TABLE5.items():
        if row == "Overhead":
            continue
        for config, paper in columns.items():
            if paper is None:
                continue
            sim = table5[config].as_dict()[row]
            assert sim == pytest.approx(paper, rel=0.25)


def test_overhead_row(table5):
    """Overhead/trans: paper 44.5 us (KVM) and 55.7 us (Xen)."""
    kvm = table5["kvm"].overhead_us(table5["native"])
    xen = table5["xen"].overhead_us(table5["native"])
    assert kvm == pytest.approx(44.5, rel=0.25)
    assert xen == pytest.approx(55.7, rel=0.25)
    assert xen > kvm
