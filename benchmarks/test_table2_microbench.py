"""E2 — Table II: microbenchmark cycle counts on all four platforms.

Regenerates the paper's central table.  Shape criteria (who wins, by
what rough factor) are asserted; absolute values are printed next to the
published numbers.
"""

import pytest

from repro.core.microbench import MicrobenchmarkSuite
from repro.core.reporting import render_table2
from repro.core.testbed import build_testbed
from repro.paperdata import PLATFORM_ORDER, TABLE2


@pytest.fixture(scope="module")
def measured():
    return {
        key: MicrobenchmarkSuite(build_testbed(key)).run_all() for key in PLATFORM_ORDER
    }


def test_table2_regeneration(once, measured):
    table = once(render_table2, measured)
    print("\n" + table)
    for row, columns in TABLE2.items():
        for key, paper in columns.items():
            assert measured[key][row] == pytest.approx(paper, rel=0.25)


def test_benchmark_one_platform_column(once):
    """Times a full 7-benchmark column on a fresh testbed."""
    results = once(lambda: MicrobenchmarkSuite(build_testbed("kvm-arm")).run_all())
    assert results["Hypercall"] > 10 * 376  # the Type 2 split-mode cost


def test_shape_type1_vs_type2_on_arm(measured):
    assert measured["kvm-arm"]["Hypercall"] > 10 * measured["xen-arm"]["Hypercall"]
    assert measured["xen-arm"]["I/O Latency Out"] > 2 * measured["kvm-arm"]["I/O Latency Out"]


def test_shape_arm_vs_x86(measured):
    assert measured["xen-arm"]["Hypercall"] * 3 < measured["xen-x86"]["Hypercall"]
    assert measured["kvm-arm"]["Virtual IRQ Completion"] < 100 < measured["kvm-x86"]["Virtual IRQ Completion"]
