"""Oversubscription bench: the consolidation cost of VM switches.

Extends Table II's VM Switch row into the scenario it stands for (two
VMs timesliced on one core).  Xen x86's 2x-costlier switch should show
up as measurably lower efficiency at tight timeslices.
"""

import pytest

from repro.core.oversubscription import sweep
from repro.paperdata import PLATFORM_ORDER


@pytest.fixture(scope="module")
def results():
    return sweep(PLATFORM_ORDER, timeslices_us=(100.0, 1000.0))


def test_oversubscription_sweep(once, results):
    print("\nCPU efficiency with two timesliced VMs per core:")
    print("%-10s %14s %14s" % ("platform", "100us slice", "1ms slice"))
    for key, points in once(lambda: results).items():
        print(
            "%-10s %13.1f%% %13.1f%%"
            % (key, points[0].efficiency * 100, points[1].efficiency * 100)
        )
    for key, points in results.items():
        tight, loose = points
        assert tight.efficiency < loose.efficiency  # switching amortizes
        assert loose.efficiency > 0.95


def test_xen_x86_pays_most_at_tight_slices(results):
    tight = {key: points[0].efficiency for key, points in results.items()}
    assert min(tight, key=tight.get) == "xen-x86"  # 10.5k-cycle switches


def test_switch_counts_scale_with_slice(results):
    for points in results.values():
        assert points[0].switches > points[1].switches * 5
