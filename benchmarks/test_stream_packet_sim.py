"""Cross-validation bench: packet-level TCP_STREAM vs the Figure 4 model."""

from repro.core.streamsim import run_stream_comparison


def test_stream_packet_level(once):
    results = once(run_stream_comparison, 200)
    native = results["native"]
    print("\nTCP_STREAM, packet level (windowed pipeline on the DES):")
    for key, result in results.items():
        print(
            "  %-9s %6.2f Gb/s  normalized %.2f  bottleneck=%s"
            % (
                key,
                result.throughput_bps / 1e9,
                result.normalized_to(native),
                result.bottleneck,
            )
        )
    assert results["kvm-arm"].normalized_to(native) < 1.05
    assert results["xen-arm"].normalized_to(native) > 2.8
    assert results["xen-arm"].bottleneck == "backend"
