"""E5 — Figure 4: application benchmark performance, all platforms.

Regenerates the paper's bar chart as a table.  Assertions follow the
shape criteria in DESIGN.md; absolute tolerances are tighter for values
the paper states in prose (exact=True in paperdata) and looser for bars
digitized from the figure.
"""

import pytest

from repro.core.appbench import run_figure4
from repro.core.reporting import render_figure4
from repro.paperdata import FIGURE4, PLATFORM_ORDER


@pytest.fixture(scope="module")
def grid():
    return run_figure4(PLATFORM_ORDER)


def test_figure4_regeneration(once, grid):
    table = once(render_figure4, grid)
    print("\n" + table)
    # Headline shape, asserted here so --benchmark-only covers it too:
    for workload in ("TCP_RR", "TCP_STREAM", "Apache", "Memcached"):
        assert grid[workload]["kvm-arm"].normalized < grid[workload]["xen-arm"].normalized
    assert grid["TCP_STREAM"]["xen-arm"].normalized > 2.8
    assert grid["Hackbench"]["xen-arm"].normalized < grid["Hackbench"]["kvm-arm"].normalized


@pytest.mark.parametrize("workload", list(FIGURE4))
def test_against_paper_values(grid, workload):
    for key in PLATFORM_ORDER:
        point = FIGURE4[workload].get(key)
        if point is None:
            continue  # Apache could not run on Xen x86 in the paper
        sim = grid[workload][key].normalized
        # prose-derived values: 25% of the overhead-above-native (the
        # same band as the Table II/V asserts); digitized bars: looser
        if point.exact:
            tolerance = max(0.25 * (point.value - 1.0), 0.08)
        else:
            tolerance = max(0.35 * (point.value - 1.0), 0.12)
        assert abs(sim - point.value) <= tolerance, (
            "%s on %s: simulated %.2f vs paper %.2f" % (workload, key, sim, point.value)
        )


class TestShape:
    def test_cpu_workloads_near_native_everywhere(self, grid):
        for workload in ("Kernbench", "SPECjvm2008", "MySQL"):
            for key in PLATFORM_ORDER:
                assert grid[workload][key].normalized < 1.20

    def test_kvm_arm_beats_xen_arm_on_io(self, grid):
        """The paper's headline: the Type 2 hypervisor wins on real I/O
        despite losing every transition microbenchmark."""
        for workload in ("TCP_RR", "TCP_STREAM", "TCP_MAERTS", "Apache", "Memcached"):
            assert grid[workload]["kvm-arm"].normalized < grid[workload]["xen-arm"].normalized

    def test_xen_arm_wins_hackbench(self, grid):
        """...except the virtual-IPI-bound scheduler workload, where the
        difference is small (~5% of native)."""
        kvm = grid["Hackbench"]["kvm-arm"].normalized
        xen = grid["Hackbench"]["xen-arm"].normalized
        assert xen < kvm
        assert kvm - xen < 0.10

    def test_kvm_stream_has_almost_no_overhead(self, grid):
        assert grid["TCP_STREAM"]["kvm-arm"].normalized < 1.05
        assert grid["TCP_STREAM"]["kvm-x86"].normalized < 1.05

    def test_xen_stream_exceeds_250pct_overhead_on_arm(self, grid):
        assert grid["TCP_STREAM"]["xen-arm"].normalized > 2.8

    def test_arm_hypervisors_comparable_to_x86_counterparts(self, grid):
        """'Both types of ARM hypervisors can achieve similar, and in
        some cases lower, performance overhead than their x86
        counterparts.'"""
        lower_somewhere = 0
        for workload in grid:
            for arm_key, x86_key in (("kvm-arm", "kvm-x86"), ("xen-arm", "xen-x86")):
                arm = grid[workload][arm_key].normalized
                x86 = grid[workload][x86_key].normalized
                assert arm < x86 * 1.5  # similar
                if arm < x86:
                    lower_somewhere += 1
        assert lower_somewhere >= 3  # and sometimes lower

    def test_bottlenecks_reported(self, grid):
        assert grid["Apache"]["kvm-arm"].bottleneck == "vcpu0"
        assert grid["TCP_STREAM"]["xen-arm"].bottleneck == "backend"
        assert grid["TCP_STREAM"]["kvm-arm"].bottleneck == "wire"
