"""E3 — Table III: the KVM ARM hypercall save/restore breakdown."""

from repro.core.breakdown import hypercall_breakdown
from repro.core.reporting import render_table3
from repro.paperdata import TABLE3


def test_table3_regeneration(once):
    breakdown = once(hypercall_breakdown)
    print("\n" + render_table3(breakdown))
    for entry in breakdown.rows:
        paper = TABLE3[entry.register_state]
        assert entry.save_cycles == paper["save"]
        assert entry.restore_cycles == paper["restore"]
    # The analysis conclusions:
    assert breakdown.row("VGIC Regs").save_cycles > 3000
    assert breakdown.save_total > 2.5 * breakdown.restore_total
