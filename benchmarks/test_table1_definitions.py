"""E1 — Table I: the microbenchmark suite definitions.

Regenerates the table of microbenchmark names and descriptions and
verifies the suite implements every row.
"""

from repro.core.microbench import MICROBENCHMARKS, MicrobenchmarkSuite
from repro.core.reporting import render_table
from repro.core.testbed import build_testbed


def test_table1_definitions(once):
    rows = [[name, desc[:70] + "..."] for name, desc in MICROBENCHMARKS.items()]
    table = once(render_table, ["Name", "Description"], rows, "Table I: Microbenchmarks")
    print("\n" + table)
    assert len(MICROBENCHMARKS) == 7


def test_suite_implements_every_row(once):
    suite = MicrobenchmarkSuite(build_testbed("kvm-arm"))
    results = once(suite.run_all)
    assert set(results) == set(MICROBENCHMARKS)
