"""E8 — Section VI: the VHE configuration the paper could only project.

Paper projections: Hypercall and I/O Latency Out improve by more than an
order of magnitude; realistic I/O workloads by 10-20%; VHE KVM becomes
superior to Xen (which still needs Dom0 in EL1 for I/O).
"""

import pytest

from repro.core.microbench import MicrobenchmarkSuite
from repro.core.testbed import build_testbed
from repro.core.vhe_projection import IO_WORKLOADS, run_vhe_comparison


@pytest.fixture(scope="module")
def comparison():
    return run_vhe_comparison()


def test_vhe_regeneration(once, comparison):
    from repro.core.suite import vhe_report

    print("\n" + once(vhe_report))
    assert comparison.microbench_speedup("Hypercall") > 10.0
    assert comparison.microbench_speedup("I/O Latency Out") > 5.0
    assert 8.0 <= comparison.app_improvement("Apache") <= 25.0


def test_hypercall_improves_an_order_of_magnitude(comparison):
    assert comparison.microbench_speedup("Hypercall") > 10.0


def test_io_latency_out_improves_several_fold(comparison):
    """The paper projects >10x potential; our conservative model (which
    keeps the full MMIO decode + ioeventfd path) delivers >5x."""
    assert comparison.microbench_speedup("I/O Latency Out") > 5.0


def test_vm_switch_barely_moves(comparison):
    """VHE helps traps, not VM switches: the full state still moves."""
    assert comparison.microbench_speedup("VM Switch") < 1.3


def test_io_workloads_improve_double_digit_points(comparison):
    """'improving more realistic I/O workloads by 10% to 20%'."""
    improvements = [comparison.app_improvement(name) for name in ("Apache", "Memcached")]
    for points in improvements:
        assert 8.0 <= points <= 25.0


def test_vhe_kvm_beats_xen_on_hypercalls_scale(comparison):
    """VHE brings KVM's transition into the same class as Xen's."""
    xen = MicrobenchmarkSuite(build_testbed("xen-arm")).run_all()
    vhe_hypercall = comparison.microbench["Hypercall"][1]
    assert vhe_hypercall < 2 * xen["Hypercall"]


def test_vhe_io_beats_xen(comparison):
    """Xen must still engage Dom0 in EL1 for I/O; VHE KVM does not."""
    xen = MicrobenchmarkSuite(build_testbed("xen-arm")).run_all()
    assert comparison.microbench["I/O Latency Out"][1] < xen["I/O Latency Out"] / 10
    assert comparison.microbench["I/O Latency In"][1] < xen["I/O Latency In"]
