#!/usr/bin/env python3
"""Validate service-layer JSON documents against their schemas.

Usage: python tools/validate_service.py FILE [FILE ...]

Accepts any mix of service documents and dispatches on the ``schema``
field:

* ``repro-service/1``          — query responses (success or error);
* ``repro-service-metrics/1``  — ``GET /v1/metrics`` snapshots;
* ``repro-service-bench/1``    — ``python -m repro serve-bench`` output.

For success responses the validator *recomputes* ``result_sha256`` over
the ``result`` member (compact separators, insertion order — the same
canonical encoding ``repro.runner.resilience.payload_digest`` uses) and
fails on mismatch, so a response that was rewritten, key-sorted, or
truncated after the server signed it cannot pass.  Stdlib only; exits
non-zero listing every violation.
"""

import hashlib
import json
import sys

RESPONSE_SCHEMA = "repro-service/1"
METRICS_SCHEMA = "repro-service-metrics/1"
BENCH_SCHEMA = "repro-service-bench/1"

ERROR_CODES = (
    "bad-request",
    "budget-exceeded",
    "not-found",
    "cell-failed",
    "internal",
    "overloaded",
    "shutting-down",
    "deadline-exceeded",
)

STAT_FIELDS = ("cells", "coalesced", "cached", "simulated")

METRIC_KINDS = ("counter", "gauge", "histogram")


def payload_digest(payload):
    return hashlib.sha256(
        json.dumps(payload, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


def _is_sha256(text):
    return (
        isinstance(text, str)
        and len(text) == 64
        and all(ch in "0123456789abcdef" for ch in text)
    )


def _check(condition, errors, message):
    if not condition:
        errors.append(message)


def validate_response(document):
    errors = []
    _check(document.get("schema") == RESPONSE_SCHEMA, errors, "bad schema tag")
    ok = document.get("ok")
    _check(isinstance(ok, bool), errors, "'ok' must be a boolean")
    _check(document.get("partial") is False, errors, "'partial' must be false")
    if ok:
        for field in ("target", "params", "costs", "query_key", "result",
                      "result_sha256", "stats"):
            _check(field in document, errors, "success doc missing %r" % field)
        if errors:
            return errors
        _check(
            isinstance(document["target"], str) and document["target"],
            errors,
            "'target' must be a non-empty string",
        )
        _check(isinstance(document["params"], dict), errors, "'params' must be an object")
        _check(isinstance(document["costs"], dict), errors, "'costs' must be an object")
        _check(_is_sha256(document["query_key"]), errors, "'query_key' is not a sha256")
        _check(
            _is_sha256(document["result_sha256"]),
            errors,
            "'result_sha256' is not a sha256",
        )
        recomputed = payload_digest(document["result"])
        _check(
            recomputed == document["result_sha256"],
            errors,
            "result_sha256 mismatch: doc says %s, result hashes to %s"
            % (document["result_sha256"][:16], recomputed[:16]),
        )
        stats = document["stats"]
        _check(isinstance(stats, dict), errors, "'stats' must be an object")
        if isinstance(stats, dict):
            for field in STAT_FIELDS:
                value = stats.get(field)
                _check(
                    isinstance(value, int) and not isinstance(value, bool)
                    and value >= 0,
                    errors,
                    "stats.%s must be a non-negative integer" % field,
                )
            if not errors:
                _check(
                    stats["coalesced"] <= stats["cells"],
                    errors,
                    "stats.coalesced exceeds stats.cells",
                )
                _check(
                    stats["coalesced"] + stats["cached"] + stats["simulated"]
                    == stats["cells"],
                    errors,
                    "stats partition does not cover stats.cells",
                )
    else:
        error = document.get("error")
        _check(isinstance(error, dict), errors, "error doc missing 'error' object")
        if isinstance(error, dict):
            _check(
                error.get("code") in ERROR_CODES,
                errors,
                "unknown error code %r" % error.get("code"),
            )
            _check(
                isinstance(error.get("message"), str) and error["message"],
                errors,
                "'error.message' must be a non-empty string",
            )
    return errors


def validate_metrics(document):
    errors = []
    _check(document.get("schema") == METRICS_SCHEMA, errors, "bad schema tag")
    _check(document.get("ok") is True, errors, "'ok' must be true")
    metrics = document.get("metrics")
    _check(isinstance(metrics, dict), errors, "'metrics' must be an object")
    if isinstance(metrics, dict):
        for name, instrument in metrics.items():
            _check(
                isinstance(instrument, dict)
                and instrument.get("kind") in METRIC_KINDS,
                errors,
                "metric %r has no valid kind" % name,
            )
    return errors


def validate_bench(document):
    errors = []
    _check(document.get("schema") == BENCH_SCHEMA, errors, "bad schema tag")
    _check(
        isinstance(document.get("clients"), int) and document["clients"] >= 1,
        errors,
        "'clients' must be a positive integer",
    )
    phases = document.get("phases")
    _check(
        isinstance(phases, list) and phases, errors, "'phases' must be a non-empty list"
    )
    if isinstance(phases, list):
        for phase in phases:
            label = phase.get("name") if isinstance(phase, dict) else "?"
            _check(isinstance(phase, dict), errors, "phase entry is not an object")
            if not isinstance(phase, dict):
                continue
            for field in ("name", "queries", "ok", "wall_ms", "stats"):
                _check(field in phase, errors, "phase %r missing %r" % (label, field))
            if "stats" in phase and isinstance(phase["stats"], dict):
                for field in STAT_FIELDS:
                    _check(
                        field in phase["stats"],
                        errors,
                        "phase %r stats missing %r" % (label, field),
                    )
            if "wall_ms" in phase:
                _check(
                    isinstance(phase["wall_ms"], (int, float))
                    and phase["wall_ms"] >= 0,
                    errors,
                    "phase %r wall_ms must be non-negative" % label,
                )
    totals = document.get("totals")
    _check(isinstance(totals, dict), errors, "'totals' must be an object")
    _check(isinstance(document.get("metrics"), dict), errors, "'metrics' must be an object")
    return errors


VALIDATORS = {
    RESPONSE_SCHEMA: validate_response,
    METRICS_SCHEMA: validate_metrics,
    BENCH_SCHEMA: validate_bench,
}


def validate_document(document):
    """Dispatch on the schema tag; returns a list of violation strings."""
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    schema = document.get("schema")
    validator = VALIDATORS.get(schema)
    if validator is None:
        return ["unknown schema tag %r" % (schema,)]
    return validator(document)


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            print("%s: unreadable: %s" % (path, exc))
            failed = True
            continue
        errors = validate_document(document)
        if errors:
            failed = True
            print("%s: INVALID" % path)
            for error in errors:
                print("  - %s" % error)
        else:
            print("%s: ok (%s)" % (path, document.get("schema")))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
