#!/usr/bin/env python3
"""CI schema smoke for conc-tier lint reports (``lint --format json``).

Checks the contract :mod:`repro.analysis.report` promises for the JSON
renderer, specialised to the concurrency tier's CI artifact: a JSON
object whose ``count`` equals the length of ``violations``; every
violation carrying a string ``path``, 1-based integer ``line``,
non-negative integer ``col``, a ``rule`` drawn from CON001..CON005 (the
artifact is produced with ``--select`` over exactly those codes), and a
non-empty ``message``; and, when present, a ``statistics`` block whose
per-rule tallies agree with the violation rows.

The conc job uses this to keep the *shape* of the artifact honest even
while the gate requires the tree itself to be clean (count == 0); pass
``--expect-clean`` to additionally fail on any finding.

Usage:
    python tools/validate_conclint.py [--expect-clean] report.json [...]

Exits 0 when every file validates, 1 otherwise.
"""

import json
import sys

CON_RULES = ("CON001", "CON002", "CON003", "CON004", "CON005")


def _is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def validate(path, expect_clean=False):
    """Return a list of problem strings (empty = valid)."""
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        return ["cannot read %s: %s" % (path, exc)]
    if not isinstance(document, dict):
        return ["top level must be a JSON object"]

    violations = document.get("violations")
    if not isinstance(violations, list):
        problems.append("violations must be a list")
        violations = []
    if document.get("count") != len(violations):
        problems.append(
            "count %r disagrees with %d violation rows"
            % (document.get("count"), len(violations))
        )

    tally = {}
    for index, row in enumerate(violations):
        where = "violations[%d]" % index
        if not isinstance(row, dict):
            problems.append("%s must be an object" % where)
            continue
        if not (isinstance(row.get("path"), str) and row["path"]):
            problems.append("%s.path must be a non-empty string" % where)
        if not (_is_int(row.get("line")) and row["line"] >= 1):
            problems.append("%s.line must be a positive integer" % where)
        if not (_is_int(row.get("col")) and row["col"] >= 0):
            problems.append("%s.col must be a non-negative integer" % where)
        rule = row.get("rule")
        if rule not in CON_RULES:
            problems.append("%s.rule %r is not a conc rule" % (where, rule))
        else:
            tally[rule] = tally.get(rule, 0) + 1
        if not (isinstance(row.get("message"), str) and row["message"].strip()):
            problems.append("%s.message must be a non-empty string" % where)

    statistics = document.get("statistics")
    if statistics is not None:
        if not isinstance(statistics, dict):
            problems.append("statistics must be an object")
        elif statistics != tally:
            problems.append(
                "statistics %r disagree with violation tally %r"
                % (statistics, tally)
            )

    if expect_clean and violations:
        problems.append(
            "expected a clean tree, found %d conc finding(s)" % len(violations)
        )
    return problems


def main(argv):
    args = list(argv)
    expect_clean = "--expect-clean" in args
    paths = [arg for arg in args if arg != "--expect-clean"]
    if not paths:
        print(__doc__)
        return 2
    failed = False
    for path in paths:
        problems = validate(path, expect_clean=expect_clean)
        if problems:
            failed = True
            print("FAIL %s" % path)
            for problem in problems:
                print("  - %s" % problem)
        else:
            print("OK   %s" % path)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
