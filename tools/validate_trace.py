#!/usr/bin/env python3
"""CI schema smoke for exported Chrome trace-event (Perfetto) JSON.

Checks the contract :mod:`repro.obs.export` promises: a JSON-object
document with a non-empty ``traceEvents`` list where every event carries
``ph``, ``ts``, ``dur``, ``pid`` and ``tid``, at least one complete
("X") span event exists, and all timestamps/durations are non-negative
integers.

Usage:
    python tools/validate_trace.py trace.json [more.json ...]

Exits 0 when every file validates, 1 otherwise.
"""

import json
import sys

REQUIRED_KEYS = ("ph", "ts", "dur", "pid", "tid")
KNOWN_PHASES = {"X", "M", "C", "I", "B", "E"}


def validate(path):
    """Return a list of problem strings (empty = valid)."""
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        return ["cannot load %s: %s" % (path, exc)]
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["%s: traceEvents missing or empty" % path]
    span_count = 0
    for index, event in enumerate(events):
        for key in REQUIRED_KEYS:
            if key not in event:
                problems.append("%s: event %d lacks %r" % (path, index, key))
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            problems.append("%s: event %d has unknown ph %r" % (path, index, phase))
        if phase == "X":
            span_count += 1
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(
                    "%s: event %d %s=%r is not a non-negative int" % (path, index, key, value)
                )
    if span_count == 0:
        problems.append("%s: no complete ('X') span events" % path)
    return problems


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv:
        problems = validate(path)
        if problems:
            failures += 1
            for problem in problems:
                print("FAIL %s" % problem)
        else:
            print("OK   %s" % path)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
