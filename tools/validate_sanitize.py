#!/usr/bin/env python3
"""CI schema smoke for SimSan sanitize reports.

Checks the contract :mod:`repro.sanitize.runner` promises: a
``repro-sanitize/1`` JSON document whose ``cells`` entries each carry
both payload hashes (64-hex sha256), non-negative event/tie counts, a
``races`` object with ``tie_order``/``multi_writer`` lists, and a
``summary`` whose totals actually add up (``clean`` must agree with the
race counts — a report claiming clean while listing races is itself a
bug).

Usage:
    python tools/validate_sanitize.py SANITIZE_report.json [more ...]

Exits 0 when every file validates, 1 otherwise.
"""

import json
import re
import sys

SCHEMA = "repro-sanitize/1"
_SHA256_RE = re.compile(r"^[0-9a-f]{64}$")


def _check_cell(path, index, cell, problems):
    for key in ("cell", "payload_sha256", "inverted_sha256", "races"):
        if key not in cell:
            problems.append("%s: cell %d lacks %r" % (path, index, key))
            return 0, 0
    for key in ("payload_sha256", "inverted_sha256"):
        if not _SHA256_RE.match(str(cell[key])):
            problems.append(
                "%s: cell %r %s=%r is not a sha256 hex digest"
                % (path, cell["cell"], key, cell[key])
            )
    for key in ("schedule_events", "tie_groups"):
        value = cell.get(key)
        if not isinstance(value, int) or value < 0:
            problems.append(
                "%s: cell %r %s=%r is not a non-negative int"
                % (path, cell["cell"], key, value)
            )
    races = cell["races"]
    for key in ("tie_order", "multi_writer"):
        if not isinstance(races.get(key), list):
            problems.append(
                "%s: cell %r races.%s missing or not a list"
                % (path, cell["cell"], key)
            )
    tie = len(races.get("tie_order") or [])
    writers = len(races.get("multi_writer") or [])
    if tie and cell["payload_sha256"] == cell["inverted_sha256"]:
        problems.append(
            "%s: cell %r reports a tie-order race but identical hashes"
            % (path, cell["cell"])
        )
    return tie, writers


def validate(path):
    """Return a list of problem strings (empty = valid)."""
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        return ["cannot load %s: %s" % (path, exc)]
    if document.get("schema") != SCHEMA:
        return ["%s: schema is %r, expected %r" % (path, document.get("schema"), SCHEMA)]
    cells = document.get("cells")
    if not isinstance(cells, list) or not cells:
        return ["%s: cells missing or empty" % path]
    tie_total = writer_total = 0
    for index, cell in enumerate(cells):
        tie, writers = _check_cell(path, index, cell, problems)
        tie_total += tie
        writer_total += writers
    summary = document.get("summary")
    if not isinstance(summary, dict):
        problems.append("%s: summary missing" % path)
        return problems
    expectations = (
        ("cells", len(cells)),
        ("tie_order_races", tie_total),
        ("multi_writer_races", writer_total),
        ("clean", tie_total == 0 and writer_total == 0),
    )
    for key, expected in expectations:
        if summary.get(key) != expected:
            problems.append(
                "%s: summary.%s=%r disagrees with cells (expected %r)"
                % (path, key, summary.get(key), expected)
            )
    return problems


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv:
        problems = validate(path)
        if problems:
            failures += 1
            for problem in problems:
                print("FAIL %s" % problem)
        else:
            print("OK   %s" % path)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
