"""Calibration report: simulated Table II vs the paper, per platform.

Run:  python tools/calibrate.py
"""

from repro.core.microbench import TABLE2_ROWS, MicrobenchmarkSuite
from repro.core.testbed import build_testbed
from repro.paperdata import PLATFORM_ORDER, TABLE2


def main():
    measured = {}
    for key in PLATFORM_ORDER + ["kvm-vhe-arm"]:
        suite = MicrobenchmarkSuite(build_testbed(key))
        measured[key] = suite.run_all()

    print("%-28s" % "Microbenchmark", end="")
    for key in PLATFORM_ORDER:
        print("%22s" % key, end="")
    print("%12s" % "kvm-vhe")
    worst = 0.0
    for row in TABLE2_ROWS:
        print("%-28s" % row, end="")
        for key in PLATFORM_ORDER:
            paper = TABLE2[row][key]
            sim = measured[key][row]
            err = (sim - paper) / paper * 100.0
            worst = max(worst, abs(err))
            print("%10d (%+5.1f%%)" % (sim, err), end="")
        print("%12d" % measured["kvm-vhe-arm"][row])
    print("\nworst |error| = %.1f%%" % worst)


if __name__ == "__main__":
    main()
