#!/usr/bin/env python3
"""CI schema smoke for ``<cache>/journal/<run_id>.jsonl`` run journals.

Checks the contract :mod:`repro.runner.journal` promises: a JSONL file
opening with a ``run-open`` event of schema ``repro-journal/1`` that
carries the cache base fingerprint, the ordered cell list, jobs,
policy, and the fault plan; followed only by events from the journal
vocabulary, each with its required fields (``cell-completed`` lines
carry a cache ``key`` and a 64-hex ``payload_sha256``); at most one
undecodable line, which must be the *last* one (the torn tail a hard
kill leaves behind); and no second ``run-open``.

With ``--closed`` the journal must additionally end with a
``run-close`` event (a completed run); without it an interrupted
journal also validates — that is the artifact the durability CI job
uploads after the kill.

Usage:
    python tools/validate_journal.py [--closed] JOURNAL.jsonl [more ...]

Exits 0 when every file validates, 1 otherwise.
"""

import json
import sys

SCHEMA = "repro-journal/1"
SHA256_HEX_LEN = 64

EVENT_KINDS = {
    "run-open",
    "cell-submitted",
    "cell-completed",
    "cell-failed",
    "cell-quarantined",
    "run-resume",
    "run-close",
}

#: required fields per event kind (beyond "event" itself)
REQUIRED_FIELDS = {
    "run-open": ("schema", "run_id", "fingerprint", "cells", "jobs", "policy"),
    "cell-submitted": ("cell",),
    "cell-completed": ("cell", "key", "payload_sha256", "source"),
    "cell-failed": ("cell", "kind", "error"),
    "cell-quarantined": ("cell", "key"),
    "run-resume": ("run_id", "jobs"),
    "run-close": ("report_sha256", "partial"),
}

COMPLETED_SOURCES = {"run", "cache"}


def _is_sha256(value):
    return (
        isinstance(value, str)
        and len(value) == SHA256_HEX_LEN
        and all(ch in "0123456789abcdef" for ch in value)
    )


def validate(path, require_closed=False):
    """Return a list of problem strings (empty = valid)."""
    problems = []
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        return ["cannot load %s: %s" % (path, exc)]
    chunks = raw.split(b"\n")
    events = []
    for index, chunk in enumerate(chunks):
        if not chunk.strip():
            continue
        try:
            event = json.loads(chunk.decode("utf-8"))
            if not isinstance(event, dict) or "event" not in event:
                raise ValueError("not an event object")
        except (ValueError, UnicodeDecodeError):
            if all(not later.strip() for later in chunks[index + 1 :]):
                break  # the tolerated torn tail
            problems.append(
                "%s: line %d is undecodable and not the final line" % (path, index + 1)
            )
            return problems
        events.append((index + 1, event))
    if not events:
        return problems + ["%s: no complete events" % path]

    first_line, header = events[0]
    if header.get("event") != "run-open":
        problems.append(
            "%s: line %d: first event is %r, expected run-open"
            % (path, first_line, header.get("event"))
        )
    elif header.get("schema") != SCHEMA:
        problems.append(
            "%s: run-open schema is %r, expected %r" % (path, header.get("schema"), SCHEMA)
        )
    if header.get("event") == "run-open" and not (
        isinstance(header.get("cells"), list)
        and header.get("cells")
        and all(isinstance(cell, str) and cell for cell in header["cells"])
    ):
        problems.append("%s: run-open cells is not a non-empty string list" % path)
    if header.get("event") == "run-open" and not _is_sha256(header.get("fingerprint")):
        problems.append(
            "%s: run-open fingerprint=%r is not 64 hex chars" % (path, header.get("fingerprint"))
        )

    known_cells = set(header.get("cells") or ()) if isinstance(header.get("cells"), list) else None
    for line, event in events:
        kind = event.get("event")
        if kind not in EVENT_KINDS:
            problems.append("%s: line %d: unknown event %r" % (path, line, kind))
            continue
        for field in REQUIRED_FIELDS.get(kind, ()):
            if field not in event:
                problems.append(
                    "%s: line %d: %s is missing field %r" % (path, line, kind, field)
                )
        if kind == "run-open" and line != first_line:
            problems.append("%s: line %d: second run-open" % (path, line))
        if kind == "cell-completed":
            if not _is_sha256(event.get("payload_sha256")):
                problems.append(
                    "%s: line %d: payload_sha256=%r is not 64 hex chars"
                    % (path, line, event.get("payload_sha256"))
                )
            if not _is_sha256(event.get("key")):
                problems.append(
                    "%s: line %d: key=%r is not 64 hex chars" % (path, line, event.get("key"))
                )
            if event.get("source") not in COMPLETED_SOURCES:
                problems.append(
                    "%s: line %d: source=%r not in %s"
                    % (path, line, event.get("source"), sorted(COMPLETED_SOURCES))
                )
        if (
            known_cells is not None
            and "cell" in event
            and event["cell"] not in known_cells
        ):
            problems.append(
                "%s: line %d: cell %r is not in the run-open cell list"
                % (path, line, event["cell"])
            )
        if kind == "run-close" and not _is_sha256(event.get("report_sha256")):
            problems.append(
                "%s: line %d: report_sha256=%r is not 64 hex chars"
                % (path, line, event.get("report_sha256"))
            )

    if require_closed and events[-1][1].get("event") != "run-close":
        problems.append(
            "%s: final event is %r, expected run-close (--closed)"
            % (path, events[-1][1].get("event"))
        )
    return problems


def main(argv):
    require_closed = False
    paths = []
    for arg in argv:
        if arg == "--closed":
            require_closed = True
        else:
            paths.append(arg)
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        problems = validate(path, require_closed=require_closed)
        if problems:
            failures += 1
            for problem in problems:
                print("FAIL %s" % problem)
        else:
            print("OK   %s" % path)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
