#!/usr/bin/env python3
"""CI schema smoke for the ``specs/*.json`` golden path-spec documents.

Checks the contract :mod:`repro.analysis.pathspec` promises: a JSON
object with the ``repro-pathspec/1`` schema tag, a non-empty ``group``
string, and a ``specs`` list sorted by unique ``id`` where every spec
carries ``id``/``module``/``function`` strings (with ``id`` equal to
``module::function``), a ``truncated`` bool, and a non-empty ``paths``
list.  Every path has a ``terminator`` in return/raise/fall plus a
``steps`` list whose entries are either architectural markers
(``{"arch": ...}`` with a known kind) or op steps with
``op``/``category`` strings, a ``cost`` that is a string or null, a
``cost_kind`` from the extractor's vocabulary (null cost only for
literal/external kinds), and an optional ``class`` register-class token.

Usage:
    python tools/validate_pathspec.py specs/kvm.json [more.json ...]

Exits 0 when every file validates, 1 otherwise.
"""

import json
import sys

SCHEMA = "repro-pathspec/1"
TERMINATORS = {"return", "raise", "fall"}
ARCH_KINDS = {
    "ctx_save",
    "ctx_load",
    "trap_enter",
    "trap_exit",
    "virt_off",
    "virt_on",
}
COST_KINDS = {"field", "table", "method", "literal", "external"}
#: cost kinds that must name a cost-model attribute
NAMED_COST_KINDS = {"field", "table", "method"}


def _is_str(value):
    return isinstance(value, str) and bool(value)


def validate(path):
    """Return a list of problem strings (empty = valid)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        return ["cannot load %s: %s" % (path, exc)]
    if not isinstance(document, dict):
        return ["%s: document is not a JSON object" % path]
    problems = []
    if document.get("schema") != SCHEMA:
        problems.append(
            "%s: schema is %r, expected %r" % (path, document.get("schema"), SCHEMA)
        )
    if not _is_str(document.get("group")):
        problems.append("%s: group=%r is not a non-empty string" % (path, document.get("group")))
    specs = document.get("specs")
    if not isinstance(specs, list) or not specs:
        problems.append("%s: specs missing or empty" % path)
        specs = []
    ids = [spec.get("id") for spec in specs if isinstance(spec, dict)]
    if ids != sorted(ids, key=lambda i: i or ""):
        problems.append("%s: specs are not sorted by id" % path)
    if len(set(ids)) != len(ids):
        problems.append("%s: duplicate spec ids" % path)
    for index, spec in enumerate(specs):
        problems.extend(_validate_spec(path, index, spec))
    return problems


def _validate_spec(path, index, spec):
    where = "spec %d" % index
    if not isinstance(spec, dict):
        return ["%s: %s is not an object" % (path, where)]
    problems = []
    for key in ("id", "module", "function"):
        if not _is_str(spec.get(key)):
            problems.append(
                "%s: %s %s=%r is not a non-empty string" % (path, where, key, spec.get(key))
            )
    if (
        _is_str(spec.get("id"))
        and spec.get("id") != "%s::%s" % (spec.get("module"), spec.get("function"))
    ):
        problems.append(
            "%s: %s id=%r does not match module::function" % (path, where, spec["id"])
        )
    if _is_str(spec.get("id")):
        where = spec["id"]
    if not isinstance(spec.get("truncated"), bool):
        problems.append("%s: %s truncated=%r is not a bool" % (path, where, spec.get("truncated")))
    paths = spec.get("paths")
    if not isinstance(paths, list) or not paths:
        problems.append("%s: %s paths missing or empty" % (path, where))
        return problems
    for p_index, trace in enumerate(paths):
        problems.extend(_validate_path(path, "%s path %d" % (where, p_index), trace))
    return problems


def _validate_path(path, where, trace):
    if not isinstance(trace, dict):
        return ["%s: %s is not an object" % (path, where)]
    problems = []
    if trace.get("terminator") not in TERMINATORS:
        problems.append(
            "%s: %s terminator=%r not in %s"
            % (path, where, trace.get("terminator"), sorted(TERMINATORS))
        )
    steps = trace.get("steps")
    if not isinstance(steps, list):
        return problems + ["%s: %s steps is not a list" % (path, where)]
    for s_index, step in enumerate(steps):
        problems.extend(_validate_step(path, "%s step %d" % (where, s_index), step))
    return problems


def _validate_step(path, where, step):
    if not isinstance(step, dict):
        return ["%s: %s is not an object" % (path, where)]
    if "arch" in step:
        problems = []
        if step["arch"] not in ARCH_KINDS:
            problems.append(
                "%s: %s arch=%r not in %s" % (path, where, step["arch"], sorted(ARCH_KINDS))
            )
        extra = set(step) - {"arch"}
        if extra:
            problems.append(
                "%s: %s arch step has extra keys %s" % (path, where, sorted(extra))
            )
        return problems
    problems = []
    for key in ("op", "category"):
        if not _is_str(step.get(key)):
            problems.append(
                "%s: %s %s=%r is not a non-empty string" % (path, where, key, step.get(key))
            )
    cost = step.get("cost")
    kind = step.get("cost_kind")
    if kind not in COST_KINDS:
        problems.append("%s: %s cost_kind=%r not in %s" % (path, where, kind, sorted(COST_KINDS)))
    elif kind in NAMED_COST_KINDS:
        if not _is_str(cost):
            problems.append(
                "%s: %s cost=%r but cost_kind=%r needs a cost name" % (path, where, cost, kind)
            )
    elif cost is not None and not _is_str(cost):
        problems.append("%s: %s cost=%r is not a string or null" % (path, where, cost))
    if "class" in step and not _is_str(step["class"]):
        problems.append(
            "%s: %s class=%r is not a non-empty string" % (path, where, step["class"])
        )
    extra = set(step) - {"op", "category", "cost", "cost_kind", "class"}
    if extra:
        problems.append("%s: %s op step has extra keys %s" % (path, where, sorted(extra)))
    return problems


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv:
        problems = validate(path)
        if problems:
            failures += 1
            for problem in problems:
                print("FAIL %s" % problem)
        else:
            print("OK   %s" % path)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
