#!/usr/bin/env python3
"""CI schema smoke for ``BENCH_suite.json`` bench documents.

Checks the contract :mod:`repro.runner.bench` promises: a JSON object
with the ``repro-bench/1`` schema tag, a positive ``jobs`` count, a
``cache`` block with non-negative hit/miss counters, a non-empty
``cells`` list where every cell carries id/kind/params/source and
non-negative wall time, simulated cycles and engine counts, totals that
agree with the per-cell rows, and a 64-hex ``report_sha256``.

Usage:
    python tools/validate_bench.py BENCH_suite.json [more.json ...]

Exits 0 when every file validates, 1 otherwise.
"""

import json
import sys

SCHEMA = "repro-bench/1"
CELL_SOURCES = {"run", "cache"}
SHA256_HEX_LEN = 64


def _is_nonneg_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool) and value >= 0


def _is_nonneg_int(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def validate(path):
    """Return a list of problem strings (empty = valid)."""
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        return ["cannot load %s: %s" % (path, exc)]
    if not isinstance(document, dict):
        return ["%s: document is not a JSON object" % path]
    if document.get("schema") != SCHEMA:
        problems.append("%s: schema is %r, expected %r" % (path, document.get("schema"), SCHEMA))
    if not (_is_nonneg_int(document.get("jobs")) and document.get("jobs", 0) >= 1):
        problems.append("%s: jobs=%r is not a positive int" % (path, document.get("jobs")))

    cache = document.get("cache")
    if not isinstance(cache, dict):
        problems.append("%s: cache block missing" % path)
    else:
        if not isinstance(cache.get("enabled"), bool):
            problems.append("%s: cache.enabled is not a bool" % path)
        for key in ("hits", "misses"):
            if not _is_nonneg_int(cache.get(key)):
                problems.append("%s: cache.%s=%r is not a non-negative int" % (path, key, cache.get(key)))

    cells = document.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("%s: cells missing or empty" % path)
        cells = []
    cycles_total = 0
    for index, cell in enumerate(cells):
        if not isinstance(cell, dict):
            problems.append("%s: cell %d is not an object" % (path, index))
            continue
        for key in ("id", "kind"):
            if not isinstance(cell.get(key), str) or not cell.get(key):
                problems.append("%s: cell %d %s=%r is not a non-empty string" % (path, index, key, cell.get(key)))
        if not isinstance(cell.get("params"), dict):
            problems.append("%s: cell %d params is not an object" % (path, index))
        if cell.get("source") not in CELL_SOURCES:
            problems.append("%s: cell %d source=%r not in %s" % (path, index, cell.get("source"), sorted(CELL_SOURCES)))
        if not _is_nonneg_number(cell.get("wall_ms")):
            problems.append("%s: cell %d wall_ms=%r is not a non-negative number" % (path, index, cell.get("wall_ms")))
        for key in ("simulated_cycles", "engines"):
            if not _is_nonneg_int(cell.get(key)):
                problems.append("%s: cell %d %s=%r is not a non-negative int" % (path, index, key, cell.get(key)))
        if _is_nonneg_int(cell.get("simulated_cycles")):
            cycles_total += cell["simulated_cycles"]

    totals = document.get("totals")
    if not isinstance(totals, dict):
        problems.append("%s: totals block missing" % path)
    else:
        if totals.get("cells") != len(cells):
            problems.append("%s: totals.cells=%r but %d cells listed" % (path, totals.get("cells"), len(cells)))
        if not _is_nonneg_number(totals.get("wall_ms")):
            problems.append("%s: totals.wall_ms=%r is not a non-negative number" % (path, totals.get("wall_ms")))
        if not problems and totals.get("simulated_cycles") != cycles_total:
            problems.append(
                "%s: totals.simulated_cycles=%r but cells sum to %d" % (path, totals.get("simulated_cycles"), cycles_total)
            )

    digest = document.get("report_sha256")
    if (
        not isinstance(digest, str)
        or len(digest) != SHA256_HEX_LEN
        or any(ch not in "0123456789abcdef" for ch in digest)
    ):
        problems.append("%s: report_sha256=%r is not 64 lowercase hex chars" % (path, digest))
    return problems


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv:
        problems = validate(path)
        if problems:
            failures += 1
            for problem in problems:
                print("FAIL %s" % problem)
        else:
            print("OK   %s" % path)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
