#!/usr/bin/env python3
"""CI schema smoke for ``BENCH_suite.json`` bench documents.

Checks the contract :mod:`repro.runner.bench` promises: a JSON object
with the ``repro-bench/1`` schema tag, a positive ``jobs`` count, a
``cache`` block with non-negative hit/miss counters, a non-empty
``cells`` list where every cell carries id/kind/params/source and
non-negative wall time, simulated cycles and engine counts, totals that
agree with the per-cell rows, and a 64-hex ``report_sha256``.

Optional sections added by the fault-tolerant runner are validated when
present: a ``resilience`` block (non-negative counters plus the retry
policy), a ``perf`` block (fast-lane counters with an in-range hit rate
plus a throughput probe whose ``cycles_equal`` must be true), per-cell
``attempts``/``degraded`` fields, and — under ``--keep-going`` — a
``partial`` flag and a ``failed_cells`` list whose entries carry
id/kind/params and per-attempt failure records.

With ``--history`` the arguments are ``repro-bench-history/1`` JSONL
scoreboard files instead (one line per run, appended by
``python -m repro bench --history PATH``): every line must carry the
schema tag, a 64-hex ``report_sha256``, positive ``jobs``/``cells``,
the scoreboard throughput figures, the fastpath counters and a
``partial`` flag.

Usage:
    python tools/validate_bench.py BENCH_suite.json [more.json ...]
    python tools/validate_bench.py --history BENCH_history.jsonl

Exits 0 when every file validates, 1 otherwise.
"""

import json
import sys

SCHEMA = "repro-bench/1"
CELL_SOURCES = {"run", "cache"}
SHA256_HEX_LEN = 64
RESILIENCE_COUNTERS = (
    "retries",
    "requeues",
    "timeouts",
    "pool_crashes",
    "corrupt_payloads",
    "degraded",
    "failed",
    "quarantined",
    "write_error",
    "swept_tmp",
)
#: scoreboard figures (ROADMAP item 5): run-level throughput numbers
SCOREBOARD_FIELDS = ("wall_clock_s", "cells_per_second", "cache_hit_rate")
ATTEMPT_KINDS = {"exception", "timeout", "pool-crash", "corrupt-payload"}


def _is_nonneg_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool) and value >= 0


def _is_nonneg_int(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def validate(path):
    """Return a list of problem strings (empty = valid)."""
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        return ["cannot load %s: %s" % (path, exc)]
    if not isinstance(document, dict):
        return ["%s: document is not a JSON object" % path]
    if document.get("schema") != SCHEMA:
        problems.append("%s: schema is %r, expected %r" % (path, document.get("schema"), SCHEMA))
    if not (_is_nonneg_int(document.get("jobs")) and document.get("jobs", 0) >= 1):
        problems.append("%s: jobs=%r is not a positive int" % (path, document.get("jobs")))

    cache = document.get("cache")
    if not isinstance(cache, dict):
        problems.append("%s: cache block missing" % path)
    else:
        if not isinstance(cache.get("enabled"), bool):
            problems.append("%s: cache.enabled is not a bool" % path)
        for key in ("hits", "misses"):
            if not _is_nonneg_int(cache.get(key)):
                problems.append("%s: cache.%s=%r is not a non-negative int" % (path, key, cache.get(key)))

    cells = document.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("%s: cells missing or empty" % path)
        cells = []
    cycles_total = 0
    for index, cell in enumerate(cells):
        if not isinstance(cell, dict):
            problems.append("%s: cell %d is not an object" % (path, index))
            continue
        for key in ("id", "kind"):
            if not isinstance(cell.get(key), str) or not cell.get(key):
                problems.append("%s: cell %d %s=%r is not a non-empty string" % (path, index, key, cell.get(key)))
        if not isinstance(cell.get("params"), dict):
            problems.append("%s: cell %d params is not an object" % (path, index))
        if cell.get("source") not in CELL_SOURCES:
            problems.append("%s: cell %d source=%r not in %s" % (path, index, cell.get("source"), sorted(CELL_SOURCES)))
        if not _is_nonneg_number(cell.get("wall_ms")):
            problems.append("%s: cell %d wall_ms=%r is not a non-negative number" % (path, index, cell.get("wall_ms")))
        for key in ("simulated_cycles", "engines"):
            if not _is_nonneg_int(cell.get(key)):
                problems.append("%s: cell %d %s=%r is not a non-negative int" % (path, index, key, cell.get(key)))
        if "attempts" in cell and not (_is_nonneg_int(cell["attempts"]) and cell["attempts"] >= 1):
            problems.append("%s: cell %d attempts=%r is not a positive int" % (path, index, cell["attempts"]))
        if "degraded" in cell and not isinstance(cell["degraded"], bool):
            problems.append("%s: cell %d degraded=%r is not a bool" % (path, index, cell["degraded"]))
        if _is_nonneg_int(cell.get("simulated_cycles")):
            cycles_total += cell["simulated_cycles"]

    totals = document.get("totals")
    if not isinstance(totals, dict):
        problems.append("%s: totals block missing" % path)
    else:
        if totals.get("cells") != len(cells):
            problems.append("%s: totals.cells=%r but %d cells listed" % (path, totals.get("cells"), len(cells)))
        if not _is_nonneg_number(totals.get("wall_ms")):
            problems.append("%s: totals.wall_ms=%r is not a non-negative number" % (path, totals.get("wall_ms")))
        if not problems and totals.get("simulated_cycles") != cycles_total:
            problems.append(
                "%s: totals.simulated_cycles=%r but cells sum to %d" % (path, totals.get("simulated_cycles"), cycles_total)
            )

    problems.extend(_validate_resilience(path, document))
    problems.extend(_validate_perf(path, document))
    problems.extend(_validate_journal(path, document))
    problems.extend(_validate_failed_cells(path, document))

    digest = document.get("report_sha256")
    if (
        not isinstance(digest, str)
        or len(digest) != SHA256_HEX_LEN
        or any(ch not in "0123456789abcdef" for ch in digest)
    ):
        problems.append("%s: report_sha256=%r is not 64 lowercase hex chars" % (path, digest))
    return problems


def _validate_resilience(path, document):
    """Problems in the optional ``resilience`` block."""
    if "resilience" not in document:
        return []
    problems = []
    block = document["resilience"]
    if not isinstance(block, dict):
        return ["%s: resilience is not an object" % path]
    for key in RESILIENCE_COUNTERS:
        if not _is_nonneg_int(block.get(key)):
            problems.append(
                "%s: resilience.%s=%r is not a non-negative int" % (path, key, block.get(key))
            )
    for key in SCOREBOARD_FIELDS:
        if not _is_nonneg_number(block.get(key)):
            problems.append(
                "%s: resilience.%s=%r is not a non-negative number" % (path, key, block.get(key))
            )
    hit_rate = block.get("cache_hit_rate")
    if _is_nonneg_number(hit_rate) and hit_rate > 1.0:
        problems.append("%s: resilience.cache_hit_rate=%r is not in [0, 1]" % (path, hit_rate))
    policy = block.get("policy")
    if not isinstance(policy, dict):
        problems.append("%s: resilience.policy is not an object" % path)
    else:
        if not _is_nonneg_int(policy.get("max_retries")):
            problems.append(
                "%s: resilience.policy.max_retries=%r is not a non-negative int"
                % (path, policy.get("max_retries"))
            )
        timeout = policy.get("cell_timeout_s")
        if timeout is not None and not (_is_nonneg_number(timeout) and timeout > 0):
            problems.append(
                "%s: resilience.policy.cell_timeout_s=%r is not null or a positive number"
                % (path, timeout)
            )
        if not isinstance(policy.get("keep_going"), bool):
            problems.append(
                "%s: resilience.policy.keep_going=%r is not a bool"
                % (path, policy.get("keep_going"))
            )
    return problems


def _validate_perf(path, document):
    """Problems in the optional ``perf`` block (fast-lane scoreboard)."""
    if "perf" not in document:
        return []
    problems = []
    perf = document["perf"]
    if not isinstance(perf, dict):
        return ["%s: perf is not an object" % path]
    lane = perf.get("fastpath")
    if not isinstance(lane, dict):
        problems.append("%s: perf.fastpath is not an object" % path)
    else:
        if not isinstance(lane.get("enabled"), bool):
            problems.append("%s: perf.fastpath.enabled is not a bool" % path)
        for key in ("hits", "misses", "recordings", "rejects"):
            if not _is_nonneg_int(lane.get(key)):
                problems.append(
                    "%s: perf.fastpath.%s=%r is not a non-negative int"
                    % (path, key, lane.get(key))
                )
        hit_rate = lane.get("hit_rate")
        if not (_is_nonneg_number(hit_rate) and hit_rate <= 1.0):
            problems.append(
                "%s: perf.fastpath.hit_rate=%r is not in [0, 1]" % (path, hit_rate)
            )
    probe = perf.get("probe")
    if not isinstance(probe, dict):
        problems.append("%s: perf.probe is not an object" % path)
        return problems
    if not (_is_nonneg_int(probe.get("ops")) and probe.get("ops", 0) >= 1):
        problems.append("%s: perf.probe.ops=%r is not a positive int" % (path, probe.get("ops")))
    for mode in ("interp", "fast"):
        block = probe.get(mode)
        if not isinstance(block, dict):
            problems.append("%s: perf.probe.%s is not an object" % (path, mode))
            continue
        if not _is_nonneg_number(block.get("wall_s")):
            problems.append(
                "%s: perf.probe.%s.wall_s=%r is not a non-negative number"
                % (path, mode, block.get("wall_s"))
            )
        if not _is_nonneg_int(block.get("cycles")):
            problems.append(
                "%s: perf.probe.%s.cycles=%r is not a non-negative int"
                % (path, mode, block.get("cycles"))
            )
        if not _is_nonneg_number(block.get("cycles_per_sec")):
            problems.append(
                "%s: perf.probe.%s.cycles_per_sec=%r is not a non-negative number"
                % (path, mode, block.get("cycles_per_sec"))
            )
    if not _is_nonneg_number(probe.get("speedup")):
        problems.append("%s: perf.probe.speedup=%r is not a non-negative number" % (path, probe.get("speedup")))
    if not isinstance(probe.get("cycles_equal"), bool):
        problems.append("%s: perf.probe.cycles_equal=%r is not a bool" % (path, probe.get("cycles_equal")))
    elif probe["cycles_equal"] is not True:
        problems.append("%s: perf.probe.cycles_equal is false — fast lane diverged" % path)
    return problems


def _validate_journal(path, document):
    """Problems in the optional ``journal`` block (durable-run runs)."""
    if "journal" not in document:
        return []
    problems = []
    block = document["journal"]
    if not isinstance(block, dict):
        return ["%s: journal is not an object" % path]
    for key in ("run_id", "path"):
        if not isinstance(block.get(key), str) or not block.get(key):
            problems.append(
                "%s: journal.%s=%r is not a non-empty string" % (path, key, block.get(key))
            )
    for key in ("resumed", "torn_tail"):
        if not isinstance(block.get(key), bool):
            problems.append("%s: journal.%s=%r is not a bool" % (path, key, block.get(key)))
    for key in ("completed_before", "resimulated"):
        if not _is_nonneg_int(block.get(key)):
            problems.append(
                "%s: journal.%s=%r is not a non-negative int" % (path, key, block.get(key))
            )
    return problems


def _validate_failed_cells(path, document):
    """Problems in the optional ``partial``/``failed_cells`` sections."""
    problems = []
    if "partial" in document and not isinstance(document["partial"], bool):
        problems.append("%s: partial=%r is not a bool" % (path, document["partial"]))
    if "failed_cells" not in document:
        return problems
    failed_cells = document["failed_cells"]
    if not isinstance(failed_cells, list):
        return problems + ["%s: failed_cells is not a list" % path]
    if failed_cells and document.get("partial") is not True:
        problems.append("%s: failed_cells present but partial is not true" % path)
    for index, failed in enumerate(failed_cells):
        if not isinstance(failed, dict):
            problems.append("%s: failed_cells[%d] is not an object" % (path, index))
            continue
        for key in ("id", "kind"):
            if not isinstance(failed.get(key), str) or not failed.get(key):
                problems.append(
                    "%s: failed_cells[%d] %s=%r is not a non-empty string"
                    % (path, index, key, failed.get(key))
                )
        if not isinstance(failed.get("params"), dict):
            problems.append("%s: failed_cells[%d] params is not an object" % (path, index))
        if not isinstance(failed.get("degraded"), bool):
            problems.append("%s: failed_cells[%d] degraded is not a bool" % (path, index))
        attempts = failed.get("attempts")
        if not isinstance(attempts, list) or not attempts:
            problems.append("%s: failed_cells[%d] attempts missing or empty" % (path, index))
            continue
        for a_index, attempt in enumerate(attempts):
            where = "failed_cells[%d].attempts[%d]" % (index, a_index)
            if not isinstance(attempt, dict):
                problems.append("%s: %s is not an object" % (path, where))
                continue
            if not _is_nonneg_int(attempt.get("attempt")):
                problems.append(
                    "%s: %s attempt=%r is not a non-negative int" % (path, where, attempt.get("attempt"))
                )
            if attempt.get("kind") not in ATTEMPT_KINDS:
                problems.append(
                    "%s: %s kind=%r not in %s" % (path, where, attempt.get("kind"), sorted(ATTEMPT_KINDS))
                )
            if not isinstance(attempt.get("error"), str) or not attempt.get("error"):
                problems.append("%s: %s error missing" % (path, where))
    return problems


#: ``--history``: one-scoreboard-line-per-run JSONL (ROADMAP item 5)
HISTORY_SCHEMA = "repro-bench-history/1"


def validate_history(path):
    """Problems in a ``repro-bench-history/1`` JSONL scoreboard file."""
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        return ["%s: cannot read: %s" % (path, exc)]
    if not lines:
        return ["%s: history has no scoreboard lines" % path]
    for number, raw in enumerate(lines, start=1):
        where = "%s:%d" % (path, number)
        try:
            row = json.loads(raw)
        except ValueError as exc:
            problems.append("%s: not JSON: %s" % (where, exc))
            continue
        if not isinstance(row, dict):
            problems.append("%s: scoreboard line must be an object" % where)
            continue
        if row.get("schema") != HISTORY_SCHEMA:
            problems.append(
                "%s: schema=%r, want %r" % (where, row.get("schema"), HISTORY_SCHEMA)
            )
        digest = row.get("report_sha256")
        if (
            not isinstance(digest, str)
            or len(digest) != SHA256_HEX_LEN
            or any(ch not in "0123456789abcdef" for ch in digest)
        ):
            problems.append(
                "%s: report_sha256=%r is not 64 lowercase hex chars" % (where, digest)
            )
        for field in ("jobs", "cells"):
            value = row.get(field)
            if not _is_nonneg_int(value) or value < 1:
                problems.append("%s: %s=%r must be a positive integer" % (where, field, value))
        for field in SCOREBOARD_FIELDS:
            if not _is_nonneg_number(row.get(field)):
                problems.append(
                    "%s: %s=%r must be a non-negative number" % (where, field, row.get(field))
                )
        rate = row.get("cache_hit_rate")
        if _is_nonneg_number(rate) and rate > 1:
            problems.append("%s: cache_hit_rate=%r is outside [0, 1]" % (where, rate))
        if not isinstance(row.get("fastpath_enabled"), bool):
            problems.append("%s: fastpath_enabled must be a boolean" % where)
        if not _is_nonneg_int(row.get("fastpath_hits")):
            problems.append(
                "%s: fastpath_hits=%r must be a non-negative integer"
                % (where, row.get("fastpath_hits"))
            )
        if not isinstance(row.get("partial"), bool):
            problems.append("%s: partial must be a boolean" % where)
    return problems


def main(argv):
    args = list(argv)
    history_mode = "--history" in args
    args = [arg for arg in args if arg != "--history"]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in args:
        problems = validate_history(path) if history_mode else validate(path)
        if problems:
            failures += 1
            for problem in problems:
                print("FAIL %s" % problem)
        else:
            print("OK   %s" % path)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
