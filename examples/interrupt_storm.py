"""Interrupt storm: list-register pressure and the Section V bottleneck.

Floods a VM with virtual interrupts to show two mechanisms:

1. The GIC virtual interface has only a few list registers; under
   pressure, interrupts overflow into software and each completion
   raises a *maintenance interrupt* — a full world switch for split-mode
   KVM, an EL2-local fixup for Xen.
2. All of this lands on the interrupt-handling VCPU, which is why the
   paper found Apache/Memcached saturating VCPU0 (and why distributing
   virtual IRQs dropped overhead from 35%/84% to 14%/16%).

Run:  python examples/interrupt_storm.py
"""

from repro.core.serversim import run_server_comparison
from repro.core.testbed import build_testbed


def storm(key, virqs=12):
    testbed = build_testbed(key)
    hv = testbed.hypervisor
    vcpu = testbed.vm.vcpu(0)
    hv.install_guest(vcpu)
    for virq in range(100, 100 + virqs):
        vcpu.vif.inject(virq)
    start = testbed.engine.now
    delivered = 0
    while vcpu.vif.pending_count():
        virq = vcpu.vif.guest_acknowledge()
        testbed.engine.spawn(hv.complete_virq(vcpu, virq), "complete")
        testbed.engine.run()
        delivered += 1
    return delivered, testbed.engine.now - start, len(vcpu.vif.overflow)


def main():
    print("Draining a %d-interrupt burst through 4 list registers:\n" % 12)
    for key in ("kvm-arm", "xen-arm"):
        delivered, cycles, leftover = storm(key)
        print(
            "  %-8s delivered %d virqs in %6d cycles (%d per completion,"
            " maintenance traps included)"
            % (key, delivered, cycles, cycles // delivered)
        )
    print(
        "\nSplit-mode KVM pays a full world switch per maintenance event;"
        "\nXen refills its LRs without leaving EL2.\n"
    )

    print("The same mechanism at application scale (Apache-like load):\n")
    for irq_vcpus, label in ((1, "all IRQs on VCPU0"), (4, "IRQs distributed")):
        results = run_server_comparison(irq_vcpus=irq_vcpus, requests=200)
        native = results["native"]
        print(
            "  %-18s kvm-arm %.2fx, xen-arm %.2fx of native time"
            % (
                label + ":",
                results["kvm-arm"].normalized_to(native),
                results["xen-arm"].normalized_to(native),
            )
        )


if __name__ == "__main__":
    main()
