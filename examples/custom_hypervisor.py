"""Extend the framework: what if Xen ARM had zero-copy I/O?

The paper closes its Xen analysis with an open question: x86 Xen
abandoned zero copy because removing grant mappings costs a TLB
shootdown IPI per CPU, but ARM has hardware *broadcast* invalidation —
"whether zero copy support for Xen can be implemented efficiently on
ARM ... remains to be investigated."

This example investigates it: we derive a Xen variant whose netback
pins a long-lived grant mapping per ring slot (map once, reuse, no
per-packet copy — the payload lands in the shared page directly) and
rerun the TCP_STREAM pipeline.

Run:  python examples/custom_hypervisor.py
"""

import dataclasses

from repro.core.appbench import make_context
from repro.core.derived import measure_derived_costs
from repro.workloads.netperf import NetperfStream


def main():
    derived = measure_derived_costs("xen-arm")
    context = make_context("xen-arm")

    stock = NetperfStream().run(derived, context)

    # Zero-copy Xen: persistent grants mean no per-packet copy at all;
    # the netback ring work remains.  (ARM's broadcast TLB invalidate
    # makes the occasional remap cheap — costs.tlb_invalidate_broadcast
    # is 190 cycles vs x86's 1,450 x 7 IPIs.)
    zero_copy = dataclasses.replace(
        derived,
        grant_copy_mtu=0,
        grant_copy_page=0,
        grant_copy_mtu_batched=0,
        grant_copy_page_batched=0,
    )
    hypothetical = NetperfStream().run(zero_copy, context)

    print("TCP_STREAM overhead, normalized to native (1.0 = line rate):\n")
    print("  Xen ARM, stock (grant copy per packet):  %.2f  [bottleneck: %s]"
          % (stock.normalized, stock.bottleneck))
    print("  Xen ARM, persistent-grant zero copy:     %.2f  [bottleneck: %s]"
          % (hypothetical.normalized, hypothetical.bottleneck))
    print(
        "\nZero copy recovers %.0f%% of the lost throughput — on ARM the"
        "\nbroadcast invalidate removes the objection that killed it on x86."
        % (100 * (stock.normalized - hypothetical.normalized) / (stock.normalized - 1))
    )


if __name__ == "__main__":
    main()
