"""Quickstart: boot a simulated ARM server under each hypervisor and
measure the cost of one hypercall.

Run:  python examples/quickstart.py
"""

from repro.core.microbench import MicrobenchmarkSuite
from repro.core.testbed import build_testbed


def main():
    print("Hypercall cost (VM -> hypervisor -> VM), simulated cycles:\n")
    for key in ("kvm-arm", "xen-arm", "kvm-x86", "xen-x86", "kvm-vhe-arm"):
        testbed = build_testbed(key)
        suite = MicrobenchmarkSuite(testbed)
        result = suite.hypercall()
        ghz = testbed.machine.platform.frequency_hz / 1e9
        print(
            "  %-12s %7d cycles  (%.2f us at %.1f GHz)"
            % (key, result.cycles, testbed.clock.us_from_cycles(result.cycles), ghz)
        )
    print(
        "\nThe Type 1 hypervisor (Xen) handles the trap entirely in EL2;"
        "\nsplit-mode KVM pays a double trap plus a full EL1/VGIC context"
        "\nswitch (paper Table III).  With ARMv8.1 VHE the host lives in"
        "\nEL2 and KVM's hypercall collapses to Xen-like cost — the"
        "\narchitectural change this paper drove."
    )


if __name__ == "__main__":
    main()
