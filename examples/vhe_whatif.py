"""What the paper could only project: run KVM ARM on ARMv8.1 VHE.

The paper's Section VI describes the Virtualization Host Extensions —
E2H, the expanded EL2 register file, transparent EL1-encoding
redirection — and projects their effect; VHE silicon did not exist yet.
The simulator can simply boot the VHE configuration and measure.

Run:  python examples/vhe_whatif.py
"""

from repro.core.breakdown import hypercall_breakdown
from repro.core.reporting import render_table3
from repro.core.suite import vhe_report
from repro.core.testbed import build_testbed


def main():
    print(vhe_report())
    print()
    print("Where did the cycles go?  The Table III analysis, re-run on VHE:")
    print()
    print(render_table3(hypercall_breakdown(build_testbed("kvm-vhe-arm"))))
    print(
        "\nWith the host kernel running in EL2, nothing EL1-related is\n"
        "context switched on a trap: the VGIC read-back (3,250 cycles)\n"
        "and the EL1 system register switch simply disappear."
    )


if __name__ == "__main__":
    main()
