"""E9 — Figures 1-3 and 5: the architectural diagrams, plus a live
demonstration of the mechanism each one describes.

Run:  python examples/architectures.py
"""

from repro.core.reporting import describe_architecture
from repro.core.testbed import build_testbed
from repro.hw.cpu.arm import ArmCpu
from repro.hw.cpu.registers import RegClass


def main():
    for figure in ("figure1", "figure2", "figure3", "figure5"):
        print(describe_architecture(figure))
        print()

    # Figure 5's mechanism, live: VHE register redirection.
    cpu = ArmCpu(vhe_capable=True)
    cpu.set_e2h(True)
    cpu.regs.write(RegClass.EL1_SYS, "ttbr1_el1", 0x1111)  # the guest's
    cpu.trap_to_el2()
    cpu.write_sysreg("ttbr1_el1", 0x2222)  # host kernel, unmodified code
    print("VHE redirection demo (the paper's TTBR1 example):")
    print("  host in EL2 wrote ttbr1_el1        -> value 0x%x lands in TTBR1_EL2"
          % cpu.read_sysreg("ttbr1_el1"))
    print("  guest's real TTBR1_EL1 (via _el21) -> 0x%x, untouched"
          % cpu.read_sysreg_el21("ttbr1_el1"))

    # And what it means for the world switch:
    for key in ("kvm-arm", "kvm-vhe-arm"):
        testbed = build_testbed(key)
        machine = testbed.machine
        suite_vcpu = testbed.vm.vcpu(0)
        testbed.hypervisor.install_guest(suite_vcpu)
        machine.tracer.enabled = True
        machine.tracer.begin("hypercall")
        machine.engine.spawn(testbed.hypervisor.run_hypercall(suite_vcpu), "hc")
        machine.run()
        trace = machine.tracer.end()
        print("\n%s hypercall path (%d cycles):" % (key, trace.total_cycles))
        for label, cycles in trace.by_label().items():
            print("    %-24s %6d" % (label, cycles))


if __name__ == "__main__":
    main()
