"""Reproduce the paper's Table V analysis: where does a TCP_RR
transaction's time go under each hypervisor?

Drives real request/response packets through the simulated wire, NIC,
hypervisor I/O paths, and guest processing, with data-link and in-VM
timestamps — the paper's tcpdump + architected-counter methodology.

Run:  python examples/netperf_latency_analysis.py
"""

from repro.core.netanalysis import run_table5
from repro.core.reporting import render_table5


def main():
    results = run_table5(transactions=40)
    print(render_table5(results))
    kvm, xen, native = results["kvm"], results["xen"], results["native"]
    print()
    print(
        "Both VMs spend nearly native time processing the packet internally\n"
        "(VM recv to VM send: %.1f/%.1f us vs %.1f us native recv-to-send);\n"
        "the overhead lives in the hypervisor-side delivery paths."
        % (
            kvm.vm_recv_to_vm_send_us,
            xen.vm_recv_to_vm_send_us,
            native.recv_to_send_us,
        )
    )
    extra = xen.recv_to_vm_recv_us + xen.vm_send_to_send_us
    extra -= kvm.recv_to_vm_recv_us + kvm.vm_send_to_send_us
    print(
        "\nXen delays each packet %.1f us more than KVM, split between the\n"
        "idle-domain -> Dom0 switches and the grant-mechanism copies that\n"
        "its strict I/O isolation requires." % extra
    )


if __name__ == "__main__":
    main()
