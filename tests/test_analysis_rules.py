"""Rule-engine tests against the deliberately-broken fixture tree.

Every fixture line that must fire carries a trailing ``# expect: RULE``
marker (comma-separated for multiple rules).  The tests assert the linter
reports *exactly* the marked ``(file, line, rule)`` set — each rule fires
where expected, nowhere else, and ``# repro-lint: ignore[...]`` lines stay
silent.
"""

import pathlib
import re

import pytest

from repro.analysis import run_analysis
from repro.analysis.config import LintConfig
from repro.analysis.engine import discover
from repro.analysis.rules import ALL_RULES, RULES_BY_CODE, active_rules

FIXTURES = pathlib.Path(__file__).parent / "analysis_fixtures"
_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9,\s]+)")

ALL_CODES = sorted(RULES_BY_CODE)


def expected_findings(rule=None):
    """{(relative file, line, rule), ...} scanned from fixture markers."""
    expected = set()
    for path in sorted(FIXTURES.rglob("*.py")):
        rel = path.relative_to(FIXTURES).as_posix()
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            match = _EXPECT_RE.search(line)
            if match is None:
                continue
            for code in match.group(1).split(","):
                code = code.strip()
                if code and (rule is None or code == rule):
                    expected.add((rel, lineno, code))
    return expected


def reported_findings(select=None):
    # flow/spec/conc=True: the fixture tree seeds those tiers too
    violations = run_analysis([FIXTURES], select=select, flow=True, spec=True, conc=True)
    reported = set()
    for violation in violations:
        rel = pathlib.Path(violation.path).relative_to(FIXTURES).as_posix()
        reported.add((rel, violation.line, violation.rule))
    return reported


class TestFixtureMarkers:
    def test_fixtures_present_and_marked(self):
        expected = expected_findings()
        assert expected, "fixture tree lost its expect markers"
        # one seeded violation per rule, at minimum
        assert {code for _, _, code in expected} == set(ALL_CODES)

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_rule_fires_exactly_where_expected(self, code):
        assert reported_findings(select=[code]) == expected_findings(rule=code)

    def test_all_rules_together_match_all_markers(self):
        assert reported_findings() == expected_findings()

    def test_suppression_comments_stay_silent(self):
        ignored_lines = set()
        for path in sorted(FIXTURES.rglob("*.py")):
            rel = path.relative_to(FIXTURES).as_posix()
            for lineno, line in enumerate(path.read_text().splitlines(), start=1):
                if "repro-lint: ignore" in line:
                    ignored_lines.add((rel, lineno))
        assert ignored_lines, "fixture tree lost its suppression demos"
        fired = {(rel, line) for rel, line, _ in reported_findings()}
        assert not ignored_lines & fired


class TestEngine:
    def test_relative_paths_and_subsystems(self):
        project, errors = discover([FIXTURES])
        assert errors == []
        relpaths = {module.relpath for module in project.modules}
        assert "hv/bad_world_switch.py" in relpaths
        assert "hw/costs.py" in relpaths
        module = project.module("hv/bad_world_switch.py")
        assert module.subsystem == "hv"

    def test_package_files_strip_through_repro(self, tmp_path):
        # a file inside the real package resolves relative to repro/
        import repro.hv.base as base_mod

        project, errors = discover([base_mod.__file__])
        assert errors == []
        assert project.modules[0].relpath == "hv/base.py"

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        violations = run_analysis([tmp_path])
        assert len(violations) == 1
        assert violations[0].rule == "E001"

    def test_unknown_rule_code_rejected(self):
        with pytest.raises(KeyError):
            run_analysis([FIXTURES], select=["NOPE999"])

    def test_bare_ignore_suppresses_every_rule(self, tmp_path):
        target = tmp_path / "hv"
        target.mkdir()
        (target / "mod.py").write_text(
            "def f(pcpu):\n"
            "    yield pcpu.op('x', 6000, 'host')  # repro-lint: ignore\n"
        )
        assert run_analysis([tmp_path], select=["CAL001"]) == []

    def test_violation_format_is_precise(self):
        violations = run_analysis([FIXTURES], select=["DES001"])
        assert len(violations) == 1
        formatted = violations[0].format()
        assert re.search(r"bad_world_switch\.py:\d+:\d+ DES001 ", formatted)


class TestConfig:
    def test_defaults_match_issue_scoping(self):
        config = LintConfig()
        assert config.paths_for("CAL001") == ("hv", "os", "core")
        assert config.paths_for("API001") == ("hv",)
        assert config.paths_for("DES001") == ()  # whole tree

    def test_select_resolution_order(self):
        config = LintConfig(select=("CAL001",))
        assert [rule.code for rule in active_rules(config)] == ["CAL001"]
        # CLI select overrides config select
        assert [rule.code for rule in active_rules(config, ["DES001"])] == ["DES001"]
        assert active_rules(LintConfig(), flow=True, spec=True, conc=True) is ALL_RULES

    def test_flow_tier_gated_behind_flag(self):
        # without --flow, the CFG-based rules stay out of the default set
        default_codes = {rule.code for rule in active_rules(LintConfig())}
        assert {"SYM001", "SYM002", "FLW001"} & default_codes == set()
        # an explicit select runs a flow rule even without the flag
        assert [r.code for r in active_rules(LintConfig(), ["SYM001"])] == ["SYM001"]

    def test_spec_tier_gated_behind_flag(self):
        # without --spec, the golden-file rules stay out of the default set
        default_codes = {rule.code for rule in active_rules(LintConfig())}
        assert {"SPEC001", "SPEC002", "SPEC003"} & default_codes == set()
        flow_codes = {rule.code for rule in active_rules(LintConfig(), flow=True)}
        assert {"SPEC001", "SPEC002", "SPEC003"} & flow_codes == set()
        # an explicit select runs a spec rule even without the flag
        assert [r.code for r in active_rules(LintConfig(), ["SPEC002"])] == ["SPEC002"]

    def test_minimal_toml_fallback_parses_our_block(self):
        from repro.analysis.config import _parse_toml_minimal

        pyproject = pathlib.Path(__file__).parent.parent / "pyproject.toml"
        data = _parse_toml_minimal(pyproject.read_text())
        section = data["tool"]["repro-lint"]
        assert section["select"] == [
            "CAL001", "DET001", "DES001", "COV001", "API001",
            "SYM001", "SYM002", "FLW001", "SPEC001", "SPEC002", "SPEC003",
            "CON001", "CON002", "CON003", "CON004", "CON005",
        ]
        assert section["paths"]["API001"] == ["hv"]
        assert section["paths"]["SYM001"] == ["hv"]
        assert section["paths"]["SPEC001"] == ["hv"]
        assert section["paths"]["CON001"] == ["service", "runner", "sim"]
        assert section["paths"]["DES001"] == []
        assert section["options"]["cal001-min-literal"] == 50
        assert section["options"]["spec-dir"] == "specs"

    def test_load_from_repo_pyproject(self):
        pyproject = pathlib.Path(__file__).parent.parent / "pyproject.toml"
        config = LintConfig.load(pyproject)
        assert config.select == (
            "CAL001", "DET001", "DES001", "COV001", "API001",
            "SYM001", "SYM002", "FLW001", "SPEC001", "SPEC002", "SPEC003",
            "CON001", "CON002", "CON003", "CON004", "CON005",
        )
        assert config.paths_for("CON003") == ("service", "runner", "sim")
        assert "workloads" in config.paths_for("COV001")
        assert config.cal001_min_literal == 50
        assert config.det001_allow == ("sim/rng.py",)
        assert config.paths_for("SYM002") == ("hv",)
        assert config.flow_max_paths == 2000
        # relative spec-dir resolves against the pyproject's directory
        assert config.spec_dir == str(pyproject.parent / "specs")

    def test_scoping_excludes_out_of_scope_subsystem(self, tmp_path):
        workloads = tmp_path / "workloads"
        workloads.mkdir()
        (workloads / "mod.py").write_text("def f():\n    return 1 // 8192\n")
        # default CAL001 scope is hv/os/core — workloads/ stays quiet...
        assert run_analysis([tmp_path], select=["CAL001"]) == []
        # ...until a config scopes the rule onto it
        config = LintConfig()
        config.rule_paths["CAL001"] = ("workloads",)
        assert len(run_analysis([tmp_path], config=config, select=["CAL001"])) == 1
