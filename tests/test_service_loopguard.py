"""ServerHandle off-loop guard + event-loop responsiveness regression.

``ServerHandle.drain``/``close`` block the calling thread on work the
server loop must perform — invoked *from* that loop they would deadlock
until the timeout.  The handle now refuses with a RuntimeError instead
(the runtime counterpart of lint rule CON001).  And the loop itself must
keep answering ``/healthz`` while a slow query is parked on the broker.
"""

import asyncio

from tests.serviceutil import (
    WAIT_S,
    counter_value,
    launch_queries,
    running_server,
    wait_until,
)


def _call_on_loop(handle, call):
    """Run ``call()`` inside the server's own event loop; return the
    RuntimeError message it raised, or None if it went through."""

    async def probe():
        try:
            call()
        except RuntimeError as exc:
            return str(exc)
        return None

    return asyncio.run_coroutine_threadsafe(probe(), handle._loop).result(WAIT_S)


class TestOffLoopGuard:
    def test_drain_refuses_to_run_on_the_server_loop(self):
        with running_server() as (handle, _client):
            message = _call_on_loop(handle, handle.drain)
            assert message is not None and "deadlock" in message

    def test_close_refuses_to_run_on_the_server_loop(self):
        with running_server() as (handle, _client):
            message = _call_on_loop(handle, handle.close)
            assert message is not None and "deadlock" in message
        # leaving the with-block ran close() off-loop, proving the guard
        # only rejects the deadlocking call shape

    def test_drain_still_works_from_other_threads(self):
        with running_server() as (handle, _client):
            assert handle.drain(timeout=WAIT_S) is True


class TestLoopResponsiveness:
    def test_healthz_answers_while_a_slow_query_is_in_flight(self):
        """Regression for the blocking-drain hazard: with the broker held
        (a provably in-flight slow query), the loop must still serve
        liveness probes immediately."""
        with running_server() as (handle, client):
            handle.broker.hold()
            try:
                threads = launch_queries(client, [("table2", None)])
                wait_until(
                    lambda: counter_value(handle, "service.cells.requested") == 4,
                    "the slow query to register",
                )
                for _ in range(3):
                    status, health = client.request("GET", "/healthz")
                    assert status == 200
                    assert health["ok"] is True
                    assert health["status"] == "ok"
            finally:
                handle.broker.release()
            (document,) = [thread.result() for thread in threads]
            assert document["stats"]["cells"] == 4
