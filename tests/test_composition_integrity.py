"""No-hardcoding integrity: composed results must track the primitives.

These tests perturb primitive costs and verify the composed Table II
operations move exactly as the modeled paths dictate — the property that
distinguishes a simulation from a lookup table.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.microbench import MicrobenchmarkSuite
from repro.core.testbed import build_testbed
from repro.hw.costs import ArmCosts, X86Costs
from repro.hw.cpu.registers import RegClass


def measure(key, costs=None, name="Hypercall"):
    suite = MicrobenchmarkSuite(build_testbed(key, costs=costs))
    return {
        "Hypercall": suite.hypercall,
        "Interrupt Controller Trap": suite.interrupt_controller_trap,
        "I/O Latency Out": suite.io_latency_out,
        "VM Switch": suite.vm_switch,
    }[name]().cycles


class TestArmComposition:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 3000))
    def test_vgic_save_delta_flows_through_kvm_hypercall(self, delta):
        costs = ArmCosts()
        base = measure("kvm-arm", ArmCosts())
        costs.save[RegClass.VGIC] += delta
        assert measure("kvm-arm", costs) == base + delta

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 500))
    def test_trap_cost_counts_twice_per_kvm_hypercall(self, delta):
        """The split-mode double trap: trap cost appears twice (VM->EL2
        and host hvc->EL2)."""
        costs = ArmCosts()
        costs.trap_to_el2 += delta
        base = measure("kvm-arm", ArmCosts())
        assert measure("kvm-arm", costs) == base + 2 * delta

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 500))
    def test_xen_hypercall_untouched_by_kvm_primitives(self, delta):
        """Xen's hypercall never touches the full save/restore costs."""
        costs = ArmCosts()
        costs.save[RegClass.VGIC] += delta
        costs.restore[RegClass.EL1_SYS] += delta
        base = measure("xen-arm", ArmCosts())
        assert measure("xen-arm", costs) == base

    def test_xen_light_switch_primitives_flow_through(self):
        costs = ArmCosts()
        costs.gp_save_light += 111
        assert measure("xen-arm", costs) == measure("xen-arm", ArmCosts()) + 111

    def test_vm_switch_uses_thread_switch_only_for_kvm(self):
        kvm_costs = ArmCosts()
        kvm_costs.host_thread_switch += 777
        assert (
            measure("kvm-arm", kvm_costs, "VM Switch")
            == measure("kvm-arm", ArmCosts(), "VM Switch") + 777
        )
        xen_costs = ArmCosts()
        xen_costs.host_thread_switch += 777
        assert (
            measure("xen-arm", xen_costs, "VM Switch")
            == measure("xen-arm", ArmCosts(), "VM Switch")
        )

    def test_xen_ctx_extra_flows_into_xen_switch(self):
        costs = ArmCosts()
        costs.xen_ctx_extra += 500
        assert (
            measure("xen-arm", costs, "VM Switch")
            == measure("xen-arm", ArmCosts(), "VM Switch") + 500
        )


class TestX86Composition:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 1000))
    def test_vmexit_delta_flows_through_both_hypervisors(self, delta):
        for key in ("kvm-x86", "xen-x86"):
            costs = X86Costs()
            costs.vmexit_hw += delta
            assert measure(key, costs) == measure(key, X86Costs()) + delta

    def test_io_out_isolated_from_dispatch_on_x86_kvm(self):
        """The ioeventfd fast path skips the exit dispatch entirely."""
        costs = X86Costs()
        costs.kvm_exit_dispatch += 999
        assert (
            measure("kvm-x86", costs, "I/O Latency Out")
            == measure("kvm-x86", X86Costs(), "I/O Latency Out")
        )

    def test_arm_io_out_does_pay_dispatch(self):
        costs = ArmCosts()
        costs.kvm_exit_dispatch += 999
        assert (
            measure("kvm-arm", costs, "I/O Latency Out")
            == measure("kvm-arm", ArmCosts(), "I/O Latency Out") + 999
        )


class TestCrossPlatformIsolation:
    def test_arm_and_x86_cost_models_are_independent_instances(self):
        a = build_testbed("kvm-arm")
        b = build_testbed("kvm-x86")
        assert a.machine.costs is not b.machine.costs
        assert type(a.machine.costs) is not type(b.machine.costs)

    def test_fresh_testbeds_get_fresh_cost_models(self):
        a = build_testbed("kvm-arm")
        a.machine.costs.trap_to_el2 += 1000
        b = build_testbed("kvm-arm")
        assert b.machine.costs.trap_to_el2 == ArmCosts().trap_to_el2
