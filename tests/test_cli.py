"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_micro_platform_choices(self):
        args = build_parser().parse_args(["micro", "--platform", "xen-arm"])
        assert args.platform == "xen-arm"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["micro", "--platform", "vmware"])

    def test_table5_transactions_flag(self):
        args = build_parser().parse_args(["table5", "--transactions", "7"])
        assert args.transactions == 7


class TestExecution:
    def test_micro_command(self, capsys):
        assert main(["micro", "--platform", "xen-arm"]) == 0
        out = capsys.readouterr().out
        assert "Hypercall" in out
        assert "376" in out

    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Figure 5" in out

    def test_table3_command(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "VGIC Regs" in out
        assert "3250" in out

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Microbenchmark" in out
        assert "kvm-arm" in out


class TestTraceCommand:
    def test_trace_target_choices(self):
        args = build_parser().parse_args(["trace", "table3", "-o", "t.json"])
        assert args.target == "table3" and args.output == "t.json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "table9"])

    def test_trace_prints_span_tree(self, capsys):
        assert main(["trace", "table3"]) == 0
        out = capsys.readouterr().out
        assert "hypercall" in out
        assert "split_mode_exit" in out
        assert "save_vgic" in out
        assert "hv.traps" in out

    def test_trace_writes_valid_perfetto_json(self, tmp_path, capsys):
        import json
        import sys

        path = tmp_path / "trace.json"
        assert main(["trace", "vm-switch", "--platform", "xen-arm", "-o", str(path)]) == 0
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events
        for event in events:
            for key in ("ph", "ts", "dur", "pid", "tid"):
                assert key in event
        assert any(event["ph"] == "X" for event in events)
        # The CI schema smoke agrees.
        sys.path.insert(0, "tools")
        try:
            import validate_trace
        finally:
            sys.path.pop(0)
        assert validate_trace.validate(str(path)) == []


class TestEmitJson:
    def test_table3_emit_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "table3.json"
        assert main(["table3", "--emit-json", str(path)]) == 0
        data = json.loads(path.read_text())
        vgic = next(r for r in data["rows"] if r["register_state"] == "VGIC Regs")
        assert vgic["save_cycles"] == 3250
        assert data["total_cycles"] == sum(
            r["save_cycles"] + r["restore_cycles"] for r in data["rows"]
        ) + data["other_cycles"]
        # The rendered table still went to stdout.
        assert "VGIC Regs" in capsys.readouterr().out

    def test_table2_emit_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "table2.json"
        assert main(["table2", "--emit-json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert set(data) == {"kvm-arm", "kvm-x86", "xen-arm", "xen-x86"}
        assert data["kvm-arm"]["Hypercall"] > 0
        capsys.readouterr()
