"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_micro_platform_choices(self):
        args = build_parser().parse_args(["micro", "--platform", "xen-arm"])
        assert args.platform == "xen-arm"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["micro", "--platform", "vmware"])

    def test_table5_transactions_flag(self):
        args = build_parser().parse_args(["table5", "--transactions", "7"])
        assert args.transactions == 7


class TestExecution:
    def test_micro_command(self, capsys):
        assert main(["micro", "--platform", "xen-arm"]) == 0
        out = capsys.readouterr().out
        assert "Hypercall" in out
        assert "376" in out

    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Figure 5" in out

    def test_table3_command(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "VGIC Regs" in out
        assert "3250" in out

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Microbenchmark" in out
        assert "kvm-arm" in out
