"""Differential harness: the parallel runner vs the serial suite.

The runner's contract is *byte identity*: sharding the report into
cells, fanning them out over worker processes, or serving them from the
content-addressed cache must never change a single byte of output.
The reference here is the pre-runner serial composition, rebuilt
directly from the core modules (exactly what ``suite.full_report()``
did before the runner existed), plus the golden sha256 anchor from
tests/test_obs_invariance.py.
"""

import hashlib

import pytest

from repro.core import reporting, suite
from repro.core.appbench import run_figure4
from repro.core.breakdown import hypercall_breakdown
from repro.core.irqbalance import run_irq_distribution_ablation
from repro.core.microbench import MicrobenchmarkSuite
from repro.core.netanalysis import run_table5
from repro.core.testbed import build_testbed
from repro.core.vhe_projection import run_vhe_comparison
from repro.paperdata import PLATFORM_ORDER
from repro.runner import ResultCache, cells, run_cells
from repro.runner.merge import full_report_text

from tests.test_obs_invariance import GOLDEN_FULL_REPORT_SHA256


def _sha256(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _serial_full_report():
    """The pre-runner serial path, composed from the core modules."""
    measured = {
        key: MicrobenchmarkSuite(build_testbed(key)).run_all()
        for key in PLATFORM_ORDER
    }
    sections = [
        reporting.render_table2(measured),
        reporting.render_table3(hypercall_breakdown()),
        reporting.render_table5(run_table5()),
        reporting.render_figure4(run_figure4(PLATFORM_ORDER), PLATFORM_ORDER),
        reporting.render_ablation(run_irq_distribution_ablation()),
        reporting.render_vhe(run_vhe_comparison()),
    ]
    return "\n\n".join(sections)


@pytest.fixture(scope="module")
def serial_report():
    return _serial_full_report()


def test_serial_reference_matches_golden(serial_report):
    # Anchors the *reference* itself: if the model changed, this (not a
    # runner bug) is why the differential tests moved.
    assert _sha256(serial_report) == GOLDEN_FULL_REPORT_SHA256


def test_full_report_jobs1_byte_identical(serial_report):
    assert suite.full_report() == serial_report


def test_full_report_jobs4_byte_identical(serial_report):
    assert suite.full_report(jobs=4) == serial_report


def test_full_report_cold_then_warm_cache_byte_identical(serial_report, tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = suite.full_report(cache_dir=cache_dir)
    warm = suite.full_report(cache_dir=cache_dir)
    assert cold == serial_report
    assert warm == serial_report


def test_warm_cache_resimulates_zero_cells(tmp_path):
    cache_dir = tmp_path / "cache"
    specs = cells.full_report_cells()
    cold = run_cells(specs, cache=ResultCache(cache_dir))

    warm_cache = ResultCache(cache_dir)
    warm = run_cells(specs, cache=warm_cache)

    assert warm_cache.misses == 0
    assert warm_cache.hits == len(warm)
    assert all(result.source == "cache" for result in warm.values())
    assert all(result.source == "run" for result in cold.values())
    assert full_report_text(warm) == full_report_text(cold)


def test_merge_order_is_request_order_not_completion_order(tmp_path):
    # Feed the grid in reversed order with a warm cache (so "completion"
    # is instant and uniform): the result map must follow request order.
    specs = cells.full_report_cells()
    run_cells(specs, cache=ResultCache(tmp_path))
    reversed_results = run_cells(list(reversed(specs)), cache=ResultCache(tmp_path))
    assert list(reversed_results) == [spec.id for spec in reversed(specs)]
    # ...and the merge still renders the same bytes from it.
    assert full_report_text(reversed_results) == full_report_text(
        run_cells(specs, cache=ResultCache(tmp_path))
    )


def test_shared_cells_deduplicated():
    # Table II and the VHE comparison both need micro[key=kvm-arm]; the
    # full grid must carry it exactly once.
    specs = cells.full_report_cells()
    ids = [spec.id for spec in specs]
    assert len(ids) == len(set(ids))
    assert cells.micro("kvm-arm").id in ids
    assert cells.appcol("kvm-arm").id in ids
