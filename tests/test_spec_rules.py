"""Mutation tests for the spec tier: each seeded change to a copy of the
real model tree must fire exactly the one rule that owns it.

* reorder a step inside ``hv/kvm/world_switch.py``  -> SPEC001 (drift)
* rename a cost field in ``hw/costs.py``            -> SPEC002 (consistency)
* narrow the Xen restore sweep (specs re-landed)    -> SPEC003 (symmetry)
* inject a bogus committed spec entry               -> SPEC001 (stale)
"""

import json
import pathlib
import shutil

from repro.analysis import run_analysis
from repro.analysis.pathspec import cli as spec_cli

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

SPEC_RULES = ["SPEC001", "SPEC002", "SPEC003"]


def make_tree(tmp_path):
    """A self-contained copy: the hypervisor models, the cost model and
    the committed goldens — exactly what the spec tier consumes."""
    tree = tmp_path / "tree"
    shutil.copytree(SRC / "hv", tree / "hv")
    shutil.copytree(SRC / "hw", tree / "hw")
    shutil.copytree(REPO / "specs", tree / "specs")
    return tree


def spec_findings(tree):
    return run_analysis([tree], select=SPEC_RULES)


def def_line(path, name):
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("def %s(" % name):
            return lineno
    raise AssertionError("no def %s in %s" % (name, path))


def test_baseline_copy_is_clean(tmp_path):
    tree = make_tree(tmp_path)
    findings = spec_findings(tree)
    assert findings == [], "\n".join(v.format() for v in findings)


def test_reordered_step_fires_spec001_alone(tmp_path):
    tree = make_tree(tmp_path)
    target = tree / "hv" / "kvm" / "world_switch.py"
    original = (
        "    vcpu.saved_context = arch.save_context(ARM_SWITCH_ORDER)\n"
        "    arch.disable_virt_features()\n"
        '    yield pcpu.op("disable_virt_features", costs.virt_feature_toggle, "config")\n'
    )
    reordered = (
        "    arch.disable_virt_features()\n"
        '    yield pcpu.op("disable_virt_features", costs.virt_feature_toggle, "config")\n'
        "    vcpu.saved_context = arch.save_context(ARM_SWITCH_ORDER)\n"
    )
    text = target.read_text()
    assert original in text, "split_mode_exit changed shape; update this test"
    target.write_text(text.replace(original, reordered))

    findings = spec_findings(tree)
    assert [v.rule for v in findings] == ["SPEC001"]
    violation = findings[0]
    assert violation.path == str(target)
    assert violation.line == def_line(target, "split_mode_exit")
    assert "drifted" in violation.message
    assert "spec extract" in violation.message


def test_renamed_cost_field_fires_spec002_alone(tmp_path):
    tree = make_tree(tmp_path)
    target = tree / "hw" / "costs.py"
    text = target.read_text()
    assert "    virt_feature_toggle: int = " in text
    target.write_text(
        text.replace("    virt_feature_toggle: int = ", "    virt_feature_flip: int = ")
    )

    findings = spec_findings(tree)
    assert findings and {v.rule for v in findings} == {"SPEC002"}
    messages = "\n".join(v.message for v in findings)
    # forward: the switch paths now charge a field that no longer exists
    assert "'virt_feature_toggle' which is not a field" in messages
    # backward: the renamed field is charged by nothing
    assert "'virt_feature_flip' is unreachable" in messages


def test_narrowed_restore_sweep_fires_spec003_alone(tmp_path):
    tree = make_tree(tmp_path)
    target = tree / "hv" / "xen" / "xen.py"
    original = (
        "            for reg_class in ALL_ARM_CLASSES:\n"
        "                yield pcpu.op(\n"
        '                    "restore_%s" % reg_class.name.lower(),\n'
    )
    narrowed = (
        "            for reg_class in PARTIAL_RESTORE_ORDER:\n"
        "                yield pcpu.op(\n"
        '                    "restore_%s" % reg_class.name.lower(),\n'
    )
    text = target.read_text()
    assert original in text, "_domain_switch changed shape; update this test"
    target.write_text(
        text.replace(original, narrowed)
        + "\nPARTIAL_RESTORE_ORDER = ALL_ARM_CLASSES[:4]\n"
    )
    # re-land the goldens so SPEC001 stays quiet: the asymmetry is now
    # faithfully *committed* — only the skeleton comparison can catch it
    assert spec_cli.main(["extract", str(tree), "--no-config"]) == 0

    findings = spec_findings(tree)
    assert [v.rule for v in findings] == ["SPEC003"]
    violation = findings[0]
    assert violation.path == str(target)
    assert violation.line == def_line(target, "_domain_switch")
    assert "arm-full-vm-switch" in violation.message
    assert "PARTIAL_RESTORE_ORDER" in violation.message
    assert "Table III" in violation.message


def test_stale_committed_entry_fires_spec001_at_the_spec_file(tmp_path):
    tree = make_tree(tmp_path)
    golden = tree / "specs" / "hv.json"
    document = json.loads(golden.read_text())
    document["specs"].append(
        {
            "id": "hv/ghost.py::gone",
            "module": "hv/ghost.py",
            "function": "gone",
            "truncated": False,
            "paths": [{"terminator": "fall", "steps": []}],
        }
    )
    golden.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")

    findings = spec_findings(tree)
    assert [v.rule for v in findings] == ["SPEC001"]
    violation = findings[0]
    assert violation.path == str(golden)
    assert violation.line == 1
    assert "hv/ghost.py::gone" in violation.message
    assert "matches no extracted function" in violation.message


def test_missing_spec_dir_points_at_extract(tmp_path):
    tree = make_tree(tmp_path)
    shutil.rmtree(tree / "specs")
    findings = spec_findings(tree)
    assert [v.rule for v in findings] == ["SPEC001"]
    assert "spec extract" in findings[0].message
