"""Unit tests for the GIC, APIC, and IPI fabric."""

import pytest

from repro.errors import HardwareFault
from repro.hw.irq import Apic, Gic, IpiFabric
from repro.hw.irq.gic import (
    NUM_LIST_REGISTERS,
    VIRTUAL_TIMER_PPI,
    GicDistributor,
    ListRegister,
    VirtualCpuInterface,
)
from repro.hw.platform import Machine, arm_m400
from repro.sim import Engine


class TestDistributor:
    def test_enable_disable(self):
        dist = GicDistributor(4)
        dist.enable(40)
        assert dist.is_enabled(40)
        dist.disable(40)
        assert not dist.is_enabled(40)

    def test_sgi_banked_per_cpu(self):
        dist = GicDistributor(4)
        dist.enable(1)
        dist.raise_sgi(target_cpu=2, irq=1)
        assert dist.pending_for(2) == [1]
        assert dist.pending_for(1) == []

    def test_sgi_range_enforced(self):
        with pytest.raises(HardwareFault):
            GicDistributor(4).raise_sgi(0, irq=40)

    def test_ppi_virtual_timer(self):
        dist = GicDistributor(4)
        dist.enable(VIRTUAL_TIMER_PPI)
        dist.raise_ppi(3, VIRTUAL_TIMER_PPI)
        assert dist.pending_for(3) == [VIRTUAL_TIMER_PPI]

    def test_spi_routed_by_affinity(self):
        dist = GicDistributor(4)
        dist.enable(64)
        dist.set_spi_target(64, 1)
        dist.raise_spi(64)
        assert dist.pending_for(1) == [64]
        assert dist.pending_for(0) == []

    def test_spi_affinity_rejects_banked_irqs(self):
        with pytest.raises(HardwareFault):
            GicDistributor(4).set_spi_target(5, 0)

    def test_disabled_irq_not_deliverable(self):
        dist = GicDistributor(4)
        dist.raise_sgi(0, 3)
        assert dist.pending_for(0) == []

    def test_acknowledge_clears_pending(self):
        dist = GicDistributor(4)
        dist.enable(2)
        dist.raise_sgi(0, 2)
        assert dist.acknowledge(0, 2) == 2
        assert dist.pending_for(0) == []

    def test_acknowledge_not_pending_faults(self):
        with pytest.raises(HardwareFault):
            GicDistributor(4).acknowledge(0, 2)


class TestVirtualInterface:
    def test_inject_ack_complete_cycle(self):
        vif = VirtualCpuInterface()
        assert vif.inject(27)
        assert vif.has_pending()
        assert vif.guest_acknowledge() == 27
        vif.guest_complete(27)
        assert not vif.has_pending()

    def test_complete_without_ack_faults(self):
        """Completing a virq that was never made active is a guest bug the
        hardware (and our model) rejects."""
        vif = VirtualCpuInterface()
        vif.inject(27)
        with pytest.raises(HardwareFault):
            vif.guest_complete(27)

    def test_ack_with_nothing_pending_faults(self):
        with pytest.raises(HardwareFault):
            VirtualCpuInterface().guest_acknowledge()

    def test_overflow_beyond_list_registers(self):
        vif = VirtualCpuInterface()
        for virq in range(NUM_LIST_REGISTERS):
            assert vif.inject(100 + virq)
        assert not vif.inject(999)  # no free LR
        assert vif.overflow == [999]

    def test_refill_from_overflow(self):
        vif = VirtualCpuInterface()
        for virq in range(NUM_LIST_REGISTERS + 2):
            vif.inject(virq)
        virq = vif.guest_acknowledge()
        vif.guest_complete(virq)
        assert vif.refill_from_overflow() == 1
        assert len(vif.overflow) == 1

    def test_snapshot_load_round_trip(self):
        """The LR image KVM saves/restores on every world switch."""
        vif = VirtualCpuInterface()
        vif.inject(30)
        vif.guest_acknowledge()
        vif.inject(31)
        image = vif.snapshot()
        other = VirtualCpuInterface()
        other.load(image)
        assert other.guest_acknowledge() == 31
        other.guest_complete(30)  # the active one carried over
        assert [lr.state for lr in other.list_registers].count(ListRegister.ACTIVE) == 1


class TestGic:
    def test_virtual_interface_created_per_key(self):
        gic = Gic(4)
        a = gic.virtual_interface("vm0.vcpu0")
        assert gic.virtual_interface("vm0.vcpu0") is a
        assert gic.virtual_interface("vm0.vcpu1") is not a


class TestApic:
    def test_ipi_requests_vector(self):
        apic = Apic(4)
        apic.send_ipi(2, 0xF0)
        assert apic.lapic(2).has_pending()

    def test_deliver_then_eoi(self):
        apic = Apic(2)
        apic.send_ipi(0, 0x40)
        lapic = apic.lapic(0)
        assert lapic.deliver_highest() == 0x40
        lapic.eoi(0x40)
        assert not lapic.isr

    def test_eoi_without_service_faults(self):
        with pytest.raises(HardwareFault):
            Apic(1).lapic(0).eoi(0x40)

    def test_highest_priority_first(self):
        apic = Apic(1)
        apic.send_ipi(0, 0x30)
        apic.send_ipi(0, 0x80)
        assert apic.lapic(0).deliver_highest() == 0x80

    def test_unknown_lapic_rejected(self):
        with pytest.raises(HardwareFault):
            Apic(2).lapic(5)


class TestIpiFabric:
    def test_delivery_after_wire_delay(self):
        machine = Machine(arm_m400())
        got = []

        def handler_gen(pcpu, irq, payload):
            got.append((machine.engine.now, pcpu.index, irq, payload))
            if False:
                yield
            return

        machine.pcpu(3).irq_handler = handler_gen
        machine.ipi.send(machine.pcpu(3), irq=1, payload="hi")
        machine.run()
        assert got == [(machine.costs.ipi_wire, 3, 1, "hi")]
        assert machine.ipi.sent == 1

    def test_no_handler_faults(self):
        machine = Machine(arm_m400())
        machine.ipi.send(machine.pcpu(0), irq=1)
        with pytest.raises(HardwareFault):
            machine.run()

    def test_no_target_rejected(self):
        fabric = IpiFabric(Engine(), 100)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fabric.send(None, irq=1)
