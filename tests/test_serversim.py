"""Tests for the request-level server simulation."""

import pytest

from repro.core.derived import measure_derived_costs
from repro.core.serversim import ServerLoadSimulation, run_server_comparison
from repro.core.testbed import build_testbed, native_testbed
from repro.errors import ConfigurationError


class TestParameters:
    def test_concurrency_validation(self):
        with pytest.raises(ConfigurationError):
            ServerLoadSimulation(native_testbed("arm"), concurrency=0, requests=10)
        with pytest.raises(ConfigurationError):
            ServerLoadSimulation(native_testbed("arm"), concurrency=20, requests=10)


class TestNativeBaseline:
    def test_native_throughput_tracks_cpu_capacity(self):
        """4 VCPUs x 300 us/request -> ~13.3k requests/s."""
        result = ServerLoadSimulation(
            native_testbed("arm"), requests=200, concurrency=16
        ).run()
        assert result.requests == 200
        assert result.requests_per_second == pytest.approx(13333, rel=0.05)

    def test_more_concurrency_does_not_exceed_capacity(self):
        low = ServerLoadSimulation(
            native_testbed("arm"), requests=200, concurrency=8
        ).run()
        high = ServerLoadSimulation(
            native_testbed("arm"), requests=200, concurrency=32
        ).run()
        assert high.requests_per_second <= low.requests_per_second * 1.05


class TestEmergentBottleneck:
    @pytest.fixture(scope="class")
    def comparison(self):
        return {
            irq_vcpus: run_server_comparison(irq_vcpus=irq_vcpus, requests=200)
            for irq_vcpus in (1, 4)
        }

    def test_single_vcpu_interrupts_saturate_vcpu0(self, comparison):
        kvm = comparison[1]["kvm-arm"]
        assert kvm.irq_vcpu_utilization > 0.97  # "fully utilizes the PCPU"

    def test_overheads_match_paper_anchors(self, comparison):
        native = comparison[1]["native"]
        kvm_single = comparison[1]["kvm-arm"].normalized_to(native)
        xen_single = comparison[1]["xen-arm"].normalized_to(native)
        assert kvm_single == pytest.approx(1.35, abs=0.12)
        assert xen_single == pytest.approx(1.84, abs=0.15)

    def test_distribution_recovers_throughput(self, comparison):
        native = comparison[4]["native"]
        for key in ("kvm-arm", "xen-arm"):
            single = comparison[1][key].normalized_to(comparison[1]["native"])
            spread = comparison[4][key].normalized_to(native)
            assert spread < single - 0.10

    def test_agrees_with_closed_form_model(self, comparison):
        """DES queueing result vs the Figure 4 formula, same inputs."""
        from repro.core.appbench import run_workload
        from repro.workloads import Apache

        native = comparison[1]["native"]
        sim = comparison[1]["kvm-arm"].normalized_to(native)
        closed = run_workload(Apache(), "kvm-arm", irq_vcpus=1).normalized
        assert sim == pytest.approx(closed, abs=0.12)

    def test_deterministic(self):
        derived = measure_derived_costs("kvm-arm")

        def run_once():
            return ServerLoadSimulation(
                build_testbed("kvm-arm"), derived=derived, requests=100
            ).run()

        assert run_once().total_cycles == run_once().total_cycles
