"""Unit tests for the OS layer: netstack, kernel, scheduler, drivers."""

import pytest

from repro.errors import ConfigurationError
from repro.os import CfsScheduler, KernelModel, NetstackModel
from repro.os.drivers import VirtioNetFrontend, XenNetfront
from repro.os.sched import Task
from repro.sim import Clock

ARM_CLOCK = Clock(2.4e9)
X86_CLOCK = Clock(2.1e9)


class TestNetstack:
    def test_native_recv_to_send_matches_table5_anchor(self):
        """14.5 us on the 2.4 GHz ARM platform (paper Table V native)."""
        model = NetstackModel(ARM_CLOCK)
        us = ARM_CLOCK.us_from_cycles(model.native_recv_to_send_cycles())
        assert us == pytest.approx(14.5, rel=0.01)

    def test_costs_are_time_constant_across_platforms(self):
        """Same nanosecond work -> different cycle counts per frequency."""
        arm = NetstackModel(ARM_CLOCK)
        x86 = NetstackModel(X86_CLOCK)
        assert arm.host_rx_cycles() > x86.host_rx_cycles()
        assert ARM_CLOCK.us_from_cycles(arm.host_rx_cycles()) == pytest.approx(
            X86_CLOCK.us_from_cycles(x86.host_rx_cycles()), rel=0.01
        )

    def test_requires_clock(self):
        with pytest.raises(ConfigurationError):
            NetstackModel(None)

    def test_guest_stack_same_as_host_stack(self):
        """Same kernel runs in the guest; same per-packet work."""
        model = NetstackModel(ARM_CLOCK)
        assert model.guest_rx_cycles() == model.host_rx_cycles()
        assert model.guest_tx_cycles() == model.host_tx_cycles()


class TestKernel:
    def test_costs_positive_and_ordered(self):
        kernel = KernelModel(ARM_CLOCK)
        assert 0 < kernel.syscall_cycles() < kernel.process_switch_cycles()
        assert kernel.process_switch_cycles() < kernel.fork_exec_cycles()

    def test_resched_ipi_under_microseconds(self):
        kernel = KernelModel(ARM_CLOCK)
        assert ARM_CLOCK.us_from_cycles(kernel.resched_ipi_cycles()) < 1.0


class TestCfs:
    def test_pick_lowest_vruntime(self):
        sched = CfsScheduler(2)
        a, b = Task("a"), Task("b")
        sched.add_task(a)
        sched.add_task(b)
        sched.account(a, 1000)
        assert sched.pick_next() is b

    def test_weight_scales_vruntime(self):
        sched = CfsScheduler(1)
        heavy = Task("heavy", weight=2048)
        light = Task("light", weight=1024)
        sched.add_task(heavy)
        sched.add_task(light)
        sched.account(heavy, 1000)
        sched.account(light, 1000)
        assert heavy.vruntime < light.vruntime

    def test_sleeping_tasks_not_picked(self):
        sched = CfsScheduler(1)
        sched.add_task(Task("a"))
        sched.sleep("a")
        assert sched.pick_next() is None
        sched.wake("a")
        assert sched.pick_next().name == "a"

    def test_load_metric(self):
        sched = CfsScheduler(4)
        for index in range(8):
            sched.add_task(Task("t%d" % index))
        assert sched.load() == 2.0

    def test_duplicate_task_rejected(self):
        sched = CfsScheduler(1)
        sched.add_task(Task("a"))
        with pytest.raises(ConfigurationError):
            sched.add_task(Task("a"))

    def test_invalid_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            Task("bad", weight=0)

    def test_deterministic_tie_break(self):
        sched = CfsScheduler(1)
        sched.add_task(Task("b"))
        sched.add_task(Task("a"))
        assert sched.pick_next().name == "a"


class TestDrivers:
    def test_netfront_heavier_than_virtio(self):
        """Grant bookkeeping makes the Xen frontend cost more per packet
        (Table V: +2.9 us VM-internal vs +2.4 us)."""
        virtio = VirtioNetFrontend(ARM_CLOCK)
        netfront = XenNetfront(ARM_CLOCK)
        assert netfront.tx_cycles() > virtio.tx_cycles()
        assert netfront.rx_cycles() > virtio.rx_cycles()

    def test_counters_track_usage(self):
        driver = VirtioNetFrontend(ARM_CLOCK)
        driver.tx_cycles()
        driver.tx_cycles()
        driver.rx_cycles()
        assert (driver.tx_count, driver.rx_count) == (2, 1)

    def test_vm_internal_delta_matches_table5(self):
        """Driver extras ~= the VM-internal time above native: virtio
        2.4 us, netfront 2.9 us per transaction (one rx + one tx)."""
        virtio = VirtioNetFrontend(ARM_CLOCK)
        netfront = XenNetfront(ARM_CLOCK)
        virtio_us = ARM_CLOCK.us_from_cycles(virtio.rx_cycles() + virtio.tx_cycles())
        netfront_us = ARM_CLOCK.us_from_cycles(netfront.rx_cycles() + netfront.tx_cycles())
        assert virtio_us == pytest.approx(2.4, rel=0.01)
        assert netfront_us == pytest.approx(2.9, rel=0.01)
