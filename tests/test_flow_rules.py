"""Unit tests for the flow tier: effect extraction, rule behavior on
inline sources, suppression-block attachment, ``--ignore`` filtering and
the statistics renderer."""

import json
import textwrap

from repro.analysis import run_analysis
from repro.analysis.config import LintConfig
from repro.analysis.engine import Project, SourceModule
from repro.analysis.report import render_json, render_statistics, render_text
from repro.analysis.rules import RULES_BY_CODE


def check(code, source, relpath="hv/mod.py", config=None):
    """Run one flow rule over an inline source string."""
    module = SourceModule("/virtual/" + relpath, relpath, textwrap.dedent(source))
    rule = RULES_BY_CODE[code]
    violations = list(rule.check(Project([module]), config or LintConfig()))
    return [(v.line, v.message) for v in violations]


class TestSym001Tokens:
    def test_subscript_token_from_loop_binding(self):
        # costs.save[reg_class] with reg_class bound by the for loop:
        # the token is the (dotted) iterable name, shared by both sweeps
        findings = check(
            "SYM001",
            """\
            def switch(pcpu, costs, order):
                for reg_class in order.classes:
                    yield pcpu.op("s", costs.save[reg_class], "save")
                for reg_class in order.classes:
                    yield pcpu.op("r", costs.restore[reg_class], "restore")
            """,
        )
        assert findings == []

    def test_mismatched_tokens_fire(self):
        findings = check(
            "SYM001",
            """\
            def switch(pcpu, costs):
                yield pcpu.op("save_gp", costs.save_gp, "save")
                yield pcpu.op("restore_fp", costs.restore_fp, "restore")
            """,
        )
        assert len(findings) == 2  # gp never restored AND fp never saved

    def test_attribute_subscript_token(self):
        findings = check(
            "SYM001",
            """\
            def switch(pcpu, costs):
                yield pcpu.op("s", costs.save[RegClass.VGIC], "save")
                yield pcpu.op("r", costs.restore[RegClass.VGIC], "restore")
            """,
        )
        assert findings == []

    def test_context_moves_counted_not_tokenized(self):
        findings = check(
            "SYM001",
            """\
            def resched(pcpu, this, next_ctx):
                pcpu.save_context(this)
                if next_ctx is None:
                    return
                pcpu.load_context(next_ctx)
            """,
        )
        assert len(findings) == 1
        assert "context" in findings[0][1]

    def test_one_sided_function_flagged_at_def(self):
        findings = check(
            "SYM001",
            """\
            def save_half(pcpu, costs):
                yield pcpu.op("save_gp", costs.save_gp, "save")
            """,
        )
        assert [line for line, _ in findings] == [1]

    def test_non_hv_relpath_out_of_default_scope(self):
        config = LintConfig()
        config.rule_paths["SYM001"] = ("hv",)
        findings = check(
            "SYM001",
            """\
            def save_half(pcpu, costs):
                yield pcpu.op("save_gp", costs.save_gp, "save")
            """,
            relpath="workloads/mod.py",
            config=config,
        )
        assert findings == []


class TestSym002:
    def test_needs_both_kinds_present(self):
        # an exit-half function (eret only) is legitimate: it was entered
        # in hypervisor context by construction
        findings = check(
            "SYM002",
            """\
            def finish(pcpu):
                pcpu.arch.eret("el1")
            """,
        )
        assert findings == []

    def test_early_raise_between_pair(self):
        findings = check(
            "SYM002",
            """\
            def handle(pcpu, vcpu):
                pcpu.arch.trap_to_el2("wfi")
                if vcpu.dead:
                    raise RuntimeError("gone")
                pcpu.arch.eret("el1")
            """,
        )
        assert len(findings) == 1
        line, message = findings[0]
        assert line == 2
        assert "raises at line 4" in message

    def test_virt_disable_without_reenable(self):
        findings = check(
            "SYM002",
            """\
            def run_host(pcpu, fast):
                pcpu.disable_virt_features()
                if fast:
                    return
                pcpu.enable_virt_features()
            """,
        )
        assert len(findings) == 1
        assert "returns at line 4" in findings[0][1]


class TestFlw001:
    def test_same_shape_one_arm_charged(self):
        findings = check(
            "FLW001",
            """\
            def notify(pcpu, costs, vcpu):
                if vcpu.running:
                    yield pcpu.op("kick", costs.kick, "sched")
                    vcpu.poke()
                else:
                    vcpu.poke()
            """,
        )
        assert [line for line, _ in findings] == [2]

    def test_no_else_stays_silent(self):
        findings = check(
            "FLW001",
            """\
            def notify(pcpu, costs, vcpu):
                if vcpu.running:
                    yield pcpu.op("kick", costs.kick, "sched")
                    vcpu.poke()
            """,
        )
        assert findings == []


class TestSuppressionBlocks:
    def test_block_comment_above_def_suppresses(self, tmp_path):
        target = tmp_path / "hv"
        target.mkdir()
        (target / "mod.py").write_text(
            "# The exit half of a deliberately split pair.\n"
            "# repro-lint: ignore[SYM001]\n"
            "# (justification continues over several lines\n"
            "#  before the code starts.)\n"
            "def save_half(pcpu, costs):\n"
            "    yield pcpu.op('save_gp', costs.save_gp, 'save')\n"
        )
        assert run_analysis([tmp_path], select=["SYM001"]) == []

    def test_directive_mid_block_still_attaches_to_code(self, tmp_path):
        target = tmp_path / "hv"
        target.mkdir()
        (target / "mod.py").write_text(
            "# preamble line without the directive\n"
            "# repro-lint: ignore[SYM001]\n"
            "def save_half(pcpu, costs):\n"
            "    yield pcpu.op('save_gp', costs.save_gp, 'save')\n"
        )
        assert run_analysis([tmp_path], select=["SYM001"]) == []

    def test_unrelated_code_not_suppressed(self, tmp_path):
        target = tmp_path / "hv"
        target.mkdir()
        (target / "mod.py").write_text(
            "# repro-lint: ignore[SYM002]\n"
            "def save_half(pcpu, costs):\n"
            "    yield pcpu.op('save_gp', costs.save_gp, 'save')\n"
        )
        # the block names a different rule — SYM001 still fires
        assert len(run_analysis([tmp_path], select=["SYM001"])) == 1

    def test_prefix_suppression_waives_the_tier(self, tmp_path):
        target = tmp_path / "hv"
        target.mkdir()
        (target / "mod.py").write_text(
            "# repro-lint: ignore[SYM]\n"
            "def save_half(pcpu, costs):\n"
            "    yield pcpu.op('save_gp', costs.save_gp, 'save')\n"
        )
        # the prefix covers every SYM* rule on the attached line
        assert run_analysis([tmp_path], select=["SYM001"]) == []


class TestIgnoreAndStatistics:
    SOURCE = (
        "def save_half(pcpu, costs):\n"
        "    yield pcpu.op('save_gp', costs.save_gp, 'save')\n"
    )

    def write_tree(self, tmp_path):
        target = tmp_path / "hv"
        target.mkdir()
        (target / "mod.py").write_text(self.SOURCE)
        return tmp_path

    def test_ignore_drops_rule(self, tmp_path):
        tree = self.write_tree(tmp_path)
        assert len(run_analysis([tree], flow=True)) >= 1
        remaining = run_analysis([tree], flow=True, ignore=["SYM001"])
        assert all(v.rule != "SYM001" for v in remaining)

    def test_ignore_is_case_insensitive(self, tmp_path):
        tree = self.write_tree(tmp_path)
        remaining = run_analysis([tree], flow=True, ignore=["sym001"])
        assert all(v.rule != "SYM001" for v in remaining)

    def test_ignore_accepts_rule_prefix(self, tmp_path):
        tree = self.write_tree(tmp_path)
        remaining = run_analysis([tree], flow=True, ignore=["SYM"])
        assert all(not v.rule.startswith("SYM") for v in remaining)

    def test_unknown_ignore_entry_is_an_error(self, tmp_path):
        import pytest

        tree = self.write_tree(tmp_path)
        with pytest.raises(KeyError) as excinfo:
            run_analysis([tree], flow=True, ignore=["NOPE999"])
        assert "NOPE999" in excinfo.value.args[0]
        # near-miss prefixes don't silently no-op either
        with pytest.raises(KeyError):
            run_analysis([tree], flow=True, ignore=["SYM9"])

    def test_statistics_rendering(self, tmp_path):
        tree = self.write_tree(tmp_path)
        violations = run_analysis([tree], flow=True)
        stats = render_statistics(violations)
        assert "SYM001" in stats
        text = render_text(violations, statistics=True)
        assert "SYM001" in text.splitlines()[-2] or "SYM001" in text
        payload = json.loads(render_json(violations, statistics=True))
        assert payload["statistics"]["SYM001"] >= 1

    def test_json_omits_statistics_by_default(self):
        payload = json.loads(render_json([]))
        assert "statistics" not in payload

    def test_statistics_on_clean_tree(self):
        assert "0 findings" in render_statistics([])

    def test_statistics_sorted_by_count_then_code(self):
        from repro.analysis.engine import Violation

        def fire(rule, count):
            return [
                Violation("m.py", index + 1, 0, rule, "x") for index in range(count)
            ]

        violations = fire("SYM002", 1) + fire("CAL001", 3) + fire("API001", 3)
        lines = render_statistics(violations).splitlines()
        # most frequent first; equal counts tie-break on the code
        assert [line.split()[1] for line in lines] == [
            "API001", "CAL001", "SYM002", "total",
        ]
