"""Conc-tier units and interplay: contexts, effects, suppression seams.

The fixture-marker equalities live in ``test_analysis_rules``; this
module drills into the model the CON rules share — context propagation,
may-block closures, entry-held locks, alias-origin suppression — plus
the tier's gating/override semantics and CLI surface.
"""

import importlib.util
import json
import pathlib
import textwrap

import pytest

from repro.analysis import run_analysis
from repro.analysis.cli import main as lint_main
from repro.analysis.conc import build_model
from repro.analysis.conc.contexts import EVENT_LOOP, MAIN, SIGNAL, THREAD
from repro.analysis.config import LintConfig
from repro.analysis.engine import discover
from repro.analysis.rules import active_rules

FIXTURES = pathlib.Path(__file__).parent / "analysis_fixtures"
TOOLS_DIR = pathlib.Path(__file__).resolve().parent.parent / "tools"
CON_CODES = {"CON001", "CON002", "CON003", "CON004", "CON005"}
CONC_DIR = str(FIXTURES / "conc")


def model_for(tmp_path, tree):
    """Write ``{relpath: source}`` under tmp_path and build a ConcModel."""
    for rel, text in tree.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    project, errors = discover([tmp_path])
    assert errors == []
    return build_model(project, LintConfig())


def func(model, qualname):
    matches = [f for f in model.functions if f.qualname == qualname]
    assert len(matches) == 1, "want exactly one %r, got %r" % (
        qualname, [f.label for f in matches],
    )
    return matches[0]


class TestContextPropagation:
    TREE = {
        "svc/app.py": """
            import asyncio
            import signal
            import threading
            import time


            def cpu_bound():
                time.sleep(0.2)


            async def serve():
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, cpu_bound)


            def on_signal(signum, frame):
                pass


            def helper():
                return 1


            def main():
                signal.signal(signal.SIGTERM, on_signal)
                worker = threading.Thread(target=cpu_bound)
                worker.start()
                helper()
                asyncio.run(serve())
        """
    }

    def test_spawn_constructs_seed_contexts(self, tmp_path):
        model = model_for(tmp_path, self.TREE)
        assert model.contexts[func(model, "serve")] == {EVENT_LOOP}
        assert model.contexts[func(model, "on_signal")] == {SIGNAL}
        # Thread(target=...) and run_in_executor both land on THREAD —
        # and neither leaks the spawner's own context into the worker
        assert model.contexts[func(model, "cpu_bound")] == {THREAD}

    def test_plain_calls_inherit_and_default_is_main(self, tmp_path):
        model = model_for(tmp_path, self.TREE)
        assert model.contexts[func(model, "helper")] == {MAIN}
        assert model.contexts[func(model, "main")] == {MAIN}

    def test_witness_chain_names_the_seed(self, tmp_path):
        model = model_for(tmp_path, self.TREE)
        chain = model.chain(func(model, "cpu_bound"), THREAD)
        assert "cpu_bound" in chain

    def test_offloaded_worker_never_fires_con001(self, tmp_path):
        for rel, text in self.TREE.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text))
        assert run_analysis([tmp_path], select=["CON001"]) == []


class TestMayBlockClosure:
    TREE = {
        "svc/flow.py": """
            import time


            def leaf():
                time.sleep(0.5)


            def middle():
                leaf()


            def top():
                middle()


            async def acoro():
                time.sleep(0.1)


            def maker():
                return acoro()
        """
    }

    def test_blocking_closes_over_plain_call_edges(self, tmp_path):
        model = model_for(tmp_path, self.TREE)
        found = model.may_block(func(model, "top"), "CON003")
        assert found is not None
        effect, owner = found
        assert owner.qualname == "leaf"
        assert effect.label == "time.sleep"

    def test_sync_code_touching_a_coroutine_does_not_block(self, tmp_path):
        model = model_for(tmp_path, self.TREE)
        # maker() only *creates* the coroutine object; nothing runs
        assert model.may_block(func(model, "maker"), "CON003") is None
        assert model.may_block(func(model, "acoro"), "CON003") is not None


class TestEntryHeldFixpoint:
    TREE = {
        "svc/locks.py": """
            import threading

            _LOCK = threading.Lock()


            def outer():
                with _LOCK:
                    guarded()
                    inner()


            def other():
                with _LOCK:
                    guarded()


            def free():
                inner()


            def guarded():
                return 1


            def inner():
                return 2
        """
    }

    def test_always_under_lock_means_entry_held(self, tmp_path):
        model = model_for(tmp_path, self.TREE)
        held = model.entry_held[func(model, "guarded")]
        assert {token.name for token in held} == {"_LOCK"}

    def test_one_unlocked_call_site_clears_the_assumption(self, tmp_path):
        model = model_for(tmp_path, self.TREE)
        assert model.entry_held[func(model, "inner")] == frozenset()


class TestSuppressionSeams:
    def test_module_alias_waiver_filters_only_that_code(self, tmp_path):
        model = model_for(tmp_path, {
            "svc/seam.py": """
                import time

                # repro-lint: ignore[CON001] — reviewed seam
                _sleep = time.sleep


                async def nap():
                    _sleep(1.0)
            """
        })
        nap = func(model, "nap")
        assert model.blocking_effects(nap, "CON001") == []
        # the waiver names CON001 only: other conc rules still see it
        assert len(model.blocking_effects(nap, "CON003")) == 1

    def test_staticmethod_class_alias_waiver(self, tmp_path):
        model = model_for(tmp_path, {
            "svc/client.py": """
                import time


                class Client:
                    _sleep = staticmethod(time.sleep)  # repro-lint: ignore[CON]

                    def wait(self):
                        self._sleep(1.0)
            """
        })
        wait = func(model, "Client.wait")
        assert model.blocking_effects(wait, "CON001") == []

    def test_suppression_attaches_inside_async_def(self, tmp_path):
        (tmp_path / "mod.py").write_text(textwrap.dedent("""
            import time


            async def handler():
                # repro-lint: ignore[CON001] — reviewed: sub-ms stall
                time.sleep(0.0001)
        """))
        assert run_analysis([tmp_path], select=["CON001"]) == []


class TestTierGating:
    def test_conc_rules_stay_out_of_other_tiers(self):
        for kwargs in ({}, {"flow": True}, {"spec": True},
                       {"flow": True, "spec": True}):
            codes = {r.code for r in active_rules(LintConfig(), **kwargs)}
            assert codes & CON_CODES == set()

    def test_explicit_select_overrides_the_gate(self):
        rules = active_rules(LintConfig(), ["CON002"])
        assert [r.code for r in rules] == ["CON002"]

    def test_ignore_prefix_waives_the_whole_tier(self):
        violations = run_analysis([FIXTURES], flow=True, spec=True,
                                  conc=True, ignore=["CON"])
        assert violations  # the other tiers still report
        assert not any(v.rule in CON_CODES for v in violations)


class TestCli:
    def test_conc_flag_gates_the_tier(self, capsys):
        assert lint_main([CONC_DIR]) == 0
        capsys.readouterr()
        assert lint_main(["--conc", CONC_DIR]) == 1
        out = capsys.readouterr().out
        assert "CON001" in out and "CON004" in out

    def test_conc_plus_ignore_prefix_is_clean(self, capsys):
        assert lint_main(["--conc", "--ignore", "CON", CONC_DIR]) == 0

    def test_statistics_tally_conc_rules(self, capsys):
        lint_main(["--conc", "--statistics", CONC_DIR])
        out = capsys.readouterr().out
        assert "CON003" in out


def _load_validate_conclint():
    spec = importlib.util.spec_from_file_location(
        "validate_conclint", TOOLS_DIR / "validate_conclint.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestValidateConclintTool:
    SELECT = "CON001,CON002,CON003,CON004,CON005"

    def _report(self, tmp_path, capsys, argv):
        status = lint_main(argv)
        assert status in (0, 1)
        path = tmp_path / "report.json"
        path.write_text(capsys.readouterr().out)
        return path

    def test_fixture_report_validates(self, tmp_path, capsys):
        path = self._report(
            tmp_path, capsys,
            ["--format", "json", "--statistics", "--select", self.SELECT, CONC_DIR],
        )
        validator = _load_validate_conclint()
        assert validator.validate(str(path)) == []
        assert validator.main([str(path)]) == 0
        # the same (non-empty) report fails the clean gate
        assert validator.main(["--expect-clean", str(path)]) == 1

    def test_clean_report_passes_the_clean_gate(self, tmp_path, capsys):
        path = self._report(
            tmp_path, capsys,
            ["--format", "json", "--select", "CON001", "--ignore", "CON001",
             CONC_DIR],
        )
        validator = _load_validate_conclint()
        assert validator.main(["--expect-clean", str(path)]) == 0

    def test_tampered_reports_fail(self, tmp_path, capsys):
        path = self._report(
            tmp_path, capsys,
            ["--format", "json", "--statistics", "--select", self.SELECT, CONC_DIR],
        )
        validator = _load_validate_conclint()
        document = json.loads(path.read_text())

        document["count"] += 1
        document["statistics"]["CON001"] = 99
        document["violations"][0]["rule"] = "NOPE001"
        document["violations"][1]["line"] = 0
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(document))
        problems = validator.validate(str(tampered))
        for needle in ("count", "statistics", "NOPE001", "line"):
            assert any(needle in problem for problem in problems), needle
        assert validator.main([str(tampered)]) == 1

    def test_usage_without_args(self, capsys):
        validator = _load_validate_conclint()
        assert validator.main([]) == 2
