"""Service protocol layer: canonicalization, query keys, error docs.

These are the contracts the rest of the service tests build on: two
requests that mean the same thing must produce the same query key (the
coalescing primitive), anything malformed must come back as the stable
``bad-request`` document, and the cost-override layer must be scoped,
validated, and restorable.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.errors import ConfigurationError
from repro.hw import costs as hw_costs
from repro.runner import cells
from repro.service import protocol, queries
from repro.service.server import ServiceConfig

from tests.serviceutil import running_server

TOOLS_DIR = pathlib.Path(__file__).resolve().parent.parent / "tools"


def _load_validator():
    spec = importlib.util.spec_from_file_location(
        "validate_service", TOOLS_DIR / "validate_service.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCanonicalization:
    def test_equivalent_requests_share_a_key(self):
        spelled_out, _ = queries.canonicalize(
            {"target": "table5", "params": {"transactions": 40}, "costs": {}}
        )
        defaulted, _ = queries.canonicalize({"target": "table5"})
        assert spelled_out.key == defaulted.key
        assert spelled_out.params == {"transactions": 40}

    def test_key_order_is_irrelevant(self):
        one, _ = queries.canonicalize(
            {"params": {"key": "xen-arm"}, "target": "micro"}
        )
        two, _ = queries.canonicalize(
            {"target": "micro", "params": {"key": "xen-arm"}}
        )
        assert one.key == two.key

    def test_costs_enter_the_key(self):
        plain, _ = queries.canonicalize({"target": "micro"})
        what_if, _ = queries.canonicalize(
            {"target": "micro", "costs": {"arm": {"trap_to_el2": 152}}}
        )
        assert plain.key != what_if.key

    def test_request_options_stay_out_of_the_key(self):
        plain, plain_options = queries.canonicalize({"target": "micro"})
        bounded, options = queries.canonicalize(
            {"target": "micro", "deadline_ms": 500, "budget_cells": 3}
        )
        assert plain.key == bounded.key
        assert plain_options == {"budget_cells": None, "deadline_ms": None}
        assert options == {"budget_cells": 3, "deadline_ms": 500.0}

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"target": "no-such-target"},
            {"target": "micro", "params": {"key": "not-a-platform"}},
            {"target": "micro", "params": {"bogus": 1}},
            {"target": "micro", "unexpected": True},
            {"target": "table5", "params": {"transactions": 0}},
            {"target": "table2", "params": {"keys": []}},
            {"target": "table2", "params": {"keys": ["kvm-arm", "kvm-arm"]}},
            {"target": "oversub", "params": {"timeslices_us": [0]}},
            {"target": "ablation", "params": {"workloads": ["NotAWorkload"]}},
            {"target": "micro", "costs": {"riscv": {}}},
            {"target": "micro", "costs": {"arm": {"trap_to_el2": -1}}},
            {"target": "micro", "costs": {"arm": {"no_such_cost": 5}}},
            {"target": "micro", "deadline_ms": 0},
            {"target": "micro", "budget_cells": 0},
        ],
    )
    def test_bad_requests_raise(self, payload):
        with pytest.raises(ConfigurationError):
            queries.canonicalize(payload)

    def test_plan_pairs_base_and_exec_specs(self):
        query, _ = queries.canonicalize(
            {"target": "table2", "costs": {"arm": {"trap_to_el2": 152}}}
        )
        base, execs = queries.plan(query)
        assert len(base) == len(execs) == 4
        for base_spec, exec_spec in zip(base, execs):
            assert cells.strip_cost_overrides(exec_spec) == base_spec
            assert cells.COSTS_PARAM in exec_spec.params_dict()

    def test_plan_without_costs_is_identity(self):
        query, _ = queries.canonicalize({"target": "table2"})
        base, execs = queries.plan(query)
        assert base == execs


class TestCostOverrides:
    def test_overriding_is_scoped_and_restores(self):
        default = hw_costs.arm_costs().trap_to_el2
        with hw_costs.overriding({"arm": {"trap_to_el2": default * 2}}):
            assert hw_costs.arm_costs().trap_to_el2 == default * 2
        assert hw_costs.arm_costs().trap_to_el2 == default

    def test_register_class_override(self):
        from repro.hw.cpu.registers import RegClass

        with hw_costs.overriding({"arm": {"save.GP": 9999}}):
            assert hw_costs.arm_costs().save[RegClass.GP] == 9999

    def test_validate_canonicalizes(self):
        document = hw_costs.validate_overrides(
            {"x86": {"vmexit_hw": 600}, "arm": {"trap_to_el2": 80}}
        )
        assert list(document) == ["arm", "x86"]

    def test_override_changes_the_cell_id_and_payload(self):
        base = cells.micro("kvm-arm")
        spec = cells.with_cost_overrides(base, {"arm": {"trap_to_el2": 760}})
        assert spec.id != base.id
        default_payload = cells.run_cell(base)
        what_if_payload = cells.run_cell(spec)
        assert default_payload != what_if_payload
        # and the default world is untouched afterwards
        assert cells.run_cell(base) == default_payload


class TestHttpSurface:
    def test_unknown_route_is_not_found(self):
        with running_server() as (_handle, client):
            status, document = client.request("GET", "/nope")
            assert status == 404
            assert document["error"]["code"] == "not-found"
            assert document["partial"] is False

    def test_query_requires_post(self):
        with running_server() as (_handle, client):
            status, document = client.request("GET", "/v1/query")
            assert status == 400
            assert document["error"]["code"] == "bad-request"

    def test_malformed_json_body(self):
        with running_server() as (_handle, client):
            import http.client

            connection = http.client.HTTPConnection(
                "127.0.0.1", client.port, timeout=30
            )
            try:
                connection.request(
                    "POST", "/v1/query", body=b"{not json",
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                document = json.loads(response.read().decode("utf-8"))
                assert response.status == 400
            finally:
                connection.close()
            assert document["error"]["code"] == "bad-request"

    def test_targets_route_lists_the_registry(self):
        with running_server() as (_handle, client):
            document = client.targets()
            names = [target["name"] for target in document["targets"]]
            assert names == list(queries.TARGETS)

    def test_healthz_reports_admission_state(self):
        with running_server(admit_max=7) as (_handle, client):
            status, document = client.request("GET", "/healthz")
            assert status == 200
            assert document["ok"] is True
            assert document["active"] == 0
            assert document["admit_max"] == 7

    def test_metrics_route_validates(self):
        validator = _load_validator()
        with running_server() as (_handle, client):
            client.query("micro", {"key": "kvm-arm"})
            document = client.metrics()
        assert validator.validate_document(document) == []
        assert document["metrics"]["service.queries"]["value"] == 1


class TestValidatorTool:
    def test_success_and_error_documents_validate(self):
        validator = _load_validator()
        with running_server() as (_handle, client):
            good = client.query("micro", {"key": "kvm-arm"})
            _status, bad = client.query_raw({"target": "no-such-target"})
        assert validator.validate_document(good) == []
        assert validator.validate_document(bad) == []

    def test_tampered_result_is_caught(self):
        validator = _load_validator()
        with running_server() as (_handle, client):
            document = client.query("micro", {"key": "kvm-arm"})
        document["result"]["Hypercall"] = 1
        findings = validator.validate_document(document)
        assert any("result_sha256 mismatch" in finding for finding in findings)

    def test_unknown_schema_is_rejected(self):
        validator = _load_validator()
        assert validator.validate_document({"schema": "bogus/9"}) != []


class TestServiceConfig:
    def test_from_env_reads_the_knobs(self):
        config = ServiceConfig.from_env(
            environ={
                "REPRO_SERVE_HOST": "0.0.0.0",
                "REPRO_SERVE_PORT": "9000",
                "REPRO_ADMIT_MAX": "5",
                "REPRO_QUERY_BUDGET": "12",
                "REPRO_JOBS": "2",
            }
        )
        assert config.host == "0.0.0.0"
        assert config.port == 9000
        assert config.admit_max == 5
        assert config.query_budget == 12
        assert config.jobs == 2

    def test_overrides_beat_env(self):
        config = ServiceConfig.from_env(
            environ={"REPRO_SERVE_PORT": "9000"}, port=0, admit_max=2
        )
        assert config.port == 0
        assert config.admit_max == 2

    def test_bad_env_values_raise(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig.from_env(environ={"REPRO_ADMIT_MAX": "zero"})
        with pytest.raises(ConfigurationError):
            ServiceConfig.from_env(environ={"REPRO_ADMIT_MAX": "0"})
