"""Unit tests for channels, clock, RNG, and step tracing."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim import Channel, Clock, DeterministicRng, Engine, Step, StepTrace, Timeout, Tracer


class TestChannel:
    def test_put_then_get(self):
        engine = Engine()
        channel = Channel(engine, "c")
        got = []

        def consumer():
            item = yield from channel.get()
            got.append((engine.now, item))

        channel.put("x")
        engine.spawn(consumer())
        engine.run()
        assert got == [(0, "x")]

    def test_get_blocks_until_put(self):
        engine = Engine()
        channel = Channel(engine, "c")
        got = []

        def consumer():
            item = yield from channel.get()
            got.append((engine.now, item))

        engine.spawn(consumer())
        engine.schedule(42, lambda: channel.put("late"))
        engine.run()
        assert got == [(42, "late")]

    def test_fifo_ordering_across_getters(self):
        engine = Engine()
        channel = Channel(engine, "c")
        got = []

        def consumer(tag):
            item = yield from channel.get()
            got.append((tag, item))

        engine.spawn(consumer("first"))
        engine.spawn(consumer("second"))
        engine.schedule(1, lambda: channel.put("a"))
        engine.schedule(2, lambda: channel.put("b"))
        engine.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_get_nowait_empty_raises(self):
        channel = Channel(Engine(), "c")
        with pytest.raises(SimulationError):
            channel.get_nowait()

    def test_len_and_peek(self):
        channel = Channel(Engine(), "c")
        channel.put(1)
        channel.put(2)
        assert len(channel) == 2
        assert channel.peek() == 1
        assert channel.get_nowait() == 1


class TestClock:
    def test_round_trip_us(self):
        clock = Clock(2.4e9)
        cycles = clock.cycles_from_us(41.8)
        assert clock.us_from_cycles(cycles) == pytest.approx(41.8, rel=1e-6)

    def test_known_conversion(self):
        clock = Clock(2.4e9)  # ARM m400 frequency from the paper
        assert clock.cycles_from_us(1) == 2400
        assert clock.ns_from_cycles(2400) == pytest.approx(1000.0)

    def test_negative_time_clamps_to_zero(self):
        assert Clock(1e9).cycles_from_ns(-5) == 0

    def test_invalid_frequency(self):
        with pytest.raises(ConfigurationError):
            Clock(0)


class TestRng:
    def test_streams_are_reproducible(self):
        a = DeterministicRng(seed=7)
        b = DeterministicRng(seed=7)
        assert [a.uniform("x", 0, 1) for _ in range(5)] == [
            b.uniform("x", 0, 1) for _ in range(5)
        ]

    def test_streams_are_independent(self):
        rng = DeterministicRng(seed=7)
        first = rng.uniform("x", 0, 1)
        rng2 = DeterministicRng(seed=7)
        rng2.uniform("y", 0, 1)  # draw from another stream first
        assert rng2.uniform("x", 0, 1) == first

    def test_different_seeds_differ(self):
        assert DeterministicRng(1).uniform("x", 0, 1) != DeterministicRng(2).uniform("x", 0, 1)

    def test_randint_bounds(self):
        rng = DeterministicRng()
        for _ in range(100):
            assert 3 <= rng.randint("r", 3, 9) <= 9


class TestTrace:
    def test_total_and_labels(self):
        trace = StepTrace("t")
        trace.add(Step("save_gp", 152, "save"))
        trace.add(Step("save_vgic", 3250, "save"))
        trace.add(Step("restore_gp", 184, "restore"))
        assert trace.total_cycles == 3586
        assert trace.labels() == ["save_gp", "save_vgic", "restore_gp"]

    def test_by_label_aggregates_duplicates(self):
        trace = StepTrace()
        trace.add(Step("trap", 76))
        trace.add(Step("trap", 76))
        assert trace.by_label() == {"trap": 152}

    def test_by_category(self):
        trace = StepTrace()
        trace.add(Step("save_gp", 152, "save"))
        trace.add(Step("restore_gp", 184, "restore"))
        trace.add(Step("restore_fp", 310, "restore"))
        assert trace.by_category() == {"save": 152, "restore": 494}

    def test_tracer_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.begin("t")
        tracer.record("step", 100)
        assert len(tracer.end()) == 0

    def test_tracer_enabled_records_into_current(self):
        tracer = Tracer(enabled=True)
        tracer.begin("t")
        tracer.record("a", 10)
        tracer.record("b", 20, category="save")
        trace = tracer.end()
        assert trace.total_cycles == 30
        assert tracer.last is trace

    def test_record_outside_trace_is_noop(self):
        tracer = Tracer(enabled=True)
        tracer.record("orphan", 5)
        assert tracer.traces == []


class TestTracerNesting:
    def test_nested_traces_record_into_innermost(self):
        tracer = Tracer(enabled=True)
        tracer.begin("outer")
        tracer.record("before", 10)
        tracer.begin("inner")
        tracer.record("within", 20)
        inner = tracer.end()
        tracer.record("after", 30)
        outer = tracer.end()
        assert inner.name == "inner"
        assert inner.by_label() == {"within": 20}
        assert outer.name == "outer"
        assert outer.by_label() == {"before": 10, "after": 30}

    def test_depth_tracks_open_traces(self):
        tracer = Tracer(enabled=True)
        assert tracer.depth == 0
        tracer.begin("a")
        tracer.begin("b")
        assert tracer.depth == 2
        tracer.end()
        assert tracer.depth == 1
        tracer.end()
        assert tracer.depth == 0

    def test_end_without_begin_raises(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(SimulationError):
            tracer.end()

    def test_nested_begin_no_longer_discards_outer(self):
        # Regression: begin() used to overwrite the current trace, silently
        # dropping the outer trace's identity and steps recorded so far.
        tracer = Tracer(enabled=True)
        tracer.begin("outer")
        tracer.record("outer_step", 5)
        tracer.begin("inner")
        tracer.end()
        outer = tracer.end()
        assert outer.name == "outer"
        assert "outer_step" in outer.by_label()
